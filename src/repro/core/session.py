"""End-to-end update session: sink compile → network → sensor patch.

Ties the whole reproduction together (paper Figures 1 and 2):

1. the sink recompiles the modified source update-consciously,
2. the edit script is packetised and flooded through a topology,
3. every sensor interprets the script against its resident image,
4. the reconstructed binary is verified and can be executed in the
   node simulator.

Returns joule-level energy figures from the Mica2 power model alongside
the normalised compiler-side metrics.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..config import UpdateConfig, merge_legacy_strategy
from ..diff.patcher import patched_words
from ..energy.power_model import MICA2, PowerModel
from ..net.campaign import CampaignReport, run_campaign
from ..net.kernel import KernelReport
from ..net.dissemination import DisseminationResult, disseminate
from ..net.errors import DisseminationIncomplete
from ..net.faults import FaultPlan
from ..net.lossy import disseminate_lossy
from ..net.profiles import DeviceProfile
from ..net.topology import Topology, grid
from ..obs import trace
from .compiler import CompiledProgram
from .errors import EmptyFleetError, PatchDivergenceError, PlanStateError
from .update import UpdatePlanner, UpdateResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..config import CohortPlan
    from ..net.coding import CodedTransferParams
    from ..versioning import VersionedCampaignReport, VersionGraph


@dataclass
class SessionResult:
    """Outcome of one full OTA update campaign."""

    update: UpdateResult
    dissemination: DisseminationResult
    nodes_patched: int

    @property
    def network_energy_j(self) -> float:
        return self.dissemination.total_energy_j

    @property
    def per_node_energy_j(self) -> float:
        if self.nodes_patched == 0:
            raise EmptyFleetError(
                0,
                "per_node_energy_j is undefined for an empty fleet "
                "(nodes_patched == 0)",
            )
        return self.network_energy_j / self.nodes_patched


@dataclass
class CampaignResult:
    """Outcome of one fault-tolerant OTA campaign.

    Unlike :class:`SessionResult` this is never an exception path: an
    unconverged fleet comes back as ``report.outcome == "partial"``
    with the converged subset and the quarantined nodes enumerated.
    """

    update: UpdateResult
    report: CampaignReport | KernelReport
    nodes_patched: int

    @property
    def converged(self) -> bool:
        return self.report.converged

    @property
    def network_energy_j(self) -> float:
        return self.report.total_energy_j


@dataclass
class VersionedCampaignResult:
    """Outcome of a multi-cohort, version-graph campaign.

    Returned by :meth:`UpdateSession.push_campaign` when the push
    spans several releases or a heterogeneous fleet.  Same contract as
    :class:`CampaignResult`: never an exception path; a partial fleet
    comes back with the stragglers quarantined per cohort.
    """

    graph: "VersionGraph"
    plans: "tuple[CohortPlan, ...]"
    report: "VersionedCampaignReport"
    nodes_patched: int

    @property
    def converged(self) -> bool:
        return self.report.converged

    @property
    def network_energy_j(self) -> float:
        return self.report.total_energy_j


class UpdateSession:
    """Drives OTA updates of one deployed program across a network."""

    def __init__(
        self,
        deployed: CompiledProgram,
        topology: Topology | None = None,
        power: PowerModel = MICA2,
        loss: float = 0.0,
        loss_seed: int = 1,
        config: UpdateConfig | None = None,
        version: int = 0,
        **planner_kwargs,
    ):
        """``loss`` switches dissemination to the lossy NACK-repair
        model with that per-link drop probability.

        ``config`` carries the planning strategy and knobs for every
        :meth:`push_update`.  ``version`` labels the deployed program
        (a fleet mid-history starts above 0).  Extra
        ``**planner_kwargs`` (``k``, ``expected_runs``,
        ``space_threshold``, ``energy``, ``profile``) are a
        deprecation shim forwarded to :class:`UpdatePlanner`; pass a
        config instead.
        """
        if version < 0:
            raise PlanStateError(
                "session", f"version label must be >= 0, got {version}"
            )
        if planner_kwargs:
            warnings.warn(
                f"UpdateSession(**planner_kwargs) is deprecated "
                f"(got {sorted(planner_kwargs)}); pass "
                f"config=repro.UpdateConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.deployed = deployed
        self.topology = topology or grid(8, 8)
        if self.topology.node_count < 2:
            raise EmptyFleetError(
                self.topology.node_count,
                f"fleet has no sensor nodes to update: topology holds "
                f"{self.topology.node_count} node(s) and node 0 is the sink",
            )
        self.power = power
        self.loss = loss
        self.loss_seed = loss_seed
        self.config = config if config is not None else UpdateConfig()
        self.planner_kwargs = planner_kwargs
        #: fleet-wide version counter advanced by successful pushes
        self.version = version
        #: compiled program of every version this session has deployed
        self.history: dict[int, CompiledProgram] = {version: deployed}

    def push_update(
        self,
        new_source: str,
        ra: str | None = None,
        da: str | None = None,
        config: UpdateConfig | None = None,
    ) -> SessionResult:
        """Compile, disseminate, and patch one update.

        Every sensor applies the script to its resident image; the
        reconstruction is checked word-for-word against the sink's new
        binary (any mismatch raises).  On success the session's deployed
        program advances to the new version, so successive calls model a
        long-lived maintenance campaign.

        Strategy comes from ``config`` (falling back to the session's
        config); the ``ra``/``da`` string keywords are deprecation
        shims and emit :class:`DeprecationWarning`.
        """
        if ra is not None or da is not None:
            warnings.warn(
                "the ra=/da= string flags are deprecated; pass "
                "config=repro.UpdateConfig(ra=..., da=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        cfg = merge_legacy_strategy(
            config if config is not None else self.config, ra=ra, da=da
        )
        with trace.span(
            "session.push_update", ra=cfg.ra, da=cfg.da, loss=self.loss
        ):
            return self._push_update(new_source, cfg)

    def _push_update(self, new_source: str, cfg: UpdateConfig) -> SessionResult:
        planner = UpdatePlanner(
            self.deployed, config=cfg, **self.planner_kwargs
        )
        update = planner.plan(new_source)

        if self.loss > 0.0:
            dissemination = disseminate_lossy(
                self.topology,
                update.packets,
                loss=self.loss,
                seed=self.loss_seed,
                power=self.power,
            )
            if not dissemination.complete:
                raise DisseminationIncomplete(
                    missing=dissemination.missing,
                    rounds=dissemination.rounds,
                    packets=dissemination.packets,
                )
        else:
            dissemination = disseminate(self.topology, update.packets, self.power)

        # Sensor-side reconstruction on every node (identical images, so
        # one verification covers all; we still count the nodes).
        rebuilt = patched_words(self.deployed.image, update.diff.script)
        if rebuilt != update.new.image.words():
            raise PatchDivergenceError(
                "session", "sensor-side patch diverged from sink binary"
            )
        nodes = self.topology.node_count - 1  # exclude the sink

        self.deployed = update.new
        self.version += 1
        self.history[self.version] = self.deployed
        return SessionResult(
            update=update, dissemination=dissemination, nodes_patched=nodes
        )

    def push_campaign(
        self,
        payloads: "Mapping[int, str] | str",
        plan: FaultPlan | None = None,
        config: UpdateConfig | None = None,
        max_rounds: int = 200,
        protocol: str = "flood",
        coding: "CodedTransferParams | None" = None,
        fleet_versions: "Mapping[int, int] | None" = None,
        profile: "DeviceProfile | None" = None,
    ) -> "CampaignResult | VersionedCampaignResult":
        """Drive one or more releases to fleet convergence under a
        fault plan.

        ``payloads`` maps version labels to program sources — the
        canonical shape since the version-graph planner landed.  One
        entry for the next version (``{session.version + 1: source}``)
        is the classic single-release campaign: the wire blob (code
        script + data script) is packetised with per-packet CRCs and
        disseminated through the campaign controller, and a
        :class:`CampaignResult` comes back.  Several entries, or a
        ``fleet_versions`` map placing cohorts at older versions, run
        the version-graph planner instead: the releases are compiled
        into a :class:`repro.versioning.VersionGraph`, each stale
        cohort gets its cheapest plan (chained diffs, merged diff, or
        full image), and a :class:`VersionedCampaignResult` comes
        back.  Passing a bare source string is deprecated and emits
        :class:`DeprecationWarning` (it behaves like the single-entry
        mapping).

        Never raises for an unconverged fleet — inspect
        ``result.report.outcome``.  The session's deployed program
        (and version counter) advances only when the whole fleet
        converged, matching what the sink would consider the fleet
        baseline.

        ``protocol`` selects the dissemination machinery (``"flood"``,
        ``"trickle"``, or ``"gossip"`` — see
        :data:`repro.net.campaign.PROTOCOLS`); ``coding`` switches the
        waves to coded transfer (:class:`repro.net.coding
        .CodedTransferParams` — the ``"lt"`` fountain with flood, the
        ``"xor"`` burst parity with the kernel protocols);
        ``profile`` pins a :class:`repro.net.profiles.DeviceProfile`
        (radio draws, MTU fragmentation, airtime budget, capacitor
        brownout model) on the single-release campaign.
        """
        if isinstance(payloads, str):
            warnings.warn(
                "push_campaign(payload=...) with a bare source string is "
                "deprecated; pass a version-keyed mapping "
                "{session.version + 1: source} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            payloads = {self.version + 1: payloads}
        releases = {int(v): source for v, source in payloads.items()}
        if not releases:
            raise PlanStateError(
                "push_campaign", "payloads mapping is empty — nothing to push"
            )
        for version in releases:
            if version <= self.version:
                raise PlanStateError(
                    "push_campaign",
                    f"release v{version} is not ahead of the deployed "
                    f"v{self.version}",
                )
        cfg = config if config is not None else self.config
        single = (
            len(releases) == 1
            and fleet_versions is None
            and next(iter(releases)) == self.version + 1
        )
        with trace.span(
            "session.push_campaign",
            ra=cfg.ra,
            da=cfg.da,
            loss=self.loss,
            target=max(releases),
            releases=len(releases),
            faults=(plan or FaultPlan()).describe(),
        ):
            if single:
                return self._push_single_campaign(
                    releases[self.version + 1], plan, cfg, max_rounds,
                    protocol, coding, profile,
                )
            if profile is not None:
                raise PlanStateError(
                    "push_campaign",
                    "device profiles apply to single-release campaigns; "
                    "the version-graph planner does not take one yet",
                )
            return self._push_versioned_campaign(
                releases, plan, cfg, max_rounds, protocol, coding,
                fleet_versions,
            )

    def _push_single_campaign(
        self,
        new_source: str,
        plan: FaultPlan | None,
        cfg: UpdateConfig,
        max_rounds: int,
        protocol: str,
        coding: "CodedTransferParams | None",
        profile: "DeviceProfile | None" = None,
    ) -> CampaignResult:
        planner = UpdatePlanner(
            self.deployed, config=cfg, **self.planner_kwargs
        )
        update = planner.plan(new_source)

        # Sink-side check that the script reconstructs the new image
        # — the same verification each committed node's staged bank
        # has passed packet-by-packet before its boot-pointer flip.
        rebuilt = patched_words(self.deployed.image, update.diff.script)
        if rebuilt != update.new.image.words():
            raise PatchDivergenceError(
                "session", "sensor-side patch diverged from sink binary"
            )

        blob = (
            update.diff.script.to_bytes() + update.data_script.to_bytes()
        )
        report = run_campaign(
            self.topology,
            blob,
            plan,
            loss=self.loss,
            seed=self.loss_seed,
            power=self.power,
            max_rounds=max_rounds,
            payload_per_packet=update.packets.payload_per_packet,
            overhead_per_packet=update.packets.overhead_per_packet,
            old_version=self.version,
            new_version=self.version + 1,
            protocol=protocol,
            coding=coding,
            profile=profile,
        )
        if report.converged:
            self.deployed = update.new
            self.version += 1
            self.history[self.version] = self.deployed
        return CampaignResult(
            update=update,
            report=report,
            nodes_patched=len(report.converged_nodes),
        )

    def _push_versioned_campaign(
        self,
        releases: "dict[int, str]",
        plan: FaultPlan | None,
        cfg: UpdateConfig,
        max_rounds: int,
        protocol: str,
        coding: "CodedTransferParams | None",
        fleet_versions: "Mapping[int, int] | None",
    ) -> "VersionedCampaignResult":
        from ..versioning import (
            build_version_graph,
            plan_cohorts,
            run_versioned_campaign,
        )

        target = max(releases)
        fleet = (
            {int(n): int(v) for n, v in fleet_versions.items()}
            if fleet_versions is not None
            else {
                node: self.version
                for node in range(self.topology.node_count)
            }
        )
        fleet.setdefault(0, target)
        # Anchor the graph on every historical version the fleet still
        # advertises (plus the deployed baseline) so stragglers several
        # releases behind can be diffed against their canonical images.
        anchors = {self.version: self.deployed}
        for version in set(fleet.values()):
            if version < self.version and version in self.history:
                anchors[version] = self.history[version]
        graph = build_version_graph(
            releases,
            update_config=cfg,
            base=anchors,
        )
        plans = plan_cohorts(graph, fleet, target)
        report = run_versioned_campaign(
            graph,
            plans,
            self.topology,
            loss=self.loss,
            seed=self.loss_seed,
            power=self.power,
            protocol=protocol,
            coding=coding,
            fault_plan=plan,
            max_rounds=max_rounds,
        )
        patched = sum(
            len(c.plan.nodes) - len(c.quarantined) for c in report.cohorts
        )
        if report.converged:
            for version, program in graph.programs.items():
                if version > self.version:
                    self.history[version] = program
            self.deployed = graph.programs[target]
            self.version = target
        return VersionedCampaignResult(
            graph=graph,
            plans=plans,
            report=report,
            nodes_patched=patched,
        )
