"""End-to-end update session: sink compile → network → sensor patch.

Ties the whole reproduction together (paper Figures 1 and 2):

1. the sink recompiles the modified source update-consciously,
2. the edit script is packetised and flooded through a topology,
3. every sensor interprets the script against its resident image,
4. the reconstructed binary is verified and can be executed in the
   node simulator.

Returns joule-level energy figures from the Mica2 power model alongside
the normalised compiler-side metrics.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..config import UpdateConfig, merge_legacy_strategy
from ..diff.patcher import patched_words
from ..energy.power_model import MICA2, PowerModel
from ..net.campaign import CampaignReport, run_campaign
from ..net.kernel import KernelReport
from ..net.dissemination import DisseminationResult, disseminate
from ..net.errors import DisseminationIncomplete
from ..net.faults import FaultPlan
from ..net.lossy import disseminate_lossy
from ..net.topology import Topology, grid
from ..obs import trace
from .compiler import CompiledProgram
from .errors import EmptyFleetError, PatchDivergenceError
from .update import UpdatePlanner, UpdateResult


@dataclass
class SessionResult:
    """Outcome of one full OTA update campaign."""

    update: UpdateResult
    dissemination: DisseminationResult
    nodes_patched: int

    @property
    def network_energy_j(self) -> float:
        return self.dissemination.total_energy_j

    @property
    def per_node_energy_j(self) -> float:
        if self.nodes_patched == 0:
            raise EmptyFleetError(
                0,
                "per_node_energy_j is undefined for an empty fleet "
                "(nodes_patched == 0)",
            )
        return self.network_energy_j / self.nodes_patched


@dataclass
class CampaignResult:
    """Outcome of one fault-tolerant OTA campaign.

    Unlike :class:`SessionResult` this is never an exception path: an
    unconverged fleet comes back as ``report.outcome == "partial"``
    with the converged subset and the quarantined nodes enumerated.
    """

    update: UpdateResult
    report: CampaignReport | KernelReport
    nodes_patched: int

    @property
    def converged(self) -> bool:
        return self.report.converged

    @property
    def network_energy_j(self) -> float:
        return self.report.total_energy_j


class UpdateSession:
    """Drives OTA updates of one deployed program across a network."""

    def __init__(
        self,
        deployed: CompiledProgram,
        topology: Topology | None = None,
        power: PowerModel = MICA2,
        loss: float = 0.0,
        loss_seed: int = 1,
        config: UpdateConfig | None = None,
        **planner_kwargs,
    ):
        """``loss`` switches dissemination to the lossy NACK-repair
        model with that per-link drop probability.

        ``config`` carries the planning strategy and knobs for every
        :meth:`push_update`.  Extra ``**planner_kwargs`` (``k``,
        ``expected_runs``, ``space_threshold``, ``energy``,
        ``profile``) are a deprecation shim forwarded to
        :class:`UpdatePlanner`; pass a config instead.
        """
        if planner_kwargs:
            warnings.warn(
                f"UpdateSession(**planner_kwargs) is deprecated "
                f"(got {sorted(planner_kwargs)}); pass "
                f"config=repro.UpdateConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.deployed = deployed
        self.topology = topology or grid(8, 8)
        if self.topology.node_count < 2:
            raise EmptyFleetError(
                self.topology.node_count,
                f"fleet has no sensor nodes to update: topology holds "
                f"{self.topology.node_count} node(s) and node 0 is the sink",
            )
        self.power = power
        self.loss = loss
        self.loss_seed = loss_seed
        self.config = config if config is not None else UpdateConfig()
        self.planner_kwargs = planner_kwargs
        #: fleet-wide version counter advanced by successful pushes
        self.version = 0

    def push_update(
        self,
        new_source: str,
        ra: str | None = None,
        da: str | None = None,
        config: UpdateConfig | None = None,
    ) -> SessionResult:
        """Compile, disseminate, and patch one update.

        Every sensor applies the script to its resident image; the
        reconstruction is checked word-for-word against the sink's new
        binary (any mismatch raises).  On success the session's deployed
        program advances to the new version, so successive calls model a
        long-lived maintenance campaign.

        Strategy comes from ``config`` (falling back to the session's
        config); the ``ra``/``da`` string keywords are deprecation
        shims and emit :class:`DeprecationWarning`.
        """
        if ra is not None or da is not None:
            warnings.warn(
                "the ra=/da= string flags are deprecated; pass "
                "config=repro.UpdateConfig(ra=..., da=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        cfg = merge_legacy_strategy(
            config if config is not None else self.config, ra=ra, da=da
        )
        with trace.span(
            "session.push_update", ra=cfg.ra, da=cfg.da, loss=self.loss
        ):
            return self._push_update(new_source, cfg)

    def _push_update(self, new_source: str, cfg: UpdateConfig) -> SessionResult:
        planner = UpdatePlanner(
            self.deployed, config=cfg, **self.planner_kwargs
        )
        update = planner.plan(new_source)

        if self.loss > 0.0:
            dissemination = disseminate_lossy(
                self.topology,
                update.packets,
                loss=self.loss,
                seed=self.loss_seed,
                power=self.power,
            )
            if not dissemination.complete:
                raise DisseminationIncomplete(
                    missing=dissemination.missing,
                    rounds=dissemination.rounds,
                    packets=dissemination.packets,
                )
        else:
            dissemination = disseminate(self.topology, update.packets, self.power)

        # Sensor-side reconstruction on every node (identical images, so
        # one verification covers all; we still count the nodes).
        rebuilt = patched_words(self.deployed.image, update.diff.script)
        if rebuilt != update.new.image.words():
            raise PatchDivergenceError(
                "session", "sensor-side patch diverged from sink binary"
            )
        nodes = self.topology.node_count - 1  # exclude the sink

        self.deployed = update.new
        self.version += 1
        return SessionResult(
            update=update, dissemination=dissemination, nodes_patched=nodes
        )

    def push_campaign(
        self,
        new_source: str,
        plan: FaultPlan | None = None,
        config: UpdateConfig | None = None,
        max_rounds: int = 200,
        protocol: str = "flood",
    ) -> CampaignResult:
        """Compile one update and drive it to fleet convergence under a
        fault plan.

        The wire blob (code script + data script) is packetised with
        per-packet CRCs and disseminated through the campaign
        controller: nodes stage it crash-consistently,
        crashed/partitioned nodes retry with bounded backoff, and
        unrecoverable nodes are quarantined.  Never raises for an
        unconverged fleet — inspect ``result.report.outcome``.  The
        session's deployed program (and version counter) advances only
        when the whole fleet converged, matching what the sink would
        consider the fleet baseline.

        ``protocol`` selects the dissemination machinery (``"flood"``,
        ``"trickle"``, or ``"gossip"`` — see
        :data:`repro.net.campaign.PROTOCOLS`); the kernel protocols
        return a :class:`~repro.net.kernel.KernelReport` in
        ``result.report`` with the same consumer surface.
        """
        cfg = config if config is not None else self.config
        with trace.span(
            "session.push_campaign",
            ra=cfg.ra,
            da=cfg.da,
            loss=self.loss,
            faults=(plan or FaultPlan()).describe(),
        ):
            planner = UpdatePlanner(
                self.deployed, config=cfg, **self.planner_kwargs
            )
            update = planner.plan(new_source)

            # Sink-side check that the script reconstructs the new image
            # — the same verification each committed node's staged bank
            # has passed packet-by-packet before its boot-pointer flip.
            rebuilt = patched_words(self.deployed.image, update.diff.script)
            if rebuilt != update.new.image.words():
                raise PatchDivergenceError(
                    "session", "sensor-side patch diverged from sink binary"
                )

            blob = (
                update.diff.script.to_bytes() + update.data_script.to_bytes()
            )
            report = run_campaign(
                self.topology,
                blob,
                plan,
                loss=self.loss,
                seed=self.loss_seed,
                power=self.power,
                max_rounds=max_rounds,
                payload_per_packet=update.packets.payload_per_packet,
                overhead_per_packet=update.packets.overhead_per_packet,
                old_version=self.version,
                new_version=self.version + 1,
                protocol=protocol,
            )
            if report.converged:
                self.deployed = update.new
                self.version += 1
            return CampaignResult(
                update=update,
                report=report,
                nodes_patched=len(report.converged_nodes),
            )
