"""The update planner: old binary + new source → update script.

This is the sink-side loop of paper Figures 1-2.  Given the previous
:class:`~repro.core.compiler.CompiledProgram` (which carries the old
register-allocation records and data layout) and the modified source,
the planner recompiles under a chosen strategy:

* ``ra="ucc"``   — update-conscious register allocation (§3) per
  function, falling back to the baseline for brand-new functions;
* ``ra="gcc"``/``"linear"`` — the update-oblivious baselines;
* ``da="ucc"``   — threshold-based update-conscious data layout (§4);
* ``da="gcc"``   — the name-hash baseline layout.

It then diffs the binaries, builds the edit script, verifies the
sensor-side patch round-trips, and (optionally) simulates both versions
to measure ``Diff_cycle``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from ..config import UpdateConfig, merge_legacy_strategy
from ..datalayout.gcc_da import allocate_gcc_da
from ..datalayout.layout import collect_layout_objects
from ..datalayout.ucc_da import UCCDAReport, allocate_ucc_da
from ..diff.data_diff import DataScript, apply_data, diff_data
from ..diff.differ import BinaryDiff, diff_images
from ..diff.packets import Packetisation, packetize
from ..diff.patcher import verify_patch
from ..energy.model import DEFAULT_ENERGY_MODEL, EnergyModel
from ..ir.liveness import analyze
from ..obs import metrics, trace
from ..regalloc.base import verify_allocation
from .errors import PatchDivergenceError, PlanStateError
from ..regalloc.ucc_ra import UCCReport, allocate_ucc_greedy
from ..sim.devices import DeviceBoard, Timer
from ..sim.executor import run_image
from .compiler import CompiledProgram, Compiler, CompilerOptions, RA_BASELINES


@dataclass
class UpdateResult:
    """Everything measured about one code update."""

    old: CompiledProgram
    new: CompiledProgram
    ra_strategy: str
    da_strategy: str
    diff: BinaryDiff
    packets: Packetisation
    data_script: DataScript = field(default_factory=DataScript)
    ra_reports: dict[str, UCCReport] = field(default_factory=dict)
    da_report: UCCDAReport | None = None
    #: simulated cycles per single run (filled by measure_cycles)
    old_cycles: int | None = None
    new_cycles: int | None = None

    # -- headline metrics -----------------------------------------------------

    @property
    def diff_inst(self) -> int:
        """Paper's Diff_inst: differing instructions in the new binary."""
        return self.diff.diff_inst

    @property
    def diff_words(self) -> int:
        return self.diff.diff_words

    @property
    def script_bytes(self) -> int:
        """Total update payload: instruction script + data script."""
        return self.diff.script_bytes + self.data_script.size_bytes

    @property
    def code_script_bytes(self) -> int:
        return self.diff.script_bytes

    @property
    def data_script_bytes(self) -> int:
        return self.data_script.size_bytes

    @property
    def reused_instructions(self) -> int:
        return self.diff.reused

    @property
    def diff_cycle(self) -> int:
        """Paper's Diff_cycle: per-run cycle change old → new."""
        if self.old_cycles is None or self.new_cycles is None:
            raise PlanStateError(
                "measure_cycles", "call measure_cycles() first"
            )
        return self.new_cycles - self.old_cycles

    def diff_energy(
        self, cnt: float, energy: EnergyModel = DEFAULT_ENERGY_MODEL
    ) -> float:
        """Eq. 18 for this update under execution count ``cnt``,
        extended with the data-script payload."""
        return (
            energy.e_trans_words(self.diff_words)
            + energy.e_trans_bytes(self.data_script.size_bytes)
            + self.diff_cycle * cnt
        )

    def moves_inserted(self) -> int:
        return sum(r.moves_inserted for r in self.ra_reports.values())


class UpdatePlanner:
    """Plans updates against a compiled old version."""

    def __init__(
        self,
        old: CompiledProgram,
        energy: EnergyModel = DEFAULT_ENERGY_MODEL,
        k: int | None = None,
        expected_runs: float | None = None,
        space_threshold: int | None = None,
        profile=None,
        config: UpdateConfig | None = None,
    ):
        """``config`` carries every planning knob (strategy selection
        plus ``k``/``expected_runs``/``space_threshold``); the explicit
        numeric keywords override the config's fields when given.

        ``profile`` optionally carries a
        :class:`repro.sim.executor.RunResult` of the *old* binary with
        ``collect_profile=True`` (see :func:`profile_program`); its
        per-instruction execution counts then drive the paper's
        ``freq(s)`` instead of the static loop-nesting estimate."""
        base = config if config is not None else UpdateConfig()
        overrides = {}
        if k is not None:
            overrides["k"] = k
        if expected_runs is not None:
            overrides["expected_runs"] = expected_runs
        if space_threshold is not None:
            overrides["space_threshold"] = space_threshold
        self.config = replace(base, **overrides) if overrides else base
        self.old = old
        self.energy = energy
        self.k = self.config.k
        self.expected_runs = self.config.expected_runs
        self.space_threshold = self.config.space_threshold
        self.profile = profile

    def plan(
        self,
        new_source: str,
        ra: str | None = None,
        da: str | None = None,
        cp: str | None = None,
        verify: bool | None = None,
        checked: bool | None = None,
        config: UpdateConfig | None = None,
    ) -> UpdateResult:
        """Recompile ``new_source`` under the given strategy and diff.

        ``cp`` selects the code-placement strategy: ``"ucc"`` keeps
        surviving functions at their old flash addresses (padding
        shrinkage), ``"gcc"`` packs afresh.  By default the
        update-conscious strategies evaluate *both* placements and ship
        whichever needs the smaller script — padding NOPs and call-site
        re-encodings trade against each other, and which wins depends
        on the call graph.

        ``checked`` runs the full :mod:`repro.analysis` verification
        passes over the planned update and raises
        :class:`~repro.analysis.VerificationError` on any finding;
        ``None`` inherits the old program's ``options.checked``.

        The preferred calling convention is ``plan(source, config=
        UpdateConfig(...))``; the ``ra``/``da``/``cp`` string keywords
        are deprecation shims and emit :class:`DeprecationWarning`.
        """
        if ra is not None or da is not None or cp is not None:
            warnings.warn(
                "the ra=/da=/cp= string flags are deprecated; pass "
                "config=repro.UpdateConfig(ra=..., da=..., cp=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if config is None:
            # Fold in any direct attribute mutation (legacy pattern).
            config = replace(
                self.config,
                k=self.k,
                expected_runs=self.expected_runs,
                space_threshold=self.space_threshold,
            )
        cfg = merge_legacy_strategy(
            config, ra=ra, da=da, cp=cp, verify=verify, checked=checked
        )
        with trace.span("update.plan", ra=cfg.ra, da=cfg.da):
            return self._plan(new_source, cfg)

    def _plan(self, new_source: str, cfg: UpdateConfig) -> UpdateResult:
        ra, da = cfg.ra, cfg.da
        cp = cfg.resolved_cp()
        verify = cfg.verify
        old = self.old
        checked = cfg.checked
        if checked is None:
            checked = old.options.checked
        options = CompilerOptions(
            register_allocator=old.options.register_allocator,
            optimize=old.options.optimize,
            depths=dict(old.options.depths),
            verify=old.options.verify,
            placement_headroom=old.options.placement_headroom,
            checked=checked,
        )
        compiler = Compiler(options)
        module = compiler.front_and_middle(new_source)

        # -- register allocation ------------------------------------------
        ra_reports: dict[str, UCCReport] = {}
        records = {}
        baseline = RA_BASELINES[
            ra if ra in RA_BASELINES else options.register_allocator
        ]
        with trace.span("update.regalloc", ra=ra):
            for name, fn in module.functions.items():
                updatable = name in old.module.functions and name in old.records
                if ra == "ucc" and updatable:
                    old_profile = (
                        self.profile.ir_frequencies(name) if self.profile else None
                    )
                    record, report = allocate_ucc_greedy(
                        fn,
                        old.module.functions[name],
                        old.records[name],
                        energy=self.energy,
                        k=cfg.k,
                        expected_runs=cfg.expected_runs,
                        old_profile=old_profile,
                    )
                    ra_reports[name] = report
                elif ra == "ucc-ilp" and updatable:
                    from ..regalloc.ilp_ra import allocate_ucc_ilp

                    record, ilp_report = allocate_ucc_ilp(
                        fn,
                        old.module.functions[name],
                        old.records[name],
                        energy=self.energy,
                        k=cfg.k,
                        expected_runs=cfg.expected_runs,
                    )
                    ra_reports[name] = ilp_report.greedy
                else:
                    record = baseline(fn)
                if options.verify:
                    verify_allocation(record, analyze(fn))
                records[name] = record

        # -- data layout ------------------------------------------------------
        with trace.span("update.datalayout", da=da):
            objects = collect_layout_objects(
                module,
                spill_orders={n: r.spill_order for n, r in records.items()},
                depths=options.depths,
            )
            da_report = None
            if da == "ucc":
                layout, da_report = allocate_ucc_da(
                    objects, old.layout, cfg.space_threshold
                )
            else:
                layout = allocate_gcc_da(objects)

        # -- back end + diff -----------------------------------------------------
        old_slot_words = {
            slot.name: old.image.words_in_range(
                slot.start, slot.start + slot.slot_words
            )
            for slot in old.placement.slots
        }

        def finish(strategy: str):
            machine, image, plan = compiler.back_end(
                module,
                records,
                layout,
                old_placement=old.placement,
                placement_strategy=strategy,
                old_slot_words=old_slot_words,
            )
            return machine, image, plan, diff_images(old.image, image)

        if cp == "auto":
            # Evaluate both placements, ship the smaller script.
            candidates = [finish("ucc"), finish("gcc")]
            candidates.sort(key=lambda c: (c[3].script.size_bytes, c[2].algorithm != "ucc"))
            machine, image, plan, diff = candidates[0]
        else:
            machine, image, plan, diff = finish(cp)

        new_program = CompiledProgram(
            source=new_source,
            checked=module.checked,
            module=module,
            records=records,
            layout=layout,
            machine=machine,
            image=image,
            options=options,
            placement=plan,
        )
        data_script = diff_data(old.image.data, image.data)
        if verify:
            with trace.span("update.verify"):
                verify_patch(old.image, image, diff.script)
                if apply_data(old.image.data, data_script) != image.data:
                    raise PatchDivergenceError(
                        "data", "data-segment patch does not round-trip"
                    )
        packets = packetize(diff.script)
        packets = Packetisation(
            script_bytes=diff.script.size_bytes + data_script.size_bytes,
            payload_per_packet=packets.payload_per_packet,
            overhead_per_packet=packets.overhead_per_packet,
        )
        result = UpdateResult(
            old=old,
            new=new_program,
            ra_strategy=ra,
            da_strategy=da,
            diff=diff,
            packets=packets,
            data_script=data_script,
            ra_reports=ra_reports,
            da_report=da_report,
        )
        metrics.counter("update.plans").inc()
        metrics.histogram("update.script_bytes").observe(result.script_bytes)
        metrics.histogram("update.packets").observe(packets.packet_count)
        if checked:
            # Lazy import (see Compiler.compile).
            from ..analysis import verify_update

            verify_update(result, cnt=cfg.expected_runs).raise_if_failed()
        return result

    def plan_adaptive(
        self,
        new_source: str,
        cnt: float | None = None,
        da: str | None = None,
        energy: EnergyModel | None = None,
        config: UpdateConfig | None = None,
    ) -> UpdateResult:
        """Plan under both UCC-RA and the baseline, measure both, and
        return whichever minimises eq. 18's total energy at execution
        count ``cnt`` (defaults to the planner's ``expected_runs``).

        This is the paper's §5.5 fallback made explicit: *"UCC-RA falls
        back to GCC-RA when [the code] is executed more than 10^7 times
        because of the diminishing energy gain."*
        """
        if da is not None:
            warnings.warn(
                "the da= string flag is deprecated; pass "
                "config=repro.UpdateConfig(da=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        base = merge_legacy_strategy(
            config if config is not None else self.config, da=da
        )
        cnt = self.expected_runs if cnt is None else cnt
        energy = energy or self.energy
        # Both candidate plans see the same Cnt for their mov-insertion
        # decisions.
        base = replace(base, expected_runs=cnt)
        ucc = measure_cycles(
            self.plan(new_source, config=replace(base, ra="ucc"))
        )
        baseline = measure_cycles(
            self.plan(new_source, config=replace(base, ra="gcc"))
        )
        if ucc.diff_energy(cnt, energy) <= baseline.diff_energy(cnt, energy):
            ucc.ra_strategy = "ucc-adaptive(ucc)"
            return ucc
        baseline.ra_strategy = "ucc-adaptive(gcc)"
        return baseline


def measure_cycles(
    result: UpdateResult,
    fire_every_polls: int = 3,
    max_cycles: int = 20_000_000,
) -> UpdateResult:
    """Simulate both versions (single run) and fill
    ``old_cycles``/``new_cycles``.

    Uses the *poll-driven* timer so both binaries see the identical
    logical event schedule — Diff_cycle then reflects code quality, not
    timer-interleaving noise (see :class:`repro.sim.devices.Timer`).
    """
    old_run = run_image(
        result.old.image,
        devices=DeviceBoard(timer=Timer(fire_every_polls=fire_every_polls)),
        max_cycles=max_cycles,
    )
    new_run = run_image(
        result.new.image,
        devices=DeviceBoard(timer=Timer(fire_every_polls=fire_every_polls)),
        max_cycles=max_cycles,
    )
    result.old_cycles = old_run.cycles
    result.new_cycles = new_run.cycles
    return result


def profile_program(
    program: CompiledProgram,
    fire_every_polls: int = 3,
    max_cycles: int = 20_000_000,
):
    """Run ``program`` once with profiling on — paper §2.1's
    "program execution profiles" input to the update decisions."""
    return run_image(
        program.image,
        devices=DeviceBoard(timer=Timer(fire_every_polls=fire_every_polls)),
        max_cycles=max_cycles,
        collect_profile=True,
    )


def plan_update(
    old: CompiledProgram,
    new_source: str,
    ra: str | None = None,
    da: str | None = None,
    cp: str | None = None,
    energy: EnergyModel = DEFAULT_ENERGY_MODEL,
    k: int | None = None,
    expected_runs: float | None = None,
    space_threshold: int | None = None,
    checked: bool | None = None,
    config: UpdateConfig | None = None,
) -> UpdateResult:
    """One-call convenience wrapper around :class:`UpdatePlanner`.

    Prefer ``plan_update(old, source, config=UpdateConfig(...))``; the
    ``ra``/``da``/``cp`` string keywords are deprecation shims.
    """
    if ra is not None or da is not None or cp is not None:
        warnings.warn(
            "the ra=/da=/cp= string flags are deprecated; pass "
            "config=repro.UpdateConfig(ra=..., da=..., cp=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    cfg = merge_legacy_strategy(config, ra=ra, da=da, cp=cp, checked=checked)
    planner = UpdatePlanner(
        old,
        energy=energy,
        k=k,
        expected_runs=expected_runs,
        space_threshold=space_threshold,
        config=cfg,
    )
    return planner.plan(new_source)
