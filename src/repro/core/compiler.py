"""The sink-side compiler: ucc-C source → executable binary image.

:class:`Compiler` runs the full pipeline of paper Figure 1 —
front end → IR → optimization → code generation — and captures every
code-generation *decision* (register allocation records, data layout)
in the returned :class:`CompiledProgram`, because those decisions are
exactly what the update-conscious recompilation
(:mod:`repro.core.update`) feeds back in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datalayout.gcc_da import allocate_gcc_da
from ..datalayout.layout import DataLayout, collect_layout_objects
from ..ir.builder import build_ir
from ..ir.function import IRModule
from ..isa.assembler import BinaryImage, assemble
from ..isa.instructions import MachineInstr
from ..lang import frontend
from ..lang.sema import CheckedProgram
from ..obs import trace
from ..opt.passes import optimize_module
from ..codegen.placement import (
    PlacementPlan,
    apply_placement,
    baseline_placement,
    code_size_words,
    ucc_placement,
)
from ..codegen.selector import select_function
from ..regalloc.base import AllocationRecord, verify_allocation
from ..regalloc.graph_coloring import allocate_graph_coloring
from ..regalloc.linear_scan import allocate_linear_scan
from ..ir.liveness import analyze

#: Baseline register allocators by name.
RA_BASELINES = {
    "gcc": allocate_graph_coloring,
    "linear": allocate_linear_scan,
}


@dataclass
class CompilerOptions:
    """Knobs of one compile."""

    #: baseline register allocator: "gcc" (graph coloring) or "linear"
    register_allocator: str = "gcc"
    #: run the optimization passes (paper compiles with -O3)
    optimize: bool = True
    #: per-function Depth_i overrides (paper §4), name -> depth
    depths: dict[str, int] = field(default_factory=dict)
    #: verify allocations against liveness (cheap; on by default)
    verify: bool = True
    #: slack words added to every function slot at placement time
    #: (pre-provisioned growth room for maintenance; see
    #: repro.codegen.placement)
    placement_headroom: int = 0
    #: run the full repro.analysis verification passes after every
    #: compile/update and raise VerificationError on any finding
    checked: bool = False


@dataclass
class CompiledProgram:
    """A compiled binary plus every decision needed to update it later."""

    source: str
    checked: CheckedProgram
    module: IRModule
    records: dict[str, AllocationRecord]
    layout: DataLayout
    machine: list[MachineInstr]
    image: BinaryImage
    options: CompilerOptions
    placement: PlacementPlan = field(default_factory=PlacementPlan)

    @property
    def instruction_count(self) -> int:
        return self.image.instruction_count()

    @property
    def size_words(self) -> int:
        return self.image.size_words

    def function_names(self) -> list[str]:
        return list(self.module.functions)

    def disassemble(self) -> str:
        return self.image.disassemble()


class Compiler:
    """Compiles ucc-C source with a chosen baseline allocator."""

    def __init__(self, options: CompilerOptions | None = None):
        self.options = options or CompilerOptions()

    # Individual stages are exposed so the update planner can rerun the
    # back end with substituted decisions.

    def front_and_middle(self, source: str, filename: str = "<source>") -> IRModule:
        """Front end + optimization: source → optimized IR (paper's IR')."""
        with trace.span("compile.front_middle", filename=filename):
            checked = frontend(source, filename)
            module = build_ir(checked)
            for name, depth in self.options.depths.items():
                if name in module.functions:
                    module.functions[name].depth = depth
            if self.options.optimize:
                optimize_module(module)
            return module

    def allocate_registers(self, module: IRModule) -> dict[str, AllocationRecord]:
        with trace.span(
            "compile.regalloc", allocator=self.options.register_allocator
        ):
            allocator = RA_BASELINES[self.options.register_allocator]
            records = {}
            for name, fn in module.functions.items():
                record = allocator(fn)
                if self.options.verify:
                    verify_allocation(record, analyze(fn))
                records[name] = record
            return records

    def lay_out_data(
        self, module: IRModule, records: dict[str, AllocationRecord]
    ) -> DataLayout:
        with trace.span("compile.datalayout", allocator="gcc"):
            objects = collect_layout_objects(
                module,
                spill_orders={name: rec.spill_order for name, rec in records.items()},
                depths=self.options.depths,
            )
            return allocate_gcc_da(objects)

    def back_end(
        self,
        module: IRModule,
        records: dict[str, AllocationRecord],
        layout: DataLayout,
        old_placement: PlacementPlan | None = None,
        placement_strategy: str = "baseline",
        old_slot_words: dict[str, tuple[int, ...]] | None = None,
    ) -> tuple[list[MachineInstr], BinaryImage, PlacementPlan]:
        """Instruction selection + placement + assembly.

        ``placement_strategy="ucc"`` (with ``old_placement``) keeps
        surviving functions at their old flash addresses so call sites
        do not re-encode; ``"baseline"`` packs in definition order.
        """
        with trace.span("compile.backend", placement=placement_strategy):
            return self._back_end(
                module,
                records,
                layout,
                old_placement,
                placement_strategy,
                old_slot_words,
            )

    def _back_end(
        self,
        module: IRModule,
        records: dict[str, AllocationRecord],
        layout: DataLayout,
        old_placement: PlacementPlan | None,
        placement_strategy: str,
        old_slot_words: dict[str, tuple[int, ...]] | None,
    ) -> tuple[list[MachineInstr], BinaryImage, PlacementPlan]:
        function_code = {
            name: select_function(fn, records[name], layout, module)
            for name, fn in module.functions.items()
        }
        sizes = {
            name: code_size_words(code) for name, code in function_code.items()
        }
        order = list(module.functions)
        if placement_strategy == "ucc" and old_placement is not None:
            plan = ucc_placement(
                sizes,
                order,
                old_placement,
                self.options.placement_headroom,
                old_slot_words=old_slot_words,
            )
        else:
            plan = baseline_placement(
                sizes, order, self.options.placement_headroom
            )
        machine = apply_placement(function_code, plan)
        data = build_data_image(module, layout)
        image = assemble(machine, data=data, data_base=layout.segment_base)
        for slot in plan.slots:  # the plan must match reality
            assert image.symbols[slot.name] == slot.start, slot
        return machine, image, plan

    def compile(self, source: str, filename: str = "<source>") -> CompiledProgram:
        """Run the whole pipeline."""
        with trace.span("compile.full", filename=filename):
            return self._compile(source, filename)

    def _compile(self, source: str, filename: str) -> CompiledProgram:
        module = self.front_and_middle(source, filename)
        records = self.allocate_registers(module)
        layout = self.lay_out_data(module, records)
        machine, image, plan = self.back_end(module, records, layout)
        program = CompiledProgram(
            source=source,
            checked=module.checked,
            module=module,
            records=records,
            layout=layout,
            machine=machine,
            image=image,
            options=self.options,
            placement=plan,
        )
        if self.options.checked:
            # Lazy import: repro.analysis reaches back into regalloc and
            # datalayout, so a top-level import would cycle.
            from ..analysis import verify_program

            verify_program(program).raise_if_failed()
        return program


def build_data_image(module: IRModule, layout: DataLayout) -> bytes:
    """Initial data-segment bytes: global initialisers at their addresses."""
    size = layout.segment_end - layout.segment_base
    data = bytearray(size)
    inits = module.checked.global_inits
    for sym in module.globals:
        if sym.uid not in layout.addresses:
            continue
        offset = layout.addresses[sym.uid] - layout.segment_base
        value = inits.get(sym.name, 0)
        if sym.ctype.is_array:
            element = sym.ctype.element_size
            for i, item in enumerate(value):
                _poke(data, offset + i * element, item, element)
        else:
            _poke(data, offset, value, sym.ctype.element_size)
    return bytes(data)


def _poke(data: bytearray, offset: int, value: int, size: int) -> None:
    data[offset] = value & 0xFF
    if size == 2:
        data[offset + 1] = (value >> 8) & 0xFF


def compile_source(
    source: str,
    register_allocator: str = "gcc",
    optimize: bool = True,
    filename: str = "<source>",
    checked: bool = False,
) -> CompiledProgram:
    """One-call convenience compile."""
    options = CompilerOptions(
        register_allocator=register_allocator, optimize=optimize, checked=checked
    )
    return Compiler(options).compile(source, filename)
