"""End-to-end pipeline: compiler, update planner, dissemination session."""

from .compiler import (
    CompiledProgram,
    Compiler,
    CompilerOptions,
    RA_BASELINES,
    build_data_image,
    compile_source,
)
from .update import (
    UpdatePlanner,
    UpdateResult,
    measure_cycles,
    plan_update,
    profile_program,
)

__all__ = [
    "CompiledProgram",
    "Compiler",
    "CompilerOptions",
    "RA_BASELINES",
    "UpdatePlanner",
    "UpdateResult",
    "build_data_image",
    "compile_source",
    "measure_cycles",
    "plan_update",
]

from .session import CampaignResult, SessionResult, UpdateSession

__all__ += [
    "CampaignResult",
    "SessionResult",
    "UpdateSession",
    "profile_program",
]
