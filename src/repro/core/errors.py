"""Structured core-layer errors.

Mirrors :mod:`repro.net.errors`: every expected failure mode in the
compile/update/session layer gets a typed exception that subclasses the
builtin it replaces, so pre-existing ``except ValueError`` /
``pytest.raises(AssertionError)`` sites keep working while new callers
can catch the precise condition and read structured attributes instead
of parsing messages.  The ERR001 lint rule enforces that this layer
never raises the bare builtins directly.
"""

from __future__ import annotations


class PlanStateError(ValueError):
    """An :class:`~repro.core.update.UpdatePlan` accessor was used out of
    order (e.g. ``diff_cycle`` before ``measure_cycles()``).

    ``needed`` names the call that must happen first.
    """

    def __init__(self, needed: str, message: str):
        self.needed = needed
        super().__init__(message)


class EmptyFleetError(ValueError):
    """A fleet-wide quantity is undefined because there are no sensor
    nodes to amortise it over.

    ``node_count`` is the (sink-inclusive) size of the topology that
    triggered the error, or 0 for a result with no patched nodes.
    """

    def __init__(self, node_count: int, message: str):
        self.node_count = node_count
        super().__init__(message)


class PatchDivergenceError(AssertionError):
    """The sensor-side reconstruction does not match the sink's binary.

    This is the update pipeline's last-line safety check: the script
    the sink is about to broadcast, applied to the deployed image, must
    rebuild the new image bit-for-bit (the same verification every
    node's staged bank performs packet-by-packet before its boot
    pointer flips).  ``stage`` says which check failed (``"text"``,
    ``"data"``, or ``"session"``).

    Subclasses :class:`AssertionError` because divergence is an
    invariant violation, not an input error — and so existing
    ``except AssertionError`` sites keep working.
    """

    def __init__(self, stage: str, message: str):
        self.stage = stage
        super().__init__(message)


__all__ = ["EmptyFleetError", "PatchDivergenceError", "PlanStateError"]
