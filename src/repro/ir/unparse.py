"""Normalised single-line rendering of AST statements and expressions.

The chunk matcher (paper §3.2) needs a *stable identity* for each source
statement so that the old and new IR can be aligned.  We use the
statement's normalised source text: whitespace-insensitive, fully
parenthesised, with compound statements reduced to their headers
(``if (cond)``, ``while (cond)``...).  Two statements that parse to the
same AST render identically.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast


def render_expr(expr: ast.Expr) -> str:
    """Render an expression fully parenthesised."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.NameRef):
        return expr.name
    if isinstance(expr, ast.IndexExpr):
        return f"{render_expr(expr.base)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.UnaryExpr):
        return f"{expr.op}({render_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryExpr):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.CastExpr):
        # Casts are sema-inserted; identity must match the source text.
        return render_expr(expr.operand)
    raise TypeError(f"cannot render {type(expr).__name__}")


def render_stmt_header(stmt: ast.Stmt) -> str:
    """Render a statement's identity line (headers for compound stmts)."""
    if isinstance(stmt, ast.DeclStmt):
        text = f"{stmt.var_type} {stmt.name}"
        if stmt.is_const:
            text = "const " + text
        if stmt.init is not None:
            text += f" = {render_expr(stmt.init)}"
        elif stmt.init_list is not None:
            items = ", ".join(render_expr(e) for e in stmt.init_list)
            text += " = {" + items + "}"
        return text + ";"
    if isinstance(stmt, ast.AssignStmt):
        op = (stmt.op + "=") if stmt.op else "="
        return f"{render_expr(stmt.target)} {op} {render_expr(stmt.value)};"
    if isinstance(stmt, ast.ExprStmt):
        return f"{render_expr(stmt.expr)};"
    if isinstance(stmt, ast.IfStmt):
        return f"if ({render_expr(stmt.cond)})"
    if isinstance(stmt, ast.WhileStmt):
        return f"while ({render_expr(stmt.cond)})"
    if isinstance(stmt, ast.ForStmt):
        init = render_stmt_header(stmt.init).rstrip(";") if stmt.init else ""
        cond = render_expr(stmt.cond) if stmt.cond else ""
        step = render_stmt_header(stmt.step).rstrip(";") if stmt.step else ""
        return f"for ({init}; {cond}; {step})"
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            return f"return {render_expr(stmt.value)};"
        return "return;"
    if isinstance(stmt, ast.BreakStmt):
        return "break;"
    if isinstance(stmt, ast.ContinueStmt):
        return "continue;"
    if isinstance(stmt, ast.Block):
        return "{"
    raise TypeError(f"cannot render {type(stmt).__name__}")
