"""Three-address intermediate representation.

This is the ``IR`` of the paper's Figure 1: the representation left after
the machine-independent optimization passes, on which UCC's code
generation (register allocation + data layout) operates.

Design points that matter for the reproduction:

* Operands are virtual registers (:class:`VReg`) or immediates
  (:class:`Imm`).  Named program variables become *named* vregs whose
  identity is the semantic symbol uid, so the same source variable has
  the same vreg name before and after a source update.
* Expression temporaries are numbered *per source statement* and each
  IR instruction records its originating statement.  Because numbering
  restarts at every statement, inserting a statement does not rename
  the temporaries of unchanged statements — this is what makes the
  changed/unchanged chunk identification of paper §3.2 well defined.
* Global variables and arrays stay memory-resident and are accessed via
  explicit ``LOADG``/``STOREG``/``LOADIDX``/``STOREIDX`` instructions.
  Their machine encodings embed data-segment addresses, which is how
  the data-layout decisions (paper §4) show up in the binary diff.
* An IR instruction has at most two distinct variable operands, the
  property paper §3.4 relies on when linearising the update-energy term.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..lang.types import Type, U8


class IROp(enum.Enum):
    """IR opcodes."""

    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    NOT = "not"
    CAST = "cast"
    # comparisons produce a u8 0/1
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    # memory
    LOADG = "loadg"  # dst, MemRef
    STOREG = "storeg"  # MemRef, src
    LOADIDX = "loadidx"  # dst, MemRef(array), index
    STOREIDX = "storeidx"  # MemRef(array), index, src
    # control flow
    LABEL = "label"
    JUMP = "jump"
    CBR = "cbr"  # cond, true_label, false_label
    CALL = "call"  # dst(optional), fname, args...
    RET = "ret"  # optional src
    # devices
    IOREAD = "ioread"  # dst, port name
    IOWRITE = "iowrite"  # port name, src
    HALT = "halt"


#: Opcodes that transfer control (end a basic block).
TERMINATORS = frozenset({IROp.JUMP, IROp.CBR, IROp.RET, IROp.HALT})

#: Three-address ALU ops with two source operands.
BINARY_OPS = frozenset(
    {
        IROp.ADD,
        IROp.SUB,
        IROp.MUL,
        IROp.DIV,
        IROp.MOD,
        IROp.AND,
        IROp.OR,
        IROp.XOR,
        IROp.SHL,
        IROp.SHR,
        IROp.CMPEQ,
        IROp.CMPNE,
        IROp.CMPLT,
        IROp.CMPLE,
        IROp.CMPGT,
        IROp.CMPGE,
    }
)

#: Ops with a single source operand.
UNARY_OPS = frozenset({IROp.MOV, IROp.NEG, IROp.NOT, IROp.CAST})

#: Comparison opcodes and their negations (used by branch folding).
COMPARISONS = frozenset(
    {IROp.CMPEQ, IROp.CMPNE, IROp.CMPLT, IROp.CMPLE, IROp.CMPGT, IROp.CMPGE}
)
NEGATED_COMPARISON = {
    IROp.CMPEQ: IROp.CMPNE,
    IROp.CMPNE: IROp.CMPEQ,
    IROp.CMPLT: IROp.CMPGE,
    IROp.CMPLE: IROp.CMPGT,
    IROp.CMPGT: IROp.CMPLE,
    IROp.CMPGE: IROp.CMPLT,
}


@dataclass(frozen=True)
class VReg:
    """A virtual register.

    ``name`` is the symbol uid for named program variables
    (``"main.i"``, ``"counter"``) or ``"$<stmt>.<k>"`` for the ``k``-th
    temporary of source statement ``<stmt>``.  Temporary names are
    globally unique (so liveness treats each as its own value) but the
    *normalised* rendering masks the statement id, so an unchanged
    statement renders identically before and after a source update.
    """

    name: str
    ctype: Type = U8

    @property
    def is_temp(self) -> bool:
        return self.name.startswith("$")

    @property
    def local_temp_name(self) -> str:
        """Statement-local identity: ``$3.1`` -> ``$.1``."""
        if not self.is_temp:
            return self.name
        return "$." + self.name.split(".", 1)[1]

    @property
    def size(self) -> int:
        return self.ctype.element_size

    def __str__(self) -> str:
        return f"%{self.name}:{self.ctype.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: int
    ctype: Type = U8

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class MemRef:
    """A reference to a memory-resident variable (global or array).

    ``symbol`` is the semantic symbol uid.  The actual address is bound
    later by the data-layout pass; the IR stays layout-independent.
    """

    symbol: str
    ctype: Type = U8

    def __str__(self) -> str:
        return f"@{self.symbol}"


@dataclass(frozen=True)
class Label:
    """A branch target."""

    name: str

    def __str__(self) -> str:
        return f".{self.name}"


Operand = object  # VReg | Imm | MemRef | Label | str


@dataclass
class IRInstr:
    """One three-address IR instruction.

    ``stmt_id`` identifies the source statement the instruction was
    lowered from; ``stmt_text`` is that statement's normalised source
    text (used by the chunker to match old/new IR).
    """

    op: IROp
    dst: VReg | None = None
    args: tuple = ()
    stmt_id: int = -1
    stmt_text: str = ""
    # Filled by profiling / update planning:
    freq: float = 1.0

    # -- operand accessors -------------------------------------------------

    def uses(self) -> list[VReg]:
        """Virtual registers read by this instruction."""
        used = [a for a in self.args if isinstance(a, VReg)]
        return used

    def defs(self) -> list[VReg]:
        """Virtual registers written by this instruction."""
        return [self.dst] if self.dst is not None else []

    def vregs(self) -> list[VReg]:
        return self.defs() + self.uses()

    def variables(self) -> list[str]:
        """Distinct vreg names touched, definition first."""
        seen: list[str] = []
        for reg in self.vregs():
            if reg.name not in seen:
                seen.append(reg.name)
        return seen

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def is_label(self) -> bool:
        return self.op is IROp.LABEL

    @property
    def label_name(self) -> str:
        assert self.op is IROp.LABEL
        return self.args[0].name

    def branch_targets(self) -> list[str]:
        """Label names this instruction may jump to."""
        return [a.name for a in self.args if isinstance(a, Label)]

    # -- rendering ---------------------------------------------------------

    def render(self, normalized: bool = False) -> str:
        """A textual form of the instruction.

        With ``normalized=True``, label identities and temporary
        statement-ids are masked, so purely positional renumbering
        (labels shifting, statements moving) does not make an unchanged
        instruction look changed.  Chunk matching (paper §3.2) compares
        normalised renderings.
        """

        def fmt(arg) -> str:
            if isinstance(arg, Label):
                return ".L?" if normalized else str(arg)
            if normalized and isinstance(arg, VReg):
                return f"%{arg.local_temp_name}:{arg.ctype.name}"
            return str(arg)

        parts = []
        if self.dst is not None:
            parts.append(f"{fmt(self.dst)} =")
        parts.append(self.op.value)
        parts.extend(fmt(arg) for arg in self.args)
        return " ".join(parts)

    def normalized(self) -> str:
        """Shorthand for :meth:`render` with ``normalized=True``."""
        return self.render(normalized=True)

    def __str__(self) -> str:
        return self.render()


def make_temp(stmt_id: int, counter: int, ctype: Type) -> VReg:
    """Create the ``counter``-th temporary of statement ``stmt_id``."""
    return VReg(f"${stmt_id}.{counter}", ctype)
