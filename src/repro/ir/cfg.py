"""Control-flow graph over linear IR.

Basic blocks are index ranges into the function's instruction list.
The CFG is consumed by liveness analysis, the optimizer (jump threading,
unreachable-code removal), and the loop-depth estimator that seeds
``freq(s)`` when no dynamic profile is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .function import IRFunction
from .instructions import IROp


@dataclass
class BasicBlock:
    """A maximal straight-line region ``instrs[start:end]``."""

    index: int
    start: int
    end: int  # exclusive
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def instruction_indices(self) -> range:
        return range(self.start, self.end)


@dataclass
class CFG:
    """The control-flow graph of one IR function."""

    function: IRFunction
    blocks: list[BasicBlock] = field(default_factory=list)
    #: instruction index -> block index
    block_of: dict[int, int] = field(default_factory=dict)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def successors_of_instr(self, idx: int) -> list[int]:
        """Instruction indices that may execute after ``idx``."""
        instrs = self.function.instrs
        ins = instrs[idx]
        block = self.blocks[self.block_of[idx]]
        if idx + 1 < block.end and not ins.is_terminator:
            return [idx + 1]
        result = []
        for succ in block.successors:
            result.append(self.blocks[succ].start)
        return result


def build_cfg(fn: IRFunction) -> CFG:
    """Split ``fn`` into basic blocks and connect the edges."""
    instrs = fn.instrs
    labels = fn.labels()

    # Block leaders: index 0, every label, every instruction following a
    # terminator.
    leaders = {0} if instrs else set()
    for idx, ins in enumerate(instrs):
        if ins.op is IROp.LABEL:
            leaders.add(idx)
        if ins.is_terminator and idx + 1 < len(instrs):
            leaders.add(idx + 1)

    ordered = sorted(leaders)
    cfg = CFG(function=fn)
    for block_index, start in enumerate(ordered):
        end = ordered[block_index + 1] if block_index + 1 < len(ordered) else len(instrs)
        block = BasicBlock(index=block_index, start=start, end=end)
        cfg.blocks.append(block)
        for idx in range(start, end):
            cfg.block_of[idx] = block_index

    label_block = {
        name: cfg.block_of[idx] for name, idx in labels.items()
    }

    for block in cfg.blocks:
        if block.start == block.end:
            continue
        last = instrs[block.end - 1]
        succs: list[int] = []
        if last.op is IROp.JUMP:
            succs = [label_block[last.args[0].name]]
        elif last.op is IROp.CBR:
            succs = [label_block[a.name] for a in last.args[1:]]
        elif last.op in (IROp.RET, IROp.HALT):
            succs = []
        else:
            if block.index + 1 < len(cfg.blocks):
                succs = [block.index + 1]
        block.successors = succs
        for succ in succs:
            cfg.blocks[succ].predecessors.append(block.index)
    return cfg


def reachable_blocks(cfg: CFG) -> set[int]:
    """Blocks reachable from the entry."""
    if not cfg.blocks:
        return set()
    seen = {0}
    stack = [0]
    while stack:
        block = cfg.blocks[stack.pop()]
        for succ in block.successors:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def loop_depths(cfg: CFG) -> dict[int, int]:
    """Approximate loop nesting depth per block.

    A back edge is an edge to a block with a smaller start index (our
    lowering emits loop headers before bodies, so this identifies the
    natural loops the front end produces).  Used to seed static
    execution-frequency estimates (``freq(s)`` in the paper's objective)
    when no dynamic profile is supplied.
    """
    depths = {block.index: 0 for block in cfg.blocks}
    # Collect loop ranges [header_block, latch_block] from back edges.
    loops = []
    for block in cfg.blocks:
        for succ in block.successors:
            if succ <= block.index:
                loops.append((succ, block.index))
    for header, latch in loops:
        for idx in range(header, latch + 1):
            depths[idx] += 1
    return depths


def static_frequencies(fn: IRFunction, loop_weight: float = 10.0) -> dict[int, float]:
    """Static per-instruction execution frequency estimate.

    Each loop nesting level multiplies the base frequency by
    ``loop_weight``, the classic compiler heuristic.  Keys are
    instruction indices.
    """
    cfg = build_cfg(fn)
    depths = loop_depths(cfg)
    freqs: dict[int, float] = {}
    for block in cfg.blocks:
        weight = loop_weight ** depths[block.index]
        for idx in block.instruction_indices():
            freqs[idx] = weight
    return freqs
