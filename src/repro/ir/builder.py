"""AST → IR lowering.

Lowering conventions (see also :mod:`repro.ir.instructions`):

* scalar locals and parameters live in *named* virtual registers keyed
  by their semantic symbol uid;
* scalar globals stay memory-resident and every access is an explicit
  ``LOADG``/``STOREG``;
* arrays (global or local) are memory-resident and accessed through
  ``LOADIDX``/``STOREIDX``;
* expression temporaries are numbered from zero *within each source
  statement* and every emitted instruction records the statement's id
  and normalised text (chunk matching relies on this);
* short-circuit ``&&``/``||`` and comparison conditions lower directly
  to conditional branches where possible.
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.errors import SemanticError
from ..lang.sema import CheckedProgram, Symbol, SymbolKind
from ..lang.types import Type, U8, U16
from .instructions import (
    IRInstr,
    IROp,
    Imm,
    Label,
    MemRef,
    VReg,
)
from .function import IRFunction, IRModule
from .unparse import render_stmt_header

_BINOP_TO_IR = {
    "+": IROp.ADD,
    "-": IROp.SUB,
    "*": IROp.MUL,
    "/": IROp.DIV,
    "%": IROp.MOD,
    "&": IROp.AND,
    "|": IROp.OR,
    "^": IROp.XOR,
    "<<": IROp.SHL,
    ">>": IROp.SHR,
    "==": IROp.CMPEQ,
    "!=": IROp.CMPNE,
    "<": IROp.CMPLT,
    "<=": IROp.CMPLE,
    ">": IROp.CMPGT,
    ">=": IROp.CMPGE,
}

#: builtin name -> device port name (addresses assigned in repro.isa).
BUILTIN_PORTS = {
    "led_set": "led",
    "led_get": "led",
    "radio_send": "radio",
    "adc_read": "adc",
    "timer_fired": "timer",
}


class IRBuilder:
    """Lowers a checked program to an :class:`IRModule`."""

    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.module = IRModule(checked=checked)

    def build(self) -> IRModule:
        for name, checked_fn in self.checked.functions.items():
            lowering = _FunctionLowering(self, checked_fn)
            self.module.functions[name] = lowering.lower()
        return self.module

    # -- symbol classification --------------------------------------------

    def symbol_for(self, name: str, fn: "._FunctionLowering") -> Symbol:
        sym = fn.lookup(name)
        if sym is not None:
            return sym
        return self.checked.global_symbol(name)


class _FunctionLowering:
    """Per-function lowering state."""

    def __init__(self, builder: IRBuilder, checked_fn):
        self.builder = builder
        self.checked_fn = checked_fn
        definition = checked_fn.definition
        self.fn = IRFunction(name=definition.name, return_type=definition.return_type)
        self.temp_counter = 0
        self.label_counter = 0
        self.stmt_counter = 0
        self.current_stmt_id = -1
        self.current_stmt_text = ""
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break) labels
        # name -> Symbol for params/locals visible in this function.  ucc-C
        # scoping was validated by sema; lowering keys by name with the
        # last declaration winning inside its region, which is sufficient
        # because sema gave shadowed locals distinct uids in order.
        self._symbols: dict[str, Symbol] = {}
        self._shadow_stack: list[dict[str, Symbol | None]] = []
        # Sema records locals in declaration-walk order, which matches the
        # lowering walk; this cursor pairs each DeclStmt with its Symbol.
        self._local_decl_index = 0
        for sym in checked_fn.params:
            self._symbols[sym.name] = sym

    # -- plumbing -----------------------------------------------------------

    def lookup(self, name: str) -> Symbol | None:
        return self._symbols.get(name)

    def new_temp(self, ctype: Type) -> VReg:
        reg = VReg(f"${self.current_stmt_id}.{self.temp_counter}", ctype)
        self.temp_counter += 1
        return reg

    def new_label(self) -> Label:
        label = Label(f"L{self.label_counter}")
        self.label_counter += 1
        return label

    def emit(self, op: IROp, dst: VReg | None = None, *args) -> IRInstr:
        instr = IRInstr(
            op=op,
            dst=dst,
            args=tuple(args),
            stmt_id=self.current_stmt_id,
            stmt_text=self.current_stmt_text,
        )
        return self.fn.append(instr)

    def place_label(self, label: Label) -> None:
        self.emit(IROp.LABEL, None, label)

    def begin_stmt(self, stmt: ast.Stmt) -> None:
        self.stmt_counter += 1
        self.current_stmt_id = self.stmt_counter
        self.current_stmt_text = render_stmt_header(stmt)
        self.temp_counter = 0

    # -- function driver ------------------------------------------------------

    def lower(self) -> IRFunction:
        definition = self.checked_fn.definition
        for sym in self.checked_fn.params:
            self.fn.param_vregs.append(VReg(sym.uid, sym.ctype))
        self.lower_block(definition.body)
        # Guarantee a terminator at the end of every function.
        if not self.fn.instrs or not self.fn.instrs[-1].is_terminator:
            self.current_stmt_id = -1
            self.current_stmt_text = "<implicit-return>"
            if definition.return_type.is_void:
                self.emit(IROp.RET)
            else:
                self.emit(IROp.RET, None, Imm(0, definition.return_type))
        return self.fn

    # -- statements --------------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        shadowed: dict[str, Symbol | None] = {}
        self._shadow_stack.append(shadowed)
        for stmt in block.statements:
            self.lower_stmt(stmt)
        self._shadow_stack.pop()
        for name, old in shadowed.items():
            if old is None:
                self._symbols.pop(name, None)
            else:
                self._symbols[name] = old

    def _declare(self, stmt: ast.DeclStmt) -> Symbol:
        symbol = self.checked_fn.locals[self._local_decl_index]
        self._local_decl_index += 1
        assert symbol.name == stmt.name, "decl order mismatch with sema"
        if self._shadow_stack:
            self._shadow_stack[-1].setdefault(
                stmt.name, self._symbols.get(stmt.name)
            )
        self._symbols[stmt.name] = symbol
        return symbol

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
            return
        self.begin_stmt(stmt)
        if isinstance(stmt, ast.DeclStmt):
            self.lower_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.IfStmt):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self.emit(IROp.RET)
            else:
                value = self.lower_expr(stmt.value)
                self.emit(IROp.RET, None, value)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise SemanticError("break outside loop", stmt.location)
            self.emit(IROp.JUMP, None, Label(self.loop_stack[-1][1]))
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise SemanticError("continue outside loop", stmt.location)
            self.emit(IROp.JUMP, None, Label(self.loop_stack[-1][0]))
        else:  # pragma: no cover
            raise SemanticError(f"cannot lower {type(stmt).__name__}", stmt.location)

    def lower_decl(self, stmt: ast.DeclStmt) -> None:
        symbol = self._declare(stmt)
        if symbol.ctype.is_array:
            self.fn.local_arrays.append(symbol)
            ref = MemRef(symbol.uid, symbol.ctype)
            if stmt.init_list is not None:
                element = symbol.ctype.element_type()
                for idx, expr in enumerate(stmt.init_list):
                    value = self.lower_expr(expr)
                    value = self.coerce(value, element)
                    self.emit(IROp.STOREIDX, None, ref, Imm(idx, U8), value)
            return
        dest = VReg(symbol.uid, symbol.ctype)
        if stmt.init is not None:
            self.lower_expr_into(stmt.init, dest)
        else:
            self.emit(IROp.MOV, dest, Imm(0, symbol.ctype))

    def lower_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        if isinstance(target, ast.NameRef):
            symbol = self.builder.symbol_for(target.name, self)
            if symbol.kind is SymbolKind.GLOBAL:
                self._assign_global(stmt, symbol)
            else:
                self._assign_register(stmt, symbol)
        elif isinstance(target, ast.IndexExpr):
            self._assign_element(stmt, target)
        else:  # pragma: no cover - parser enforces assignability
            raise SemanticError("bad assignment target", stmt.location)

    def _assign_register(self, stmt: ast.AssignStmt, symbol: Symbol) -> None:
        dest = VReg(symbol.uid, symbol.ctype)
        if not stmt.op:
            self.lower_expr_into(stmt.value, dest)
            return
        value = self.lower_expr(stmt.value)
        value = self.coerce(value, symbol.ctype)
        self.emit(_BINOP_TO_IR[stmt.op], dest, dest, value)

    def _assign_global(self, stmt: ast.AssignStmt, symbol: Symbol) -> None:
        ref = MemRef(symbol.uid, symbol.ctype)
        if not stmt.op:
            value = self.lower_expr(stmt.value)
            value = self.coerce(value, symbol.ctype)
            self.emit(IROp.STOREG, None, ref, value)
            return
        current = self.new_temp(symbol.ctype)
        self.emit(IROp.LOADG, current, ref)
        value = self.lower_expr(stmt.value)
        value = self.coerce(value, symbol.ctype)
        result = self.new_temp(symbol.ctype)
        self.emit(_BINOP_TO_IR[stmt.op], result, current, value)
        self.emit(IROp.STOREG, None, ref, result)

    def _assign_element(self, stmt: ast.AssignStmt, target: ast.IndexExpr) -> None:
        if not isinstance(target.base, ast.NameRef):  # pragma: no cover
            raise SemanticError("only direct array names can be indexed", stmt.location)
        symbol = self.builder.symbol_for(target.base.name, self)
        element = symbol.ctype.element_type()
        ref = MemRef(symbol.uid, symbol.ctype)
        index = self.lower_operand(target.index)
        if not stmt.op:
            value = self.lower_expr(stmt.value)
            value = self.coerce(value, element)
            self.emit(IROp.STOREIDX, None, ref, index, value)
            return
        current = self.new_temp(element)
        self.emit(IROp.LOADIDX, current, ref, index)
        value = self.lower_expr(stmt.value)
        value = self.coerce(value, element)
        result = self.new_temp(element)
        self.emit(_BINOP_TO_IR[stmt.op], result, current, value)
        self.emit(IROp.STOREIDX, None, ref, index, result)

    # -- control flow -------------------------------------------------------------

    def lower_if(self, stmt: ast.IfStmt) -> None:
        then_label = self.new_label()
        else_label = self.new_label()
        end_label = self.new_label() if stmt.else_body is not None else else_label
        self.lower_condition(stmt.cond, then_label, else_label)
        self.place_label(then_label)
        self.lower_block(stmt.then_body)
        if stmt.else_body is not None:
            self.begin_stmt(stmt)  # branch back carries the if's identity
            self.emit(IROp.JUMP, None, end_label)
            self.place_label(else_label)
            self.lower_block(stmt.else_body)
            self.place_label(end_label)
        else:
            self.place_label(end_label)

    def lower_while(self, stmt: ast.WhileStmt) -> None:
        head = self.new_label()
        body = self.new_label()
        exit_label = self.new_label()
        self.place_label(head)
        self.lower_condition(stmt.cond, body, exit_label)
        self.place_label(body)
        self.loop_stack.append((head.name, exit_label.name))
        self.lower_block(stmt.body)
        self.loop_stack.pop()
        self.begin_stmt(stmt)
        self.emit(IROp.JUMP, None, head)
        self.place_label(exit_label)

    def lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
            self.begin_stmt(stmt)
        head = self.new_label()
        body = self.new_label()
        step_label = self.new_label()
        exit_label = self.new_label()
        self.place_label(head)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body, exit_label)
        self.place_label(body)
        self.loop_stack.append((step_label.name, exit_label.name))
        self.lower_block(stmt.body)
        self.loop_stack.pop()
        self.place_label(step_label)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
            self.begin_stmt(stmt)
        self.emit(IROp.JUMP, None, head)
        self.place_label(exit_label)

    def lower_condition(self, cond: ast.Expr, true_label: Label, false_label: Label) -> None:
        """Lower ``cond`` as a branch to ``true_label``/``false_label``."""
        if isinstance(cond, ast.UnaryExpr) and cond.op == "!":
            self.lower_condition(cond.operand, false_label, true_label)
            return
        if isinstance(cond, ast.BinaryExpr) and cond.op == "&&":
            middle = self.new_label()
            self.lower_condition(cond.left, middle, false_label)
            self.place_label(middle)
            self.lower_condition(cond.right, true_label, false_label)
            return
        if isinstance(cond, ast.BinaryExpr) and cond.op == "||":
            middle = self.new_label()
            self.lower_condition(cond.left, true_label, middle)
            self.place_label(middle)
            self.lower_condition(cond.right, true_label, false_label)
            return
        value = self.lower_expr(cond)
        self.emit(IROp.CBR, None, value, true_label, false_label)

    # -- expressions ---------------------------------------------------------------

    def lower_operand(self, expr: ast.Expr):
        """Lower to a VReg or Imm operand (constants stay immediate)."""
        if isinstance(expr, ast.IntLiteral):
            return Imm(expr.value, expr.ctype or U8)
        if isinstance(expr, ast.CastExpr) and isinstance(expr.operand, ast.IntLiteral):
            return Imm(expr.operand.value, expr.target)
        return self.lower_expr(expr)

    def lower_expr(self, expr: ast.Expr, want_value: bool = True) -> VReg | Imm | None:
        """Lower an expression; returns its value operand.

        With ``want_value=False`` (expression statements) the result is
        discarded and void calls are allowed.
        """
        if isinstance(expr, ast.IntLiteral):
            return Imm(expr.value, expr.ctype or U8)
        if isinstance(expr, ast.NameRef):
            symbol = self.builder.symbol_for(expr.name, self)
            if symbol.kind is SymbolKind.GLOBAL:
                dest = self.new_temp(symbol.ctype)
                self.emit(IROp.LOADG, dest, MemRef(symbol.uid, symbol.ctype))
                return dest
            return VReg(symbol.uid, symbol.ctype)
        if isinstance(expr, ast.IndexExpr):
            assert isinstance(expr.base, ast.NameRef)
            symbol = self.builder.symbol_for(expr.base.name, self)
            index = self.lower_operand(expr.index)
            dest = self.new_temp(symbol.ctype.element_type())
            self.emit(IROp.LOADIDX, dest, MemRef(symbol.uid, symbol.ctype), index)
            return dest
        if isinstance(expr, ast.CastExpr):
            value = self.lower_expr(expr.operand)
            return self.coerce(value, expr.target)
        if isinstance(expr, ast.UnaryExpr):
            return self._lower_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr, want_value)
        raise SemanticError(
            f"cannot lower expression {type(expr).__name__}", expr.location
        )  # pragma: no cover

    def lower_expr_into(self, expr: ast.Expr, dest: VReg) -> None:
        """Lower ``expr`` writing the result directly into ``dest``."""
        if isinstance(expr, ast.BinaryExpr) and expr.op in _BINOP_TO_IR:
            left = self.lower_operand(expr.left)
            right = self.lower_operand(expr.right)
            self.emit(_BINOP_TO_IR[expr.op], dest, left, right)
            return
        if isinstance(expr, ast.UnaryExpr) and expr.op in ("-", "~"):
            operand = self.lower_operand(expr.operand)
            op = IROp.NEG if expr.op == "-" else IROp.NOT
            self.emit(op, dest, operand)
            return
        value = self.lower_expr(expr)
        value = self.coerce(value, dest.ctype)
        if isinstance(value, VReg) and value.name == dest.name:
            return
        self.emit(IROp.MOV, dest, value)

    def _lower_unary(self, expr: ast.UnaryExpr):
        if expr.op == "!":
            operand = self.lower_operand(expr.operand)
            dest = self.new_temp(U8)
            self.emit(IROp.CMPEQ, dest, operand, Imm(0, U8))
            return dest
        operand = self.lower_operand(expr.operand)
        dest = self.new_temp(expr.ctype or U8)
        self.emit(IROp.NEG if expr.op == "-" else IROp.NOT, dest, operand)
        return dest

    def _lower_binary(self, expr: ast.BinaryExpr):
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        left = self.lower_operand(expr.left)
        right = self.lower_operand(expr.right)
        dest = self.new_temp(expr.ctype or U8)
        self.emit(_BINOP_TO_IR[expr.op], dest, left, right)
        return dest

    def _lower_short_circuit(self, expr: ast.BinaryExpr) -> VReg:
        dest = self.new_temp(U8)
        true_label = self.new_label()
        false_label = self.new_label()
        end_label = self.new_label()
        self.lower_condition(expr, true_label, false_label)
        self.place_label(true_label)
        self.emit(IROp.MOV, dest, Imm(1, U8))
        self.emit(IROp.JUMP, None, end_label)
        self.place_label(false_label)
        self.emit(IROp.MOV, dest, Imm(0, U8))
        self.place_label(end_label)
        return dest

    def _lower_call(self, expr: ast.CallExpr, want_value: bool):
        from ..lang.sema import BUILTINS

        signature = BUILTINS.get(expr.callee)
        if signature is not None:
            return self._lower_builtin(expr, want_value)
        args = [self.lower_operand(a) for a in expr.args]
        fn_sig = self.builder.checked.functions[expr.callee].signature
        if fn_sig.return_type.is_void or not want_value:
            self.emit(IROp.CALL, None, expr.callee, *args)
            return None
        dest = self.new_temp(fn_sig.return_type)
        self.emit(IROp.CALL, dest, expr.callee, *args)
        return dest

    def _lower_builtin(self, expr: ast.CallExpr, want_value: bool):
        name = expr.callee
        if name == "halt":
            self.emit(IROp.HALT)
            return None
        port = BUILTIN_PORTS[name]
        if name in ("led_set",):
            value = self.lower_operand(expr.args[0])
            self.emit(IROp.IOWRITE, None, port, value)
            return None
        if name == "radio_send":
            value = self.lower_operand(expr.args[0])
            self.emit(IROp.IOWRITE, None, port, value)
            if want_value:
                dest = self.new_temp(U16)
                self.emit(IROp.MOV, dest, value)
                return dest
            return None
        # led_get / adc_read / timer_fired
        result_type = {"led_get": U8, "adc_read": U16, "timer_fired": U8}[name]
        dest = self.new_temp(result_type)
        self.emit(IROp.IOREAD, dest, port)
        return dest

    # -- coercions -------------------------------------------------------------------

    def coerce(self, value, target: Type):
        """Convert ``value`` to ``target`` width, emitting CAST if needed."""
        if isinstance(value, Imm):
            return Imm(value.value & target.max_value, target)
        if value is None:
            raise SemanticError("void value used", None)
        if value.ctype == target:
            return value
        dest = self.new_temp(target)
        self.emit(IROp.CAST, dest, value)
        return dest


def build_ir(checked: CheckedProgram) -> IRModule:
    """Lower a checked program to IR."""
    return IRBuilder(checked).build()
