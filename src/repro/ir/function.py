"""IR containers: functions and modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.sema import CheckedProgram, Symbol
from ..lang.types import Type
from .instructions import IRInstr, IROp, VReg


@dataclass
class IRFunction:
    """A function lowered to linear three-address code.

    ``instrs`` is the linear instruction list (labels included as
    pseudo-instructions).  ``param_vregs`` lists the vregs holding the
    incoming parameters in order.
    """

    name: str
    return_type: Type
    param_vregs: list[VReg] = field(default_factory=list)
    instrs: list[IRInstr] = field(default_factory=list)
    # Memory-resident symbols owned by this function (local arrays).
    local_arrays: list[Symbol] = field(default_factory=list)
    #: Projected maximal simultaneous activations (paper §4 ``Depth_i``).
    depth: int = 1

    def append(self, instr: IRInstr) -> IRInstr:
        self.instrs.append(instr)
        return instr

    def labels(self) -> dict[str, int]:
        """Map label name -> instruction index of its LABEL marker."""
        return {
            ins.label_name: idx
            for idx, ins in enumerate(self.instrs)
            if ins.op is IROp.LABEL
        }

    def vregs(self) -> list[VReg]:
        """All distinct virtual registers, in first-appearance order."""
        seen: dict[str, VReg] = {}
        for reg in self.param_vregs:
            seen.setdefault(reg.name, reg)
        for ins in self.instrs:
            for reg in ins.vregs():
                seen.setdefault(reg.name, reg)
        return list(seen.values())

    def named_vregs(self) -> list[VReg]:
        return [r for r in self.vregs() if not r.is_temp]

    def instruction_count(self) -> int:
        """IR instructions excluding label markers."""
        return sum(1 for ins in self.instrs if ins.op is not IROp.LABEL)

    def render(self) -> str:
        lines = [f"func {self.name}({', '.join(map(str, self.param_vregs))})"]
        for ins in self.instrs:
            indent = "" if ins.op is IROp.LABEL else "  "
            lines.append(indent + str(ins))
        return "\n".join(lines)


@dataclass
class IRModule:
    """A whole program in IR form plus the semantic info it came from."""

    checked: CheckedProgram
    functions: dict[str, IRFunction] = field(default_factory=dict)

    @property
    def globals(self) -> list[Symbol]:
        return self.checked.globals

    def function(self, name: str) -> IRFunction:
        return self.functions[name]

    def memory_symbols(self) -> list[Symbol]:
        """All memory-resident symbols: globals plus local arrays.

        Order: globals in declaration order (the paper's dummy function
        ``P0``), then each function's arrays in function order.
        """
        symbols = list(self.globals)
        for fn in self.functions.values():
            symbols.extend(fn.local_arrays)
        return symbols

    def total_instructions(self) -> int:
        return sum(fn.instruction_count() for fn in self.functions.values())

    def render(self) -> str:
        chunks = []
        for sym in self.globals:
            chunks.append(f"global {sym.uid}: {sym.ctype}")
        for fn in self.functions.values():
            chunks.append(fn.render())
        return "\n\n".join(chunks)
