"""Liveness analysis and live intervals.

Provides the dataflow facts every register allocator in this repo
consumes:

* ``live_out``/``live_in`` sets per instruction (backward dataflow over
  the CFG),
* :class:`LiveInterval` — the linear-scan view ``[start, end]`` over
  instruction indices,
* per-instruction def/use/last-use classification — the exact notions
  (``def.a.s``, ``use.a.s``, ``lastUse.a.s``) the paper's ILP model in
  §3.3 builds its decision variables from.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cfg import CFG, build_cfg
from .function import IRFunction
from .instructions import IROp, VReg


@dataclass
class LiveInterval:
    """Linear live interval of one virtual register.

    ``start`` is the index of the first definition; ``end`` is the last
    instruction index at which the vreg is live (inclusive).
    """

    vreg: VReg
    start: int
    end: int
    #: True if the value is live across any CALL instruction (such vregs
    #: must sit in callee-saved registers under our calling convention).
    crosses_call: bool = False

    def overlaps(self, other: "LiveInterval") -> bool:
        return not (self.end < other.start or other.end < self.start)

    def covers(self, index: int) -> bool:
        return self.start <= index <= self.end

    def __repr__(self) -> str:  # pragma: no cover
        return f"LiveInterval({self.vreg.name}, [{self.start}, {self.end}])"


@dataclass
class LivenessInfo:
    """All liveness facts for one function."""

    function: IRFunction
    cfg: CFG
    live_in: list[set]
    live_out: list[set]
    intervals: dict[str, LiveInterval]

    def interval(self, name: str) -> LiveInterval:
        return self.intervals[name]

    def live_at(self, index: int) -> set:
        """Vreg names live *out of* instruction ``index``."""
        return self.live_out[index]

    def is_last_use(self, index: int, name: str) -> bool:
        """Is instruction ``index`` the last use of ``name`` (paper's
        ``lastUse.a.s``): the vreg is used here and dead afterwards?"""
        ins = self.function.instrs[index]
        if name not in {r.name for r in ins.uses()}:
            return False
        return name not in self.live_out[index]

    def is_def(self, index: int, name: str) -> bool:
        ins = self.function.instrs[index]
        return any(r.name == name for r in ins.defs())

    def is_use(self, index: int, name: str) -> bool:
        ins = self.function.instrs[index]
        return any(r.name == name for r in ins.uses())


def analyze(fn: IRFunction) -> LivenessInfo:
    """Run backward liveness over ``fn`` and derive live intervals."""
    cfg = build_cfg(fn)
    count = len(fn.instrs)
    live_in = [set() for _ in range(count)]
    live_out = [set() for _ in range(count)]

    uses = []
    defs = []
    for ins in fn.instrs:
        uses.append({r.name for r in ins.uses()})
        defs.append({r.name for r in ins.defs()})

    changed = True
    while changed:
        changed = False
        # Iterate blocks in reverse for faster convergence.
        for block in reversed(cfg.blocks):
            for idx in reversed(range(block.start, block.end)):
                out: set = set()
                if idx == block.end - 1 or fn.instrs[idx].is_terminator:
                    for succ in cfg.successors_of_instr(idx):
                        out |= live_in[succ]
                else:
                    out = set(live_in[idx + 1])
                new_in = uses[idx] | (out - defs[idx])
                if out != live_out[idx] or new_in != live_in[idx]:
                    live_out[idx] = out
                    live_in[idx] = new_in
                    changed = True

    intervals = _build_intervals(fn, live_in, live_out)
    return LivenessInfo(
        function=fn, cfg=cfg, live_in=live_in, live_out=live_out, intervals=intervals
    )


def _build_intervals(fn, live_in, live_out) -> dict[str, LiveInterval]:
    intervals: dict[str, LiveInterval] = {}
    vreg_by_name = {r.name: r for r in fn.vregs()}

    def touch(name: str, index: int) -> None:
        reg = vreg_by_name[name]
        interval = intervals.get(name)
        if interval is None:
            intervals[name] = LiveInterval(vreg=reg, start=index, end=index)
        else:
            interval.start = min(interval.start, index)
            interval.end = max(interval.end, index)

    # Parameters are live from function entry.
    for reg in fn.param_vregs:
        touch(reg.name, 0)

    for idx, ins in enumerate(fn.instrs):
        for name in {r.name for r in ins.vregs()}:
            touch(name, idx)
        for name in live_out[idx]:
            touch(name, idx)
        for name in live_in[idx]:
            touch(name, idx)

    # Flag call-crossing intervals.
    for idx, ins in enumerate(fn.instrs):
        if ins.op is IROp.CALL:
            for name in live_out[idx]:
                # Live out of the call and live into it -> value must
                # survive the call.
                if name in live_in[idx] and name not in {r.name for r in ins.defs()}:
                    if name in intervals:
                        intervals[name].crosses_call = True
            # The call's own arguments do not need to survive it.
    return intervals


def interference_pairs(info: LivenessInfo) -> set[tuple[str, str]]:
    """All pairs of vreg names that are simultaneously live.

    The classic interference definition: ``a`` interferes with ``b`` if
    ``a`` is defined while ``b`` is live (or vice versa).  Used by the
    graph-coloring baseline allocator.
    """
    pairs: set[tuple[str, str]] = set()
    for idx, ins in enumerate(info.function.instrs):
        live = info.live_out[idx]
        for dreg in ins.defs():
            for other in live:
                if other != dreg.name:
                    pairs.add(_ordered(dreg.name, other))
        # MOV coalescing candidates are still interference-free; the
        # baseline allocator handles that separately.
    # Parameters interfere with each other (all live at entry).
    params = [r.name for r in info.function.param_vregs]
    for i, first in enumerate(params):
        for second in params[i + 1 :]:
            pairs.add(_ordered(first, second))
    return pairs


def _ordered(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)
