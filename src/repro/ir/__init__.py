"""Three-address IR: instructions, lowering, CFG, and liveness."""

from .builder import IRBuilder, build_ir
from .cfg import CFG, BasicBlock, build_cfg, loop_depths, static_frequencies
from .function import IRFunction, IRModule
from .instructions import (
    BINARY_OPS,
    COMPARISONS,
    IRInstr,
    IROp,
    Imm,
    Label,
    MemRef,
    TERMINATORS,
    UNARY_OPS,
    VReg,
)
from .liveness import LiveInterval, LivenessInfo, analyze, interference_pairs
from .unparse import render_expr, render_stmt_header

__all__ = [
    "BINARY_OPS",
    "BasicBlock",
    "CFG",
    "COMPARISONS",
    "IRBuilder",
    "IRFunction",
    "IRInstr",
    "IRModule",
    "IROp",
    "Imm",
    "Label",
    "LiveInterval",
    "LivenessInfo",
    "MemRef",
    "TERMINATORS",
    "UNARY_OPS",
    "VReg",
    "analyze",
    "build_cfg",
    "build_ir",
    "interference_pairs",
    "loop_depths",
    "render_expr",
    "render_stmt_header",
    "static_frequencies",
]

from .interp import IRInterpError, IRInterpreter, IRRunResult, run_ir

__all__ += ["IRInterpError", "IRInterpreter", "IRRunResult", "run_ir"]
