"""Reference interpreter for the three-address IR.

Executes an :class:`~repro.ir.function.IRModule` directly — no register
allocation, no code generation — providing the semantic baseline the
back end is tested against: for any program, machine-level execution
must observe exactly what IR-level execution observes.  Each
compilation stage can therefore be validated independently:

* source oracle  vs  IR interpreter  → front end + optimizer,
* IR interpreter vs  machine simulator → allocator + selector +
  assembler + simulator.

The interpreter models the same device surface as the machine simulator
(:mod:`repro.sim.devices`), so observations are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.sema import CheckedProgram
from ..sim.devices import DeviceBoard
from .function import IRModule
from .instructions import IRInstr, IROp, Imm, MemRef, VReg


class IRInterpError(Exception):
    """Raised on invalid IR execution (undefined vreg, bad index...)."""


@dataclass
class IRRunResult:
    """Observations of one IR-level run."""

    steps: int
    halted: bool
    devices: DeviceBoard
    globals: dict[str, int] = field(default_factory=dict)


def _mask(value: int, ctype) -> int:
    return value & ctype.max_value


class IRInterpreter:
    """Executes an IR module starting at ``main``."""

    def __init__(self, module: IRModule, devices: DeviceBoard | None = None):
        self.module = module
        self.devices = devices or DeviceBoard()
        self.steps = 0
        self.halted = False
        # memory-resident state: global scalars, arrays (global+local)
        self.memory: dict[str, object] = {}
        self._init_globals(module.checked)
        for fn in module.functions.values():
            for sym in fn.local_arrays:
                self.memory[sym.uid] = [0] * sym.ctype.array_length

    def _init_globals(self, checked: CheckedProgram) -> None:
        for sym in checked.globals:
            value = checked.global_inits.get(sym.name, 0)
            if sym.ctype.is_array:
                self.memory[sym.uid] = list(value)
            else:
                self.memory[sym.uid] = value

    # -- execution ----------------------------------------------------------

    def run(self, max_steps: int = 5_000_000) -> IRRunResult:
        self.call_function("main", [], max_steps)
        scalars = {
            sym.name: self.memory[sym.uid]
            for sym in self.module.globals
            if not sym.ctype.is_array
        }
        return IRRunResult(
            steps=self.steps,
            halted=self.halted,
            devices=self.devices,
            globals=scalars,
        )

    def call_function(self, name: str, args: list[int], max_steps: int) -> int | None:
        fn = self.module.functions[name]
        env: dict[str, int] = {}
        for reg, value in zip(fn.param_vregs, args):
            env[reg.name] = _mask(value, reg.ctype)
        labels = fn.labels()
        pc = 0
        while pc < len(fn.instrs):
            if self.halted:
                return None
            if self.steps >= max_steps:
                return None
            self.steps += 1
            ins = fn.instrs[pc]
            outcome = self._execute(ins, env, max_steps)
            if outcome is None:
                pc += 1
            elif outcome[0] == "jump":
                pc = labels[outcome[1]]
            elif outcome[0] == "ret":
                return outcome[1]
            else:  # pragma: no cover
                raise IRInterpError(f"bad outcome {outcome}")
        return None

    # -- helpers -------------------------------------------------------------

    def _value(self, operand, env: dict[str, int]) -> int:
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, VReg):
            if operand.name not in env:
                raise IRInterpError(f"read of undefined vreg {operand.name}")
            return env[operand.name]
        raise IRInterpError(f"cannot evaluate operand {operand!r}")

    def _execute(self, ins: IRInstr, env: dict[str, int], max_steps: int):
        from ..lang.sema import _eval_binop

        op = ins.op
        if op is IROp.LABEL:
            return None
        if op is IROp.MOV:
            env[ins.dst.name] = _mask(self._value(ins.args[0], env), ins.dst.ctype)
            return None
        if op is IROp.CAST:
            env[ins.dst.name] = _mask(self._value(ins.args[0], env), ins.dst.ctype)
            return None
        if op is IROp.NEG:
            env[ins.dst.name] = _mask(-self._value(ins.args[0], env), ins.dst.ctype)
            return None
        if op is IROp.NOT:
            env[ins.dst.name] = _mask(~self._value(ins.args[0], env), ins.dst.ctype)
            return None

        binops = {
            IROp.ADD: "+", IROp.SUB: "-", IROp.MUL: "*", IROp.DIV: "/",
            IROp.MOD: "%", IROp.AND: "&", IROp.OR: "|", IROp.XOR: "^",
            IROp.SHL: "<<", IROp.SHR: ">>",
            IROp.CMPEQ: "==", IROp.CMPNE: "!=", IROp.CMPLT: "<",
            IROp.CMPLE: "<=", IROp.CMPGT: ">", IROp.CMPGE: ">=",
        }
        if op in binops:
            left = self._value(ins.args[0], env)
            right = self._value(ins.args[1], env)
            mask = ins.dst.ctype.max_value
            try:
                result = _eval_binop(binops[op], left, right, mask)
            except ZeroDivisionError:
                # match the machine's documented div-by-zero behaviour
                result = mask if op is IROp.DIV else left
            env[ins.dst.name] = result & mask
            return None

        if op is IROp.LOADG:
            ref: MemRef = ins.args[0]
            env[ins.dst.name] = _mask(self.memory[ref.symbol], ins.dst.ctype)
            return None
        if op is IROp.STOREG:
            ref = ins.args[0]
            self.memory[ref.symbol] = _mask(
                self._value(ins.args[1], env), ref.ctype
            )
            return None
        if op is IROp.LOADIDX:
            ref, index_op = ins.args
            index = self._value(index_op, env)
            array = self.memory[ref.symbol]
            if not 0 <= index < len(array):
                raise IRInterpError(
                    f"index {index} out of bounds for {ref.symbol}[{len(array)}]"
                )
            env[ins.dst.name] = array[index]
            return None
        if op is IROp.STOREIDX:
            ref, index_op, value_op = ins.args
            index = self._value(index_op, env)
            array = self.memory[ref.symbol]
            if not 0 <= index < len(array):
                raise IRInterpError(
                    f"index {index} out of bounds for {ref.symbol}[{len(array)}]"
                )
            array[index] = _mask(
                self._value(value_op, env), ref.ctype.element_type()
            )
            return None

        if op is IROp.JUMP:
            return ("jump", ins.args[0].name)
        if op is IROp.CBR:
            cond = self._value(ins.args[0], env)
            target = ins.args[1] if cond else ins.args[2]
            return ("jump", target.name)
        if op is IROp.CALL:
            callee = ins.args[0]
            args = [self._value(a, env) for a in ins.args[1:]]
            result = self.call_function(callee, args, max_steps)
            if ins.dst is not None:
                env[ins.dst.name] = _mask(result or 0, ins.dst.ctype)
            return None
        if op is IROp.RET:
            value = self._value(ins.args[0], env) if ins.args else None
            return ("ret", value)
        if op is IROp.IOREAD:
            env[ins.dst.name] = self._read_port(ins.args[0], ins.dst)
            return None
        if op is IROp.IOWRITE:
            self._write_port(ins.args[0], self._value(ins.args[1], env))
            return None
        if op is IROp.HALT:
            self.halted = True
            return None
        raise IRInterpError(f"cannot interpret {ins}")  # pragma: no cover

    def _read_port(self, port: str, dst: VReg) -> int:
        from ..isa import devices as ports

        if port == "timer":
            # IR steps stand in for cycles when driving the poll timer.
            return self.devices.io_read(ports.PORT_TIMER, self.steps)
        if port == "led":
            return self.devices.io_read(ports.PORT_LED, self.steps)
        if port == "adc":
            low = self.devices.io_read(ports.PORT_ADC_LO, self.steps)
            high = self.devices.io_read(ports.PORT_ADC_HI, self.steps)
            return _mask(low | (high << 8), dst.ctype)
        raise IRInterpError(f"cannot read port {port!r}")

    def _write_port(self, port: str, value: int) -> None:
        from ..isa import devices as ports

        if port == "led":
            self.devices.io_write(ports.PORT_LED, value & 0xFF)
        elif port == "radio":
            self.devices.io_write(ports.PORT_RADIO_LO, value & 0xFF)
            self.devices.io_write(ports.PORT_RADIO_HI, (value >> 8) & 0xFF)
        else:
            raise IRInterpError(f"cannot write port {port!r}")


def run_ir(
    module: IRModule,
    devices: DeviceBoard | None = None,
    max_steps: int = 5_000_000,
) -> IRRunResult:
    """Convenience: interpret ``module`` from ``main`` to completion."""
    return IRInterpreter(module, devices).run(max_steps)
