"""Binary diffing: edit scripts, differ, patcher, packetisation."""

from .differ import BinaryDiff, FunctionDiff, diff_images
from .edit_script import EditScript, MAX_RUN, Primitive, PrimOp
from .packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD, Packetisation, packetize
from .patcher import PatchError, apply_script, patched_words, verify_patch

__all__ = [
    "BinaryDiff",
    "DEFAULT_OVERHEAD",
    "DEFAULT_PAYLOAD",
    "EditScript",
    "FunctionDiff",
    "MAX_RUN",
    "Packetisation",
    "PatchError",
    "PrimOp",
    "Primitive",
    "apply_script",
    "diff_images",
    "packetize",
    "patched_words",
    "verify_patch",
]

from .data_diff import DataPatch, DataScript, apply_data, diff_data

__all__ += ["DataPatch", "DataScript", "apply_data", "diff_data"]

from .groups import (
    GROUP_HEADER_BYTES,
    ScriptGroup,
    apply_groups,
    group_script,
    grouped_words,
)

__all__ += [
    "GROUP_HEADER_BYTES",
    "ScriptGroup",
    "apply_groups",
    "group_script",
    "grouped_words",
]
