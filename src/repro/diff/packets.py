"""Packetisation of update scripts (paper §2.2, §5.3).

The script is divided into data packets for dissemination.  The paper's
example — a script of 11 primitives needing two packets where 10 fit in
one, a 100% increase — motivates reporting packet counts alongside raw
sizes; the network simulator charges per-packet overhead on top of the
payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .edit_script import EditScript

#: Default per-packet payload, bytes.  TinyOS active messages of the era
#: carried 29-byte payloads; a script header claims a few.
DEFAULT_PAYLOAD = 22

#: Physical per-packet overhead, bytes (preamble, header, CRC).
DEFAULT_OVERHEAD = 12


@dataclass(frozen=True)
class Packetisation:
    """How a script splits into packets."""

    script_bytes: int
    payload_per_packet: int
    overhead_per_packet: int

    @property
    def packet_count(self) -> int:
        if self.script_bytes == 0:
            return 0
        payload = self.payload_per_packet
        return (self.script_bytes + payload - 1) // payload

    @property
    def bytes_on_air(self) -> int:
        """Total bytes the radio transmits, overhead included."""
        return self.script_bytes + self.packet_count * self.overhead_per_packet

    @property
    def bits_on_air(self) -> int:
        return 8 * self.bytes_on_air


def packetize(
    script: EditScript,
    payload_per_packet: int = DEFAULT_PAYLOAD,
    overhead_per_packet: int = DEFAULT_OVERHEAD,
) -> Packetisation:
    """Split ``script`` into packets."""
    return Packetisation(
        script_bytes=script.size_bytes,
        payload_per_packet=payload_per_packet,
        overhead_per_packet=overhead_per_packet,
    )
