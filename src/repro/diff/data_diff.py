"""Data-segment diffing.

Code updates can change *data* too: global initial values, const
tables, and layout-induced moves of initialised objects.  The sensor
must receive those bytes alongside the instruction script, so the
update planner ships a byte-level patch list for the data segment.

Wire format per patch: 2-byte offset + 1-byte length + payload
(length <= 255; longer runs split).  Nearby changed runs are merged
when the gap is smaller than a patch header, which minimises total
bytes — the same size/energy trade the instruction script makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_HEADER_BYTES = 3
_MAX_PATCH = 255


@dataclass(frozen=True)
class DataPatch:
    """Replace ``len(data)`` bytes at ``offset`` with ``data``."""

    offset: int
    data: bytes

    @property
    def size_bytes(self) -> int:
        return _HEADER_BYTES + len(self.data)


@dataclass
class DataScript:
    """The data-segment half of an update.

    ``resized`` marks a segment-length change with no byte patches (a
    pure truncation/extension-with-zeros) — it still needs a script.
    """

    patches: list[DataPatch] = field(default_factory=list)
    new_length: int = 0
    resized: bool = False

    @property
    def size_bytes(self) -> int:
        if self.is_empty:
            return 0
        # +2: the script carries the new segment length once.
        return 2 + sum(p.size_bytes for p in self.patches)

    @property
    def is_empty(self) -> bool:
        return not self.patches and not self.resized

    def to_bytes(self) -> bytes:
        out = bytearray()
        if self.is_empty:
            return bytes(out)
        out += self.new_length.to_bytes(2, "little")
        for patch in self.patches:
            out += patch.offset.to_bytes(2, "little")
            out.append(len(patch.data))
            out += patch.data
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DataScript":
        script = cls()
        if not blob:
            return script
        script.new_length = int.from_bytes(blob[0:2], "little")
        script.resized = True  # a serialised script always states length
        pos = 2
        while pos < len(blob):
            offset = int.from_bytes(blob[pos : pos + 2], "little")
            length = blob[pos + 2]
            pos += 3
            script.patches.append(DataPatch(offset, bytes(blob[pos : pos + length])))
            pos += length
        return script


def diff_data(old: bytes, new: bytes, merge_gap: int = _HEADER_BYTES) -> DataScript:
    """Byte-level diff of two data images.

    Differing runs closer than ``merge_gap`` bytes are coalesced into
    one patch (a patch header costs more than re-sending a short
    unchanged gap).
    """
    script = DataScript(new_length=len(new))
    limit = max(len(old), len(new))

    def byte_at(blob: bytes, index: int) -> int:
        return blob[index] if index < len(blob) else 0

    runs: list[tuple[int, int]] = []  # [start, end)
    index = 0
    while index < limit:
        if byte_at(old, index) == byte_at(new, index) and index < len(new):
            index += 1
            continue
        if index >= len(new):
            break  # truncation handled by new_length
        start = index
        while index < len(new) and (
            index >= len(old) or byte_at(old, index) != byte_at(new, index)
        ):
            index += 1
        runs.append((start, index))

    merged: list[tuple[int, int]] = []
    for start, end in runs:
        if merged and start - merged[-1][1] <= merge_gap:
            merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))

    for start, end in merged:
        cursor = start
        while cursor < end:
            take = min(end - cursor, _MAX_PATCH)
            script.patches.append(DataPatch(cursor, bytes(new[cursor : cursor + take])))
            cursor += take
    script.resized = len(new) != len(old)
    return script


def apply_data(old: bytes, script: DataScript) -> bytes:
    """Sensor-side application of a data script."""
    if script.is_empty:
        return bytes(old)
    out = bytearray(script.new_length)
    common = min(len(old), script.new_length)
    out[:common] = old[:common]
    for patch in script.patches:
        out[patch.offset : patch.offset + len(patch.data)] = patch.data
    return bytes(out)
