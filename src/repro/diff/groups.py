"""Out-of-order script groups (paper §2.2).

*"The packets may also be grouped so that when remote sensors receive
groups out of order, they are still able to perform updates independent
of the receiving order."*

A plain edit script is a sequential program over the old image — it can
only be interpreted front to back.  A :class:`ScriptGroup` makes a
slice of the script *self-contained* by recording the absolute
old-image cursor (in instructions) and the absolute new-image position
(also in instructions) at which its primitives apply.  A sensor that
receives groups in any order can apply each into the right window of
the image under construction, completing the update when all groups
have arrived.

Each group costs a 6-byte header (old cursor, new cursor, primitive
count — two bytes each) on top of its primitives, so grouping trades
out-of-order tolerance for a little payload; :func:`group_script`
exposes the granularity knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.assembler import BinaryImage
from .edit_script import EditScript, PrimOp, Primitive
from .patcher import PatchError

GROUP_HEADER_BYTES = 6


@dataclass
class ScriptGroup:
    """A self-contained slice of an edit script."""

    old_cursor: int  # old-image instruction index where the slice starts
    new_cursor: int  # new-image instruction index where its output lands
    primitives: list[Primitive] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return GROUP_HEADER_BYTES + sum(p.size_bytes for p in self.primitives)

    @property
    def new_instructions(self) -> int:
        """Instructions this group contributes to the new image."""
        total = 0
        for prim in self.primitives:
            if prim.op in (PrimOp.COPY, PrimOp.INSERT, PrimOp.REPLACE):
                total += prim.count
        return total

    @property
    def old_consumed(self) -> int:
        """Old-image instructions this group consumes."""
        total = 0
        for prim in self.primitives:
            if prim.op in (PrimOp.COPY, PrimOp.REMOVE, PrimOp.REPLACE):
                total += prim.count
        return total


def group_script(script: EditScript, max_group_bytes: int = 64) -> list[ScriptGroup]:
    """Split ``script`` into self-contained groups of roughly
    ``max_group_bytes`` payload each."""
    groups: list[ScriptGroup] = []
    current = ScriptGroup(old_cursor=0, new_cursor=0)
    old_cursor = 0
    new_cursor = 0
    for prim in script.primitives:
        if (
            current.primitives
            and current.size_bytes + prim.size_bytes > max_group_bytes
        ):
            groups.append(current)
            current = ScriptGroup(old_cursor=old_cursor, new_cursor=new_cursor)
        current.primitives.append(prim)
        if prim.op in (PrimOp.COPY, PrimOp.REMOVE, PrimOp.REPLACE):
            old_cursor += prim.count
        if prim.op in (PrimOp.COPY, PrimOp.INSERT, PrimOp.REPLACE):
            new_cursor += prim.count
    if current.primitives:
        groups.append(current)
    return groups


def apply_groups(
    old: BinaryImage, groups: list[ScriptGroup], total_new_instructions: int
) -> list[tuple[int, ...]]:
    """Apply groups *in any order*; returns the new instruction units.

    Raises :class:`PatchError` if the groups do not tile the new image
    exactly (missing or overlapping groups).
    """
    old_units = [tuple(enc.words) for enc in old.code]
    out: list[tuple[int, ...] | None] = [None] * total_new_instructions

    for group in groups:
        old_pos = group.old_cursor
        new_pos = group.new_cursor
        for prim in group.primitives:
            if prim.op is PrimOp.COPY:
                for offset in range(prim.count):
                    _place(out, new_pos + offset, old_units[old_pos + offset])
                old_pos += prim.count
                new_pos += prim.count
            elif prim.op is PrimOp.REMOVE:
                old_pos += prim.count
            else:  # INSERT / REPLACE
                for offset, unit in enumerate(prim.words):
                    _place(out, new_pos + offset, unit)
                new_pos += prim.count
                if prim.op is PrimOp.REPLACE:
                    old_pos += prim.count

    missing = [index for index, unit in enumerate(out) if unit is None]
    if missing:
        raise PatchError(
            f"groups leave {len(missing)} new instructions unfilled "
            f"(first at {missing[0]})"
        )
    return out  # type: ignore[return-value]


def _place(out: list, index: int, unit: tuple[int, ...]) -> None:
    if index >= len(out):
        raise PatchError(f"group writes past the new image at {index}")
    if out[index] is not None and out[index] != unit:
        raise PatchError(f"conflicting groups at new instruction {index}")
    out[index] = unit


def grouped_words(
    old: BinaryImage, groups: list[ScriptGroup], total_new_instructions: int
) -> list[int]:
    """Flat word stream after applying the groups."""
    flat: list[int] = []
    for unit in apply_groups(old, groups, total_new_instructions):
        flat.extend(unit)
    return flat
