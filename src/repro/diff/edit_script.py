"""Edit-script primitives (paper §2.2).

The script format follows the paper's description of the four
primitives it adopts from Reijers & Langendoen [28]:

* ``copy``/``remove`` — one byte each: 2-bit opcode + 6-bit instruction
  count (longer runs split into multiple primitives);
* ``insert``/``replace`` — a one-byte header (2-bit opcode + 6-bit
  instruction count) followed by the instruction words, two bytes per
  16-bit word.

Scripts serialise to real byte strings so their sizes — the quantity
the radio pays for — are measured, not estimated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

_COUNT_BITS = 6
MAX_RUN = (1 << _COUNT_BITS) - 1  # 63


class PrimOp(enum.Enum):
    COPY = 0
    REMOVE = 1
    INSERT = 2
    REPLACE = 3


@dataclass
class Primitive:
    """One edit primitive.

    ``count`` is the number of *instructions* affected.  For INSERT and
    REPLACE, ``words`` holds the encoded instruction words, grouped per
    instruction.
    """

    op: PrimOp
    count: int
    words: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self):
        if not 1 <= self.count <= MAX_RUN:
            raise ValueError(f"primitive count {self.count} out of range")
        if self.op in (PrimOp.INSERT, PrimOp.REPLACE):
            if len(self.words) != self.count:
                raise ValueError("insert/replace need words per instruction")
        elif self.words:
            raise ValueError("copy/remove carry no payload")

    @property
    def payload_words(self) -> int:
        return sum(len(group) for group in self.words)

    @property
    def size_bytes(self) -> int:
        return 1 + 2 * self.payload_words

    def header_byte(self) -> int:
        return (self.op.value << _COUNT_BITS) | self.count


@dataclass
class EditScript:
    """A full update script U: the diff from binary E to binary E'."""

    primitives: list[Primitive] = field(default_factory=list)

    # -- construction ----------------------------------------------------

    def _extend_run(self, op: PrimOp, count: int) -> None:
        while count > 0:
            take = min(count, MAX_RUN)
            self.primitives.append(Primitive(op=op, count=take))
            count -= take

    def copy(self, count: int) -> None:
        self._extend_run(PrimOp.COPY, count)

    def remove(self, count: int) -> None:
        self._extend_run(PrimOp.REMOVE, count)

    def _extend_payload(self, op: PrimOp, groups: list[tuple[int, ...]]) -> None:
        index = 0
        while index < len(groups):
            take = min(len(groups) - index, MAX_RUN)
            self.primitives.append(
                Primitive(op=op, count=take, words=tuple(groups[index : index + take]))
            )
            index += take

    def insert(self, groups: list[tuple[int, ...]]) -> None:
        if groups:
            self._extend_payload(PrimOp.INSERT, groups)

    def replace(self, groups: list[tuple[int, ...]]) -> None:
        if groups:
            self._extend_payload(PrimOp.REPLACE, groups)

    # -- metrics -----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return sum(p.size_bytes for p in self.primitives)

    @property
    def payload_words(self) -> int:
        """Instruction words transmitted (the E_trans payload)."""
        return sum(p.payload_words for p in self.primitives)

    @property
    def transmitted_instructions(self) -> int:
        """Instructions carried by insert/replace — the paper's
        ``Diff_inst`` numerator."""
        return sum(
            p.count for p in self.primitives if p.op in (PrimOp.INSERT, PrimOp.REPLACE)
        )

    def primitive_counts(self) -> dict[str, int]:
        counts = {op.name.lower(): 0 for op in PrimOp}
        for p in self.primitives:
            counts[p.op.name.lower()] += 1
        return counts

    @property
    def is_empty(self) -> bool:
        """True when the script only copies (binaries identical)."""
        return all(p.op is PrimOp.COPY for p in self.primitives)

    # -- serialisation ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray()
        for p in self.primitives:
            out.append(p.header_byte())
            for group in p.words:
                for word in group:
                    out += word.to_bytes(2, "little")
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes, word_sizer=None) -> "EditScript":
        """Parse a serialised script.

        Because insert/replace payloads are instruction *words* whose
        per-instruction grouping depends on the opcode, parsing decodes
        each instruction's first word to learn its size.  ``word_sizer``
        maps a first word to the instruction's word count; the default
        uses the ISA's opcode table.
        """
        if word_sizer is None:
            from ..isa.instructions import BY_OPCODE, F_ADDR, F_IMM

            def word_sizer(word: int) -> int:
                spec = BY_OPCODE.get(word >> 10)
                if spec is None:
                    raise ValueError(f"bad opcode in script word {word:#06x}")
                return 2 if spec.fmt in (F_IMM, F_ADDR) else 1

        script = cls()
        pos = 0
        while pos < len(blob):
            header = blob[pos]
            pos += 1
            op = PrimOp(header >> _COUNT_BITS)
            count = header & MAX_RUN
            if op in (PrimOp.COPY, PrimOp.REMOVE):
                script.primitives.append(Primitive(op=op, count=count))
                continue
            groups = []
            for _ in range(count):
                first = int.from_bytes(blob[pos : pos + 2], "little")
                size = word_sizer(first)
                words = [first]
                pos += 2
                for _ in range(size - 1):
                    words.append(int.from_bytes(blob[pos : pos + 2], "little"))
                    pos += 2
                groups.append(tuple(words))
            script.primitives.append(Primitive(op=op, count=count, words=tuple(groups)))
        return script

    def render(self) -> str:
        lines = []
        for p in self.primitives:
            if p.op in (PrimOp.COPY, PrimOp.REMOVE):
                lines.append(f"{p.op.name.lower()} {p.count}")
            else:
                lines.append(
                    f"{p.op.name.lower()} {p.count} ({p.payload_words} words)"
                )
        return "\n".join(lines)
