"""Binary differ: old image + new image → edit script + Diff_inst.

The differ aligns the two instruction streams optimally (LCS over the
encoded words of each instruction), which reproduces the paper's
baseline methodology: *"For GCC-RA, we manually find the best match
between the new and the old binaries.  This is the lower bound of
existing binary-diff-based code dissemination algorithms."*  Both
strategies are therefore measured against the same best-possible diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import SequenceMatcher

from ..isa.assembler import BinaryImage
from ..obs import metrics, trace
from .edit_script import EditScript


@dataclass
class FunctionDiff:
    """Per-function attribution of the differences."""

    function: str
    changed_instructions: int = 0
    total_instructions: int = 0

    @property
    def changed_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.changed_instructions / self.total_instructions


@dataclass
class BinaryDiff:
    """The outcome of diffing two binaries."""

    script: EditScript
    #: the paper's Diff_inst: differing instructions in the new binary
    diff_inst: int
    #: instruction words that must be transmitted
    diff_words: int
    #: new instructions that could be reused from the old binary
    reused: int
    old_instructions: int
    new_instructions: int
    per_function: dict[str, FunctionDiff] = field(default_factory=dict)

    @property
    def script_bytes(self) -> int:
        return self.script.size_bytes


def diff_images(old: BinaryImage, new: BinaryImage) -> BinaryDiff:
    """Diff two assembled binaries at instruction granularity."""
    with trace.span("diff.images"):
        diff = _diff_images(old, new)
    metrics.counter("diff.runs").inc()
    metrics.counter("diff.reused_instructions").inc(diff.reused)
    metrics.histogram("diff.script_bytes").observe(diff.script_bytes)
    metrics.histogram("diff.diff_inst").observe(diff.diff_inst)
    return diff


def _diff_images(old: BinaryImage, new: BinaryImage) -> BinaryDiff:
    old_units = [tuple(enc.words) for enc in old.code]
    new_units = [tuple(enc.words) for enc in new.code]

    matcher = SequenceMatcher(a=old_units, b=new_units, autojunk=False)
    script = EditScript()
    diff_inst = 0
    diff_words = 0
    reused = 0
    per_function: dict[str, FunctionDiff] = {}

    def fn_of(index: int) -> str:
        name = new.code[index].instr.comment
        return name or "<unattributed>"

    def bump_fn(index: int, changed: bool) -> None:
        name = fn_of(index)
        record = per_function.setdefault(name, FunctionDiff(function=name))
        record.total_instructions += 1
        if changed:
            record.changed_instructions += 1

    for tag, old_lo, old_hi, new_lo, new_hi in matcher.get_opcodes():
        if tag == "equal":
            script.copy(old_hi - old_lo)
            reused += new_hi - new_lo
            for index in range(new_lo, new_hi):
                bump_fn(index, changed=False)
        elif tag == "delete":
            script.remove(old_hi - old_lo)
        elif tag == "insert":
            groups = new_units[new_lo:new_hi]
            script.insert(groups)
            diff_inst += len(groups)
            diff_words += sum(len(g) for g in groups)
            for index in range(new_lo, new_hi):
                bump_fn(index, changed=True)
        else:  # replace
            removed = old_hi - old_lo
            groups = new_units[new_lo:new_hi]
            # A replace of unequal length decomposes into replace+insert
            # or replace+remove at the script level.
            common = min(removed, len(groups))
            script.replace(groups[:common])
            if len(groups) > common:
                script.insert(groups[common:])
            if removed > common:
                script.remove(removed - common)
            diff_inst += len(groups)
            diff_words += sum(len(g) for g in groups)
            for index in range(new_lo, new_hi):
                bump_fn(index, changed=True)

    return BinaryDiff(
        script=script,
        diff_inst=diff_inst,
        diff_words=diff_words,
        reused=reused,
        old_instructions=len(old_units),
        new_instructions=len(new_units),
        per_function=per_function,
    )
