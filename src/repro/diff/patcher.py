"""Sensor-side patcher: old binary + update script → new binary.

This is the on-mote half of Figure 2 of the paper: the script is
interpreted against the resident image to rebuild the new one.  The
patcher works on instruction units (the granularity the script's
``count`` fields use) and cross-checks the reconstruction when the
expected image is supplied — the round-trip property
``apply(old, diff(old, new)) == new`` is pinned by tests.

Failures raise :class:`PatchError` carrying structured diagnostics —
the first mismatching word address, the expected vs. actual values,
and the primitive that produced the bad word — so a corrupt script is
debuggable from the error alone.
"""

from __future__ import annotations

from ..isa.assembler import BinaryImage
from .edit_script import EditScript, PrimOp


class PatchError(Exception):
    """Raised when a script does not apply cleanly to the old image.

    Structured attributes (``None`` when not applicable):

    * ``word_index``      — word address of the first mismatch,
    * ``expected``        — the word the new image holds there,
    * ``actual``          — the word the patched stream produced,
    * ``primitive_index`` — position of the offending primitive in the
      script,
    * ``primitive``       — that primitive's op name (``"copy"``, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        word_index: int | None = None,
        expected: int | None = None,
        actual: int | None = None,
        primitive_index: int | None = None,
        primitive: str | None = None,
    ):
        super().__init__(message)
        self.word_index = word_index
        self.expected = expected
        self.actual = actual
        self.primitive_index = primitive_index
        self.primitive = primitive


def apply_script_annotated(
    old: BinaryImage, script: EditScript
) -> list[tuple[tuple[int, ...], int]]:
    """Apply ``script`` to ``old``; returns ``(unit, primitive_index)``
    pairs — the new instruction units (tuples of encoded words, one per
    instruction) annotated with the primitive that emitted each."""
    old_units = [tuple(enc.words) for enc in old.code]
    out: list[tuple[tuple[int, ...], int]] = []
    cursor = 0
    for prim_index, prim in enumerate(script.primitives):
        op_name = prim.op.name.lower()
        if prim.op is PrimOp.COPY:
            if cursor + prim.count > len(old_units):
                raise PatchError(
                    f"primitive {prim_index}: copy runs past the end of the "
                    "old image",
                    primitive_index=prim_index,
                    primitive=op_name,
                )
            out.extend(
                (unit, prim_index)
                for unit in old_units[cursor : cursor + prim.count]
            )
            cursor += prim.count
        elif prim.op is PrimOp.REMOVE:
            if cursor + prim.count > len(old_units):
                raise PatchError(
                    f"primitive {prim_index}: remove runs past the end of the "
                    "old image",
                    primitive_index=prim_index,
                    primitive=op_name,
                )
            cursor += prim.count
        elif prim.op is PrimOp.INSERT:
            out.extend((unit, prim_index) for unit in prim.words)
        else:  # REPLACE: consumes old instructions, emits new ones
            if cursor + prim.count > len(old_units):
                raise PatchError(
                    f"primitive {prim_index}: replace runs past the end of "
                    "the old image",
                    primitive_index=prim_index,
                    primitive=op_name,
                )
            cursor += prim.count
            out.extend((unit, prim_index) for unit in prim.words)
    if cursor != len(old_units):
        raise PatchError(
            f"script consumed {cursor} of {len(old_units)} old instructions",
            primitive_index=len(script.primitives) - 1 if script.primitives else None,
        )
    return out


def apply_script(old: BinaryImage, script: EditScript) -> list[tuple[int, ...]]:
    """Apply ``script`` to ``old``; returns the new instruction units
    (tuples of encoded words, one per instruction)."""
    return [unit for unit, _ in apply_script_annotated(old, script)]


def patched_words(old: BinaryImage, script: EditScript) -> list[int]:
    """Flat word stream of the patched image."""
    flat: list[int] = []
    for unit in apply_script(old, script):
        flat.extend(unit)
    return flat


def verify_patch(old: BinaryImage, new: BinaryImage, script: EditScript) -> None:
    """Assert the script rebuilds ``new`` from ``old`` exactly."""
    annotated = apply_script_annotated(old, script)
    rebuilt: list[int] = []
    provenance: list[int] = []  # word index -> primitive index
    for unit, prim_index in annotated:
        rebuilt.extend(unit)
        provenance.extend(prim_index for _ in unit)
    expected = new.words()
    if rebuilt == expected:
        return
    for index, (got, want) in enumerate(zip(rebuilt, expected)):
        if got != want:
            prim_index = provenance[index]
            prim = script.primitives[prim_index]
            raise PatchError(
                f"patched image diverges at word {index}: {got:#06x} != "
                f"{want:#06x} (produced by primitive {prim_index}, "
                f"{prim.op.name.lower()})",
                word_index=index,
                expected=want,
                actual=got,
                primitive_index=prim_index,
                primitive=prim.op.name.lower(),
            )
    raise PatchError(
        f"patched image length {len(rebuilt)} != expected {len(expected)}",
        word_index=min(len(rebuilt), len(expected)),
    )
