"""Sensor-side patcher: old binary + update script → new binary.

This is the on-mote half of Figure 2 of the paper: the script is
interpreted against the resident image to rebuild the new one.  The
patcher works on instruction units (the granularity the script's
``count`` fields use) and cross-checks the reconstruction when the
expected image is supplied — the round-trip property
``apply(old, diff(old, new)) == new`` is pinned by tests.
"""

from __future__ import annotations

from ..isa.assembler import BinaryImage
from .edit_script import EditScript, PrimOp


class PatchError(Exception):
    """Raised when a script does not apply cleanly to the old image."""


def apply_script(old: BinaryImage, script: EditScript) -> list[tuple[int, ...]]:
    """Apply ``script`` to ``old``; returns the new instruction units
    (tuples of encoded words, one per instruction)."""
    old_units = [tuple(enc.words) for enc in old.code]
    out: list[tuple[int, ...]] = []
    cursor = 0
    for prim in script.primitives:
        if prim.op is PrimOp.COPY:
            if cursor + prim.count > len(old_units):
                raise PatchError("copy runs past the end of the old image")
            out.extend(old_units[cursor : cursor + prim.count])
            cursor += prim.count
        elif prim.op is PrimOp.REMOVE:
            if cursor + prim.count > len(old_units):
                raise PatchError("remove runs past the end of the old image")
            cursor += prim.count
        elif prim.op is PrimOp.INSERT:
            out.extend(prim.words)
        else:  # REPLACE: consumes old instructions, emits new ones
            if cursor + prim.count > len(old_units):
                raise PatchError("replace runs past the end of the old image")
            cursor += prim.count
            out.extend(prim.words)
    if cursor != len(old_units):
        raise PatchError(
            f"script consumed {cursor} of {len(old_units)} old instructions"
        )
    return out


def patched_words(old: BinaryImage, script: EditScript) -> list[int]:
    """Flat word stream of the patched image."""
    flat: list[int] = []
    for unit in apply_script(old, script):
        flat.extend(unit)
    return flat


def verify_patch(old: BinaryImage, new: BinaryImage, script: EditScript) -> None:
    """Assert the script rebuilds ``new`` from ``old`` exactly."""
    rebuilt = patched_words(old, script)
    expected = new.words()
    if rebuilt != expected:
        for index, (got, want) in enumerate(zip(rebuilt, expected)):
            if got != want:
                raise PatchError(
                    f"patched image diverges at word {index}: "
                    f"{got:#06x} != {want:#06x}"
                )
        raise PatchError(
            f"patched image length {len(rebuilt)} != expected {len(expected)}"
        )
