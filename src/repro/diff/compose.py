"""Diff-of-diffs: compose two edit scripts into one merged script.

Difference Based Content Networking observes that a version chain
v3→v4→…→v7 can be collapsed into one direct script without access to
the intermediate images: the edit scripts themselves compose.  This
module implements that composition for the paper's four-primitive
script format (:mod:`repro.diff.edit_script`).

``compose_scripts(a, b)`` returns a script ``c`` such that::

    apply(old, c) == apply(apply(old, a), b)

for every ``old`` that ``a`` applies to — pinned by the diff-layer
property tests and the versioning replay-identity oracle.  The
composition works on the *unit streams*: ``a`` is interpreted
symbolically so every unit of the intermediate image is known to be
either a copy of an old unit (tracked by index) or a literal inserted
by ``a``; ``b`` is then replayed over that symbolic stream, and runs of
adjacent old-image copies are re-emitted as ``copy`` primitives while
everything else becomes ``insert``/``replace`` payload.

The composed script is correct but not necessarily minimal — a literal
that happens to equal an old unit stays a literal.  The version-graph
planner therefore prefers a *direct* diff of the endpoint images when
it has them (``VersionGraphConfig.merged_from = "direct"``) and falls
back to composition when only the chain artifacts exist
(``"composed"``).
"""

from __future__ import annotations

from .edit_script import EditScript, PrimOp


def _symbolic_apply(script: EditScript, old_len: int) -> list["int | tuple"]:
    """Apply ``script`` to a symbolic old image of ``old_len`` units.

    Returns the intermediate image as a list whose entries are either an
    ``int`` (index of the old unit copied through) or a ``tuple`` of
    words (a literal unit carried by the script).
    """
    out: list[int | tuple] = []
    cursor = 0
    for prim in script.primitives:
        if prim.op is PrimOp.COPY:
            out.extend(range(cursor, cursor + prim.count))
            cursor += prim.count
        elif prim.op is PrimOp.REMOVE:
            cursor += prim.count
        elif prim.op is PrimOp.INSERT:
            out.extend(prim.words)
        else:  # REPLACE
            cursor += prim.count
            out.extend(prim.words)
    if cursor != old_len:
        raise ValueError(
            f"script consumed {cursor} of {old_len} old units; cannot compose"
        )
    return out


def consumed_units(script: EditScript) -> int:
    """Old-image units the script consumes (its required old length)."""
    return sum(
        p.count
        for p in script.primitives
        if p.op in (PrimOp.COPY, PrimOp.REMOVE, PrimOp.REPLACE)
    )


def compose_scripts(a: EditScript, b: EditScript) -> EditScript:
    """The single script equivalent to applying ``a`` then ``b``.

    ``a`` must produce exactly the image ``b`` consumes (their unit
    counts are checked); the result applies directly to ``a``'s old
    image.
    """
    old_len = consumed_units(a)
    mid = _symbolic_apply(a, old_len)
    if consumed_units(b) != len(mid):
        raise ValueError(
            f"cannot compose: first script produces {len(mid)} units but "
            f"second consumes {consumed_units(b)}"
        )

    final: list[int | tuple] = []
    cursor = 0
    for prim in b.primitives:
        if prim.op is PrimOp.COPY:
            final.extend(mid[cursor : cursor + prim.count])
            cursor += prim.count
        elif prim.op is PrimOp.REMOVE:
            cursor += prim.count
        elif prim.op is PrimOp.INSERT:
            final.extend(prim.words)
        else:  # REPLACE
            cursor += prim.count
            final.extend(prim.words)

    # Re-emit the final symbolic stream against the *original* old
    # image: maximal runs of consecutive old indices become copies
    # (with the gap before them removed), literals become inserts.
    out = EditScript()
    old_cursor = 0
    index = 0
    n = len(final)
    while index < n:
        entry = final[index]
        if isinstance(entry, int) and entry >= old_cursor:
            if entry > old_cursor:
                out.remove(entry - old_cursor)
                old_cursor = entry
            run = 1
            while (
                index + run < n
                and isinstance(final[index + run], int)
                and final[index + run] == entry + run
            ):
                run += 1
            out.copy(run)
            old_cursor += run
            index += run
        else:
            # A literal, or an old unit that appears out of order
            # (duplicated/reordered by the chain): ship its words.  Out
            # of order copies cannot be expressed by the forward-only
            # primitive set, so they are rare literals here; their words
            # are not recoverable from the index alone, which is why
            # _symbolic_apply keeps literal tuples and indices distinct.
            if isinstance(entry, int):
                raise ValueError(
                    f"cannot compose: second script re-copies an old unit "
                    f"out of order (index {entry}); recompute a direct diff"
                )
            group = [entry]
            index += 1
            while index < n and not isinstance(final[index], int):
                group.append(final[index])
                index += 1
            out.insert(group)
    if old_cursor < old_len:
        out.remove(old_len - old_cursor)
    return out


def compose_chain(scripts: "list[EditScript]") -> EditScript:
    """Left-fold :func:`compose_scripts` over a chain of step scripts."""
    if not scripts:
        raise ValueError("cannot compose an empty chain")
    merged = scripts[0]
    for script in scripts[1:]:
        merged = compose_scripts(merged, script)
    return merged


__all__ = ["compose_chain", "compose_scripts", "consumed_units"]
