"""The register file of the reproduction's AVR-flavoured target.

Mirrors the ATmega128L conventions the paper compiles for: 32 8-bit
registers ``r0``..``r31``; 16-bit values occupy even-aligned register
*pairs* (paper eq. 9's consecutive-register constraint, at the u16
width ucc-C uses).

Reserved registers (never handed out by any allocator, so both the
baseline and UCC allocators face the same register file):

* ``r0``       — assembler/spill scratch byte
* ``r1``       — always-zero register (cleared at function entry)
* ``r26:r27``  — X: scratch pair for spilled u16 values
* ``r30:r31``  — Z: array addressing pointer

Calling convention (static frames, see DESIGN.md §5): arguments are
stored by the caller into the callee's static frame; the return value
travels in ``r24`` (u8) or ``r24:r25`` (u16).  ``r2``..``r17`` are
callee-saved; ``r18``..``r25`` are caller-saved and therefore clobbered
by calls.
"""

from __future__ import annotations

NUM_REGS = 32

SCRATCH = 0  # r0
ZERO = 1  # r1
X_LO, X_HI = 26, 27
Z_LO, Z_HI = 30, 31

RESERVED = frozenset({SCRATCH, ZERO, X_LO, X_HI, 28, 29, Z_LO, Z_HI})

#: Registers any allocator may assign, in ascending order.
ALLOCATABLE = tuple(r for r in range(2, 26))

#: Callee-saved subset of the allocatable registers.  Virtual registers
#: that are live across a call must be placed here.
CALLEE_SAVED = tuple(r for r in ALLOCATABLE if r <= 17)

#: Caller-saved subset (clobbered by CALL).
CALLER_SAVED = tuple(r for r in ALLOCATABLE if r >= 18)

#: Return-value registers.
RET_LO, RET_HI = 24, 25

#: Even-aligned allocatable pair bases (for u16 virtual registers).
PAIR_BASES = tuple(r for r in ALLOCATABLE if r % 2 == 0 and (r + 1) in ALLOCATABLE)

CALLEE_SAVED_PAIR_BASES = tuple(r for r in PAIR_BASES if (r + 1) <= 17)
CALLER_SAVED_PAIR_BASES = tuple(r for r in PAIR_BASES if r >= 18)

#: Allocation preference order: call-clobbered registers first (they
#: cost no prologue push/pop), then callee-saved.  Values that are live
#: across a call are restricted to the callee-saved suffix.
PREFERRED_ORDER = CALLER_SAVED + CALLEE_SAVED
PREFERRED_PAIR_ORDER = CALLER_SAVED_PAIR_BASES + CALLEE_SAVED_PAIR_BASES


def reg_name(index: int) -> str:
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index {index} out of range")
    return f"r{index}"


def is_pair_base(index: int) -> bool:
    """Can a u16 value start at this register?"""
    return index in PAIR_BASES


def registers_of(base: int, size: int) -> tuple[int, ...]:
    """The physical registers a value of ``size`` bytes occupies."""
    if size == 1:
        return (base,)
    if size == 2:
        return (base, base + 1)
    raise ValueError(f"unsupported value size {size}")


def candidates(size: int, callee_saved_only: bool = False) -> tuple[int, ...]:
    """Legal base registers for a value of ``size`` bytes, in allocation
    preference order (call-clobbered first)."""
    if size == 1:
        return CALLEE_SAVED if callee_saved_only else PREFERRED_ORDER
    if size == 2:
        return CALLEE_SAVED_PAIR_BASES if callee_saved_only else PREFERRED_PAIR_ORDER
    raise ValueError(f"unsupported value size {size}")
