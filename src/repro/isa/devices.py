"""Memory map and device port assignments of the simulated mote.

Loosely modelled on the Mica2 (ATmega128L): a small I/O port space
reached with ``IN``/``OUT``, SRAM starting above the register file, and
a stack growing down from the top of SRAM.
"""

from __future__ import annotations

# -- I/O ports (IN/OUT port numbers, 5 bits) --------------------------------

PORT_LED = 0x02  # write: LED bits; read: current LED state
PORT_RADIO_LO = 0x03  # write: latch low byte of outgoing word
PORT_RADIO_HI = 0x04  # write: latch high byte AND transmit the word
PORT_TIMER = 0x05  # read: 1 if the timer fired since last read (clears)
PORT_ADC_LO = 0x06  # read: low byte of current sensor sample
PORT_ADC_HI = 0x07  # read: high byte of current sensor sample

#: port-name (as used by IR IOREAD/IOWRITE) -> primary port number
PORTS = {
    "led": PORT_LED,
    "radio": PORT_RADIO_LO,
    "timer": PORT_TIMER,
    "adc": PORT_ADC_LO,
}

# -- data memory -------------------------------------------------------------

#: First SRAM address available to the data segment (globals + frames).
DATA_START = 0x0100

#: Total SRAM size in bytes (4 KiB, like the ATmega128L's internal SRAM).
SRAM_SIZE = 0x1000

#: Initial stack pointer (top of SRAM; the stack grows down and holds
#: only return addresses in this reproduction).
STACK_TOP = DATA_START + SRAM_SIZE - 1
