"""Machine instruction set of the AVR-flavoured target.

The ISA keeps every property the paper's techniques depend on (fixed
16-bit instruction words, register numbers and data addresses embedded
in the encoding, post-increment loads for multi-byte values) while the
exact bit layout is our own regular scheme — see DESIGN.md §2.

Formats
-------

* ``RR``    — one word: ``op(6) | rd(5) | rr(5)``; register-register
  ALU ops, single-register ops (``rr`` = 0), ``IN``/``OUT`` (``rr`` =
  port number), ``LD``/``ST`` through Z.
* ``IMM``   — two words: ``op | rd | 0`` then the 8-bit immediate;
  register-immediate ALU ops.
* ``ADDR``  — two words: ``op | rd | 0`` then a 16-bit data address or
  code word-address (``LDS``/``STS``/``CALL``/``JMP``).
* ``BR``    — one word: ``op(6) | offset(10, signed)``; conditional
  branches and ``RJMP``, offset in words relative to the *next*
  instruction.
* ``NONE``  — one word: ``op`` only (``RET``, ``NOP``, ``HALT``).

Cycle costs follow the ATmega128 datasheet where an equivalent exists;
``DIV``/``MOD`` are pseudo-instructions standing in for avr-libgcc's
software division (4 cycles — a deliberately coarse stand-in, identical
for every allocator, documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fastpath import fastpath_enabled

F_RR = "rr"
F_IMM = "imm"
F_ADDR = "addr"
F_BR = "br"
F_NONE = "none"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    opcode: int
    fmt: str
    cycles: int  # base cost; branches add 1 when taken
    reads_rd: bool = True
    writes_rd: bool = False


def _build_table() -> dict[str, OpSpec]:
    specs = [
        # mnemonic, fmt, cycles, reads_rd, writes_rd
        ("nop", F_NONE, 1, False, False),
        ("halt", F_NONE, 1, False, False),
        ("ret", F_NONE, 4, False, False),
        # register-register ALU
        ("add", F_RR, 1, True, True),
        ("adc", F_RR, 1, True, True),
        ("sub", F_RR, 1, True, True),
        ("sbc", F_RR, 1, True, True),
        ("and", F_RR, 1, True, True),
        ("or", F_RR, 1, True, True),
        ("eor", F_RR, 1, True, True),
        ("mov", F_RR, 1, False, True),
        ("movw", F_RR, 1, False, True),  # rd/rr are pair bases
        ("cp", F_RR, 1, True, False),
        ("cpc", F_RR, 1, True, False),
        ("mul", F_RR, 2, True, True),  # rd = low byte of rd*rr (deviation)
        ("div", F_RR, 4, True, True),  # pseudo: rd = rd / rr
        ("mod", F_RR, 4, True, True),  # pseudo: rd = rd % rr
        # 16-bit pseudo ops over register pairs, standing in for the
        # avr-libgcc __mulhi3/__udivmodhi4 helper calls.
        ("mul16", F_RR, 8, True, True),
        ("div16", F_RR, 16, True, True),
        ("mod16", F_RR, 16, True, True),
        # single-register (rr = 0)
        ("neg", F_RR, 1, True, True),
        ("com", F_RR, 1, True, True),
        ("inc", F_RR, 1, True, True),
        ("dec", F_RR, 1, True, True),
        ("lsl", F_RR, 1, True, True),
        ("lsr", F_RR, 1, True, True),
        ("rol", F_RR, 1, True, True),
        ("ror", F_RR, 1, True, True),
        ("clr", F_RR, 1, False, True),
        ("push", F_RR, 2, True, False),
        ("pop", F_RR, 2, False, True),
        # I/O (rr = port number)
        ("in", F_RR, 1, False, True),
        ("out", F_RR, 1, True, False),
        # indirect loads/stores through Z (rd is data reg)
        ("ld_z", F_RR, 2, False, True),
        ("ld_zp", F_RR, 2, False, True),  # post-increment Z (PIA mode)
        ("st_z", F_RR, 2, True, False),
        ("st_zp", F_RR, 2, True, False),
        # immediates (two words)
        ("ldi", F_IMM, 1, False, True),
        ("subi", F_IMM, 1, True, True),
        ("sbci", F_IMM, 1, True, True),
        ("andi", F_IMM, 1, True, True),
        ("ori", F_IMM, 1, True, True),
        ("eori", F_IMM, 1, True, True),
        ("cpi", F_IMM, 1, True, False),
        # absolute memory / control (two words)
        ("lds", F_ADDR, 2, False, True),
        ("sts", F_ADDR, 2, True, False),
        ("call", F_ADDR, 4, False, False),
        ("jmp", F_ADDR, 3, False, False),
        # relative control (one word)
        ("rjmp", F_BR, 2, False, False),
        ("breq", F_BR, 1, False, False),
        ("brne", F_BR, 1, False, False),
        ("brlo", F_BR, 1, False, False),  # branch if carry set (unsigned <)
        ("brsh", F_BR, 1, False, False),  # branch if carry clear (unsigned >=)
    ]
    table = {}
    for opcode, (mnemonic, fmt, cycles, reads, writes) in enumerate(specs, start=1):
        table[mnemonic] = OpSpec(mnemonic, opcode, fmt, cycles, reads, writes)
    return table


#: mnemonic -> OpSpec
OPCODES: dict[str, OpSpec] = _build_table()

#: opcode number -> OpSpec
BY_OPCODE: dict[int, OpSpec] = {spec.opcode: spec for spec in OPCODES.values()}

#: Mnemonics whose encoded second word is a data address (so relocating a
#: variable re-encodes them -- what UCC-DA minimises).
DATA_ADDRESS_OPS = frozenset({"lds", "sts"})


@dataclass
class MachineInstr:
    """One machine instruction (or a label pseudo-instruction).

    Before assembly, branch/call targets are symbolic (``target``).
    ``ir_index`` ties the instruction back to the IR instruction it was
    selected from, which is how execution profiles map back to
    ``freq(s)`` and how the differ reports per-statement attribution.
    """

    mnemonic: str
    rd: int = 0
    rr: int = 0
    imm: int = 0
    addr: int = 0
    target: str = ""  # symbolic label (branches, calls, jmp)
    ir_index: int = -1
    comment: str = ""

    @property
    def is_label(self) -> bool:
        return self.mnemonic == "label"

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.mnemonic]

    @property
    def size_words(self) -> int:
        if self.is_label:
            return 0
        fmt = self.spec.fmt
        return 2 if fmt in (F_IMM, F_ADDR) else 1

    @property
    def cycles(self) -> int:
        return self.spec.cycles

    def render(self) -> str:
        if self.is_label:
            return f"{self.target}:"
        spec = self.spec
        if spec.fmt == F_NONE:
            return self.mnemonic
        if spec.fmt == F_RR:
            if self.mnemonic in ("in",):
                return f"{self.mnemonic} r{self.rd}, ${self.rr:02x}"
            if self.mnemonic in ("out",):
                return f"{self.mnemonic} ${self.rr:02x}, r{self.rd}"
            if self.mnemonic in ("push", "pop", "neg", "com", "inc", "dec",
                                 "lsl", "lsr", "rol", "ror", "clr",
                                 "ld_z", "ld_zp", "st_z", "st_zp"):
                return f"{self.mnemonic} r{self.rd}"
            return f"{self.mnemonic} r{self.rd}, r{self.rr}"
        if spec.fmt == F_IMM:
            return f"{self.mnemonic} r{self.rd}, #{self.imm}"
        if spec.fmt == F_ADDR:
            if self.mnemonic in ("call", "jmp"):
                where = self.target or f"@{self.addr:04x}"
                return f"{self.mnemonic} {where}"
            if self.mnemonic == "sts":
                return f"sts ${self.addr:04x}, r{self.rd}"
            return f"{self.mnemonic} r{self.rd}, ${self.addr:04x}"
        if spec.fmt == F_BR:
            where = self.target or f"{self.addr:+d}"
            return f"{self.mnemonic} {where}"
        raise AssertionError(spec.fmt)  # pragma: no cover

    def __str__(self) -> str:
        return self.render()


def label(name: str) -> MachineInstr:
    """Create a label pseudo-instruction."""
    return MachineInstr(mnemonic="label", target=name)


# ---------------------------------------------------------------------------
# Encoding / decoding
# ---------------------------------------------------------------------------

_OFFSET_BITS = 10
_OFFSET_MIN = -(1 << (_OFFSET_BITS - 1))
_OFFSET_MAX = (1 << (_OFFSET_BITS - 1)) - 1


class EncodingError(Exception):
    """Raised when an instruction cannot be encoded (bad field range)."""


def encode(instr: MachineInstr) -> tuple[int, ...]:
    """Encode ``instr`` into one or two 16-bit words.

    Branch targets must already be resolved to word offsets
    (``instr.addr``) and call targets to absolute word addresses —
    the assembler does this.
    """
    if instr.is_label:
        return ()
    spec = instr.spec
    op = spec.opcode
    if spec.fmt == F_NONE:
        return ((op << 10),)
    if spec.fmt == F_RR:
        _check_reg(instr.rd)
        if not 0 <= instr.rr < 32:
            raise EncodingError(f"rr/port {instr.rr} out of range in {instr}")
        return ((op << 10) | (instr.rd << 5) | instr.rr,)
    if spec.fmt == F_IMM:
        _check_reg(instr.rd)
        if not 0 <= instr.imm <= 0xFF:
            raise EncodingError(f"immediate {instr.imm} out of range in {instr}")
        return ((op << 10) | (instr.rd << 5), instr.imm)
    if spec.fmt == F_ADDR:
        _check_reg(instr.rd)
        if not 0 <= instr.addr <= 0xFFFF:
            raise EncodingError(f"address {instr.addr:#x} out of range in {instr}")
        return ((op << 10) | (instr.rd << 5), instr.addr)
    if spec.fmt == F_BR:
        offset = instr.addr
        if not _OFFSET_MIN <= offset <= _OFFSET_MAX:
            raise EncodingError(f"branch offset {offset} out of range in {instr}")
        return ((op << 10) | (offset & ((1 << _OFFSET_BITS) - 1)),)
    raise AssertionError(spec.fmt)  # pragma: no cover


def decode(words: list[int], index: int) -> tuple[MachineInstr, int]:
    """Decode the instruction starting at ``words[index]``.

    Returns the instruction and the number of words consumed.
    """
    word = words[index]
    opcode = word >> 10
    spec = BY_OPCODE.get(opcode)
    if spec is None:
        raise EncodingError(f"unknown opcode {opcode} in word {word:#06x}")
    instr = MachineInstr(mnemonic=spec.mnemonic)
    if spec.fmt == F_NONE:
        return instr, 1
    if spec.fmt == F_RR:
        instr.rd = (word >> 5) & 0x1F
        instr.rr = word & 0x1F
        return instr, 1
    if spec.fmt == F_IMM:
        instr.rd = (word >> 5) & 0x1F
        instr.imm = words[index + 1]
        return instr, 2
    if spec.fmt == F_ADDR:
        instr.rd = (word >> 5) & 0x1F
        instr.addr = words[index + 1]
        return instr, 2
    if spec.fmt == F_BR:
        raw = word & ((1 << _OFFSET_BITS) - 1)
        if raw >= (1 << (_OFFSET_BITS - 1)):
            raw -= 1 << _OFFSET_BITS
        instr.addr = raw
        return instr, 1
    raise AssertionError(spec.fmt)  # pragma: no cover


def _check_reg(reg: int) -> None:
    if not 0 <= reg < 32:
        raise EncodingError(f"register r{reg} out of range")


# ---------------------------------------------------------------------------
# Batch encode / decode (fast path; see repro.fastpath)
# ---------------------------------------------------------------------------


def encode_batch(instrs: list[MachineInstr]) -> list[tuple[int, ...]]:
    """Encode many instructions at once; labels encode to ``()``.

    On the reference path this is exactly ``[encode(i) for i in
    instrs]``.  The fast path runs one flat loop with the opcode table
    and format dispatch hoisted out of the per-instruction dataclass
    property chain; the emitted words (and the first raised
    :class:`EncodingError`, message included) are identical —
    ``tests/test_ilp_fastpath.py`` certifies the round-trip
    differentially.
    """
    if not fastpath_enabled():
        return [encode(instr) for instr in instrs]
    out: list[tuple[int, ...]] = []
    append = out.append
    opcodes = OPCODES
    for instr in instrs:
        mnemonic = instr.mnemonic
        if mnemonic == "label":
            append(())
            continue
        spec = opcodes[mnemonic]
        fmt = spec.fmt
        op_shifted = spec.opcode << 10
        if fmt == F_RR:
            rd = instr.rd
            rr = instr.rr
            if not 0 <= rd < 32:
                raise EncodingError(f"register r{rd} out of range")
            if not 0 <= rr < 32:
                raise EncodingError(f"rr/port {rr} out of range in {instr}")
            append((op_shifted | (rd << 5) | rr,))
        elif fmt == F_IMM:
            rd = instr.rd
            imm = instr.imm
            if not 0 <= rd < 32:
                raise EncodingError(f"register r{rd} out of range")
            if not 0 <= imm <= 0xFF:
                raise EncodingError(f"immediate {imm} out of range in {instr}")
            append((op_shifted | (rd << 5), imm))
        elif fmt == F_ADDR:
            rd = instr.rd
            addr = instr.addr
            if not 0 <= rd < 32:
                raise EncodingError(f"register r{rd} out of range")
            if not 0 <= addr <= 0xFFFF:
                raise EncodingError(f"address {addr:#x} out of range in {instr}")
            append((op_shifted | (rd << 5), addr))
        elif fmt == F_BR:
            offset = instr.addr
            if not _OFFSET_MIN <= offset <= _OFFSET_MAX:
                raise EncodingError(f"branch offset {offset} out of range in {instr}")
            append((op_shifted | (offset & ((1 << _OFFSET_BITS) - 1)),))
        else:  # F_NONE
            append((op_shifted,))
    return out


def decode_batch(words: list[int]) -> list[MachineInstr]:
    """Decode a flat word list back into an instruction list.

    The reference path walks :func:`decode` word by word; the fast path
    is the same walk with table lookups and format dispatch flattened
    into one loop.  Both produce identical instructions and raise the
    identical :class:`EncodingError` on the first unknown opcode.
    """
    if not fastpath_enabled():
        instrs = []
        index = 0
        while index < len(words):
            instr, consumed = decode(words, index)
            instrs.append(instr)
            index += consumed
        return instrs
    by_opcode = BY_OPCODE
    instrs = []
    append = instrs.append
    index = 0
    count = len(words)
    offset_mask = (1 << _OFFSET_BITS) - 1
    offset_sign = 1 << (_OFFSET_BITS - 1)
    while index < count:
        word = words[index]
        spec = by_opcode.get(word >> 10)
        if spec is None:
            raise EncodingError(f"unknown opcode {word >> 10} in word {word:#06x}")
        fmt = spec.fmt
        instr = MachineInstr(mnemonic=spec.mnemonic)
        if fmt == F_RR:
            instr.rd = (word >> 5) & 0x1F
            instr.rr = word & 0x1F
            index += 1
        elif fmt == F_NONE:
            index += 1
        elif fmt == F_IMM:
            instr.rd = (word >> 5) & 0x1F
            instr.imm = words[index + 1]
            index += 2
        elif fmt == F_ADDR:
            instr.rd = (word >> 5) & 0x1F
            instr.addr = words[index + 1]
            index += 2
        else:  # F_BR
            raw = word & offset_mask
            if raw >= offset_sign:
                raw -= 1 << _OFFSET_BITS
            instr.addr = raw
            index += 1
        append(instr)
    return instrs
