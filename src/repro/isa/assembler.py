"""Assembler: symbolic machine code → executable binary image.

Two passes: the first assigns word addresses to every instruction and
records label positions; the second resolves branch offsets and call
targets and encodes each instruction to its 16-bit words.

The output :class:`BinaryImage` is the unit the rest of the system works
on — the differ compares two images instruction-by-instruction, the
patcher rewrites one into another, and the simulator executes one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fastpath import fastpath_enabled
from .instructions import (
    EncodingError,
    F_ADDR,
    F_BR,
    MachineInstr,
    decode_batch,
    encode_batch,
)


@dataclass
class EncodedInstr:
    """One encoded instruction: its words, address, and provenance."""

    address: int  # word address of the first word
    words: tuple[int, ...]
    instr: MachineInstr

    @property
    def size_words(self) -> int:
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        return 2 * len(self.words)


@dataclass
class BinaryImage:
    """A fully assembled program.

    ``code`` lists encoded instructions in address order; ``data`` is
    the initial data-segment byte image (globals' initial values);
    ``entry`` is the word address of ``main``; ``symbols`` maps label
    names (functions and local labels, function-qualified) to word
    addresses.
    """

    code: list[EncodedInstr] = field(default_factory=list)
    data: bytes = b""
    data_base: int = 0
    entry: int = 0
    symbols: dict[str, int] = field(default_factory=dict)

    def words(self) -> list[int]:
        flat: list[int] = []
        for enc in self.code:
            flat.extend(enc.words)
        return flat

    def words_in_range(self, start: int, end: int) -> tuple[int, ...]:
        """Raw words of the instructions in ``[start, end)`` (used to
        build placement tombstones)."""
        flat: list[int] = []
        for enc in self.code:
            if start <= enc.address < end:
                flat.extend(enc.words)
        return tuple(flat)

    def to_bytes(self) -> bytes:
        words = self.words()
        if fastpath_enabled():
            # One little-endian uint16 bulk conversion; identical bytes
            # to the word-at-a-time reference loop below.
            return np.asarray(words, dtype="<u2").tobytes()
        out = bytearray()
        for word in words:
            out += word.to_bytes(2, "little")
        return bytes(out)

    @property
    def size_words(self) -> int:
        return sum(e.size_words for e in self.code)

    @property
    def size_bytes(self) -> int:
        return 2 * self.size_words

    def instruction_count(self) -> int:
        return len(self.code)

    def disassemble(self) -> str:
        """Human-readable listing with addresses (for debugging)."""
        addr_to_label = {}
        for name, addr in self.symbols.items():
            addr_to_label.setdefault(addr, []).append(name)
        lines = []
        for enc in self.code:
            for name in addr_to_label.get(enc.address, []):
                lines.append(f"{name}:")
            raw = " ".join(f"{w:04x}" for w in enc.words)
            lines.append(f"  {enc.address:04x}: {raw:<10} {enc.instr}")
        return "\n".join(lines)


class AssemblyError(Exception):
    """Raised for undefined labels or out-of-range encodings."""


def assemble(
    instrs: list[MachineInstr],
    data: bytes = b"",
    data_base: int = 0,
    entry_label: str = "main",
) -> BinaryImage:
    """Assemble a flat instruction list (with label pseudo-instrs).

    Label scoping is the caller's concern: the code generator emits
    function-qualified local labels (``main.L0``), so one flat namespace
    suffices.
    """
    # Pass 1: addresses.
    symbols: dict[str, int] = {}
    address = 0
    for instr in instrs:
        if instr.is_label:
            if instr.target in symbols:
                raise AssemblyError(f"duplicate label {instr.target!r}")
            symbols[instr.target] = address
        else:
            address += instr.size_words

    # Pass 2: resolve targets, then encode the whole program in one
    # batch (the fast/reference split lives in ``encode_batch``).
    image = BinaryImage(data=data, data_base=data_base, symbols=symbols)
    address = 0
    resolved_instrs: list[MachineInstr] = []
    addresses: list[int] = []
    for instr in instrs:
        if instr.is_label:
            continue
        resolved = instr
        if instr.target:
            if instr.target not in symbols:
                raise AssemblyError(f"undefined label {instr.target!r}")
            dest = symbols[instr.target]
            if instr.spec.fmt == F_BR:
                resolved = _with_addr(instr, dest - (address + instr.size_words))
            elif instr.spec.fmt == F_ADDR:
                resolved = _with_addr(instr, dest)
            else:
                raise AssemblyError(
                    f"{instr.mnemonic} cannot take a label target"
                )
        resolved_instrs.append(resolved)
        addresses.append(address)
        address += instr.size_words
    try:
        encoded = encode_batch(resolved_instrs)
    except EncodingError as exc:
        raise AssemblyError(str(exc)) from exc
    image.code = [
        EncodedInstr(address=addr, words=words, instr=resolved)
        for addr, words, resolved in zip(addresses, encoded, resolved_instrs)
    ]

    if entry_label not in symbols:
        raise AssemblyError(f"entry point {entry_label!r} not defined")
    image.entry = symbols[entry_label]
    return image


def _with_addr(instr: MachineInstr, addr: int) -> MachineInstr:
    clone = MachineInstr(
        mnemonic=instr.mnemonic,
        rd=instr.rd,
        rr=instr.rr,
        imm=instr.imm,
        addr=addr,
        target=instr.target,
        ir_index=instr.ir_index,
        comment=instr.comment,
    )
    return clone


def disassemble_words(words: list[int]) -> list[MachineInstr]:
    """Decode a flat word list back into instructions.

    Used by tests to confirm the encoding round-trips and by the patcher
    to sanity-check a reconstructed image.  Delegates to
    :func:`repro.isa.instructions.decode_batch`, which carries the
    fast/reference split.
    """
    return decode_batch(words)
