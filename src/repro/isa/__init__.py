"""AVR-flavoured target ISA: registers, instructions, encoding, assembler."""

from . import devices, registers
from .assembler import (
    AssemblyError,
    BinaryImage,
    EncodedInstr,
    assemble,
    disassemble_words,
)
from .instructions import (
    DATA_ADDRESS_OPS,
    EncodingError,
    MachineInstr,
    OPCODES,
    OpSpec,
    decode,
    encode,
    label,
)

__all__ = [
    "AssemblyError",
    "BinaryImage",
    "DATA_ADDRESS_OPS",
    "EncodedInstr",
    "EncodingError",
    "MachineInstr",
    "OPCODES",
    "OpSpec",
    "assemble",
    "decode",
    "devices",
    "disassemble_words",
    "encode",
    "label",
    "registers",
]
