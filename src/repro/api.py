"""The typed public API of :mod:`repro`.

This module is the supported programmatic surface.  Every entry point
takes a frozen config dataclass (:class:`CompileConfig`,
:class:`UpdateConfig`, :class:`TopologySpec`, :class:`FleetJob`) instead
of string-flag keyword arguments; the legacy ``ra=``/``da=``/``cp=``
spellings still work on the underlying classes but emit
:class:`DeprecationWarning` (see ``docs/API.md`` for the migration
table).

The surface is pinned: ``tools/check_api.py`` diffs ``__all__`` (and
each member's signature) against ``tools/api_surface.txt`` in CI, so
accidental drift fails the build.

>>> import repro.api as api
>>> from repro.workloads import CASES
>>> case = CASES["6"]
>>> old = api.compile_source(case.old_source)
>>> result = api.plan_update(old, case.new_source,
...                          config=api.UpdateConfig(ra="ucc", da="ucc"))
>>> result.diff_inst < result.diff.new_instructions
True
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .config import (
    CP_STRATEGIES,
    DA_STRATEGIES,
    PLAN_STRATEGIES,
    RA_STRATEGIES,
    CohortPlan,
    CompileConfig,
    FleetJob,
    TopologySpec,
    UpdateConfig,
    VersionGraphConfig,
    VersionSpec,
)
from .core.compiler import CompiledProgram, Compiler
from .core.session import (
    CampaignResult,
    SessionResult,
    UpdateSession,
    VersionedCampaignResult,
)
from .core.update import UpdatePlanner, UpdateResult
from .energy import MICA2, PowerModel
from .net.campaign import PROTOCOLS, CampaignReport
from .net.coding import (
    CODING_SCHEMES,
    CodedTransferParams,
    run_coded_campaign,
)
from .net.errors import DisconnectedTopologyError, DisseminationIncomplete
from .net.faults import (
    FaultPlan,
    NodeCrash,
    PartitionWindow,
    PowerTrace,
    generate_power_traces,
)
from .net.gossip import GossipParams, run_gossip
from .net.profiles import (
    BATTERYLESS_HARVEST,
    DeviceProfile,
    LORAWAN_DR3,
    MICA2_PROFILE,
    PROFILES,
    get_profile,
)
from .net.kernel import (
    ALWAYS_ON,
    LPL_1,
    LPL_10,
    DutyCycle,
    KernelReport,
    SimKernel,
)
from .net.topology import Topology
from .net.trickle import TrickleParams, run_trickle
from .service.fleet import FleetResult, FleetUpdateService, JobOutcome
from .service.fleet import run_batch as _run_batch
from .versioning import (
    VersionedCampaignReport,
    VersionGraph,
    build_version_graph,
    plan_cohorts,
    run_versioned_campaign,
)


def compile_source(
    source: str,
    config: Optional[CompileConfig] = None,
    filename: str = "<source>",
) -> CompiledProgram:
    """Compile one translation unit under a :class:`CompileConfig`."""
    cfg = config if config is not None else CompileConfig()
    return Compiler(cfg.to_options()).compile(source, filename=filename)


def plan_update(
    old: CompiledProgram,
    new_source: str,
    config: Optional[UpdateConfig] = None,
) -> UpdateResult:
    """Plan one update of ``old`` to ``new_source`` under an
    :class:`UpdateConfig` (strategy, knobs, verification)."""
    cfg = config if config is not None else UpdateConfig()
    return UpdatePlanner(old, config=cfg).plan(new_source)


def make_planner(
    old: CompiledProgram,
    config: Optional[UpdateConfig] = None,
) -> UpdatePlanner:
    """An :class:`UpdatePlanner` bound to ``old``; reuse it to plan
    several candidate updates against the same deployed version."""
    return UpdatePlanner(old, config=config if config is not None else UpdateConfig())


def make_session(
    deployed: CompiledProgram,
    topology: Union[TopologySpec, Topology, None] = None,
    config: Optional[UpdateConfig] = None,
    power: PowerModel = MICA2,
    loss: float = 0.0,
    loss_seed: int = 1,
) -> UpdateSession:
    """An OTA :class:`UpdateSession` over a topology (a built
    :class:`~repro.net.topology.Topology` or a declarative
    :class:`TopologySpec`; ``None`` means the default 8x8 grid)."""
    built = topology.build() if isinstance(topology, TopologySpec) else topology
    return UpdateSession(
        deployed,
        topology=built,
        power=power,
        loss=loss,
        loss_seed=loss_seed,
        config=config,
    )


def run_batch(
    jobs: Sequence[FleetJob],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    use_processes: bool = True,
) -> FleetResult:
    """Plan a batch of :class:`FleetJob`s through a fresh
    :class:`FleetUpdateService` (cached, process-parallel, outcomes in
    job order)."""
    return _run_batch(
        jobs,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        use_processes=use_processes,
    )


__all__ = [
    "ALWAYS_ON",
    "BATTERYLESS_HARVEST",
    "CODING_SCHEMES",
    "CP_STRATEGIES",
    "CampaignReport",
    "CampaignResult",
    "CodedTransferParams",
    "CohortPlan",
    "CompileConfig",
    "CompiledProgram",
    "DA_STRATEGIES",
    "DeviceProfile",
    "DisconnectedTopologyError",
    "DisseminationIncomplete",
    "DutyCycle",
    "FaultPlan",
    "FleetJob",
    "FleetResult",
    "FleetUpdateService",
    "GossipParams",
    "JobOutcome",
    "KernelReport",
    "LORAWAN_DR3",
    "LPL_1",
    "LPL_10",
    "MICA2_PROFILE",
    "NodeCrash",
    "PLAN_STRATEGIES",
    "PROFILES",
    "PROTOCOLS",
    "PartitionWindow",
    "PowerTrace",
    "RA_STRATEGIES",
    "SessionResult",
    "SimKernel",
    "TopologySpec",
    "TrickleParams",
    "UpdateConfig",
    "UpdatePlanner",
    "UpdateResult",
    "UpdateSession",
    "VersionGraph",
    "VersionGraphConfig",
    "VersionSpec",
    "VersionedCampaignReport",
    "VersionedCampaignResult",
    "build_version_graph",
    "compile_source",
    "generate_power_traces",
    "get_profile",
    "make_planner",
    "make_session",
    "plan_cohorts",
    "plan_update",
    "run_batch",
    "run_coded_campaign",
    "run_gossip",
    "run_trickle",
    "run_versioned_campaign",
]
