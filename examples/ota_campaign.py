#!/usr/bin/env python3
"""A maintenance campaign over a multi-hop sensor network.

Deploys CntToLeds on an 8x8 grid, then pushes three successive source
updates (reconstructed from the paper's Figure 9 case descriptions)
through the flooding dissemination protocol — once with the
update-conscious compiler and once with the oblivious baseline — and
compares the joule-level radio bills from the Mica2 power model.

Run:  python examples/ota_campaign.py
"""

from repro.config import UpdateConfig
from repro.core import UpdateSession, compile_source
from repro.net import grid
from repro.workloads import CNT_TO_LEDS

EDITS = [
    # 1. change the displayed colour subset (a "small" change)
    lambda src: src.replace("u8 display_mask = 7;", "u8 display_mask = 5;"),
    # 2. add a heartbeat global used in a new branch (a "medium" change)
    lambda src: src.replace(
        "u16 cnt = 0;", "u16 cnt = 0;\nu16 heartbeats = 0;"
    ).replace(
        "void timer_handle_fire() {",
        "void timer_handle_fire() {\n    heartbeats = heartbeats + 1;",
    ),
    # 3. report the counter over the radio every 8th tick
    lambda src: src.replace(
        "    led_set(cnt & display_mask);",
        "    led_set(cnt & display_mask);\n"
        "    if ((cnt & 7) == 0) {\n        radio_send(cnt);\n    }",
    ),
]


def run_campaign(strategy: str) -> tuple[float, int]:
    topology = grid(8, 8)
    session = UpdateSession(compile_source(CNT_TO_LEDS), topology=topology)
    total_j = 0.0
    total_bytes = 0
    source = CNT_TO_LEDS
    for step, edit in enumerate(EDITS, start=1):
        source = edit(source)
        ra, da = ("ucc", "ucc") if strategy == "ucc" else ("gcc", "gcc")
        result = session.push_update(source, config=UpdateConfig(ra=ra, da=da))
        total_j += result.network_energy_j
        total_bytes += result.update.script_bytes
        print(
            f"  [{strategy}] update {step}: Diff_inst={result.update.diff_inst:3d}  "
            f"script={result.update.script_bytes:4d} B  "
            f"network={result.network_energy_j * 1e3:7.2f} mJ  "
            f"hottest node="
            f"{result.dissemination.max_node_energy_j(exclude_sink=True) * 1e6:7.1f} uJ"
        )
    return total_j, total_bytes


def main() -> None:
    print("=== campaign with the update-oblivious baseline ===")
    base_j, base_bytes = run_campaign("gcc")
    print("=== campaign with UCC ===")
    ucc_j, ucc_bytes = run_campaign("ucc")

    print("\n=== campaign totals (63 battery-powered nodes, 3 updates) ===")
    print(f"baseline: {base_bytes:5d} script bytes, {base_j * 1e3:8.2f} mJ network energy")
    print(f"UCC     : {ucc_bytes:5d} script bytes, {ucc_j * 1e3:8.2f} mJ network energy")
    if ucc_j < base_j:
        print(f"UCC spends {100 * (1 - ucc_j / base_j):.0f}% less radio energy "
              "on this campaign")


if __name__ == "__main__":
    main()
