#!/usr/bin/env python3
"""OTA maintenance over a lossy multi-hop network, guided by profiles.

Combines three pieces of the reproduction that the paper discusses but
does not evaluate together:

* execution profiles (paper §2.1) collected on the deployed binary
  drive the planner's energy decisions,
* the update is disseminated over a 6x6 grid whose links drop packets
  (Deluge/MNP-style NACK repair, paper refs [11]/[17]),
* both compilation strategies are billed in joules from the Figure 3
  power model.

Run:  python examples/lossy_network_update.py
"""

from repro.core import compile_source, profile_program
from repro.net import disseminate_lossy, grid
from repro.workloads import CASES


def main() -> None:
    case = CASES["D1"]
    print(f"update: case D1 — {case.description}\n")
    deployed = compile_source(case.old_source)

    profile = profile_program(deployed)
    hot = sorted(profile.profile.items(), key=lambda kv: -kv[1])[:3]
    print("deployed-binary profile (hottest sites):")
    for (fn, ir_index), count in hot:
        print(f"  {fn}:{ir_index}  executed {count} times per run")
    print()

    topology = grid(6, 6)
    print(f"network: 6x6 grid, {topology.node_count - 1} battery nodes, "
          f"depth {topology.max_hops()} hops\n")

    header = (
        f"{'strategy':>10s} {'loss':>6s} {'script':>8s} {'broadcasts':>11s} "
        f"{'rounds':>7s} {'energy':>10s}"
    )
    print(header)
    print("-" * len(header))
    from repro.config import UpdateConfig
    from repro.core import UpdatePlanner

    for strategy, ra, da in (("baseline", "gcc", "gcc"), ("UCC", "ucc", "ucc")):
        planner = UpdatePlanner(deployed, profile=profile)
        result = planner.plan(case.new_source, config=UpdateConfig(ra=ra, da=da))
        for loss in (0.0, 0.15, 0.30):
            net = disseminate_lossy(topology, result.packets, loss=loss, seed=9)
            print(
                f"{strategy:>10s} {loss:6.0%} {result.script_bytes:7d}B "
                f"{net.broadcasts:11d} {net.rounds:7d} "
                f"{net.total_energy_j * 1e3:8.2f} mJ"
            )
    print("\nA smaller script wins twice on lossy links: fewer packets to "
          "flood, and fewer\nretransmissions of each lost one.")


if __name__ == "__main__":
    main()
