#!/usr/bin/env python3
"""Quickstart: one update-conscious OTA code update, end to end.

Compiles a small sensor program, edits its source, recompiles it both
update-obliviously (fresh GCC-style allocation) and update-consciously
(UCC), and shows what each strategy would have to transmit to the
sensors — then applies the UCC script on the "sensor" and runs the
patched binary to prove it behaves like a fresh compile.

Run:  python examples/quickstart.py
"""

from repro import compile_source, plan_update
from repro.diff.patcher import patched_words
from repro.sim import DeviceBoard, Timer, run_image
from repro.config import UpdateConfig

OLD_SOURCE = """
// A little telemetry node: every timer tick, sample the sensor,
// smooth it, and report it over the radio.
u16 smoothed = 0;
u8 report_mask = 3;

u16 smooth(u16 sample) {
    // exponential smoothing with a 1/4 factor
    u16 delta = sample >> 2;
    smoothed = smoothed - (smoothed >> 2) + delta;
    return smoothed;
}

void tosh_run_next_task() {
    if (timer_fired()) {
        u16 value = smooth(adc_read());
        led_set(value & report_mask);
        radio_send(value);
    }
}

void main() {
    u16 iter;
    for (iter = 0; iter < 400; iter++) {
        tosh_run_next_task();
    }
    halt();
}
"""

# The maintenance edit: report only every other sample and tag packets.
NEW_SOURCE = OLD_SOURCE.replace(
    "u8 report_mask = 3;",
    "u8 report_mask = 3;\nu8 report_phase = 0;",
).replace(
    "        led_set(value & report_mask);\n        radio_send(value);",
    "        led_set(value & report_mask);\n"
    "        report_phase = report_phase ^ 1;\n"
    "        if (report_phase == 0) {\n"
    "            radio_send(value);\n"
    "        }",
)


def main() -> None:
    print("=== 1. compile and deploy the original program ===")
    old = compile_source(OLD_SOURCE)
    print(f"deployed binary: {old.instruction_count} instructions, "
          f"{old.size_words} words")

    print("\n=== 2. recompile the edited source, both ways ===")
    baseline = plan_update(old, NEW_SOURCE, config=UpdateConfig(ra="gcc", da="gcc"))
    ucc = plan_update(old, NEW_SOURCE, config=UpdateConfig(ra="ucc", da="ucc"))
    for name, result in (("update-oblivious", baseline), ("UCC", ucc)):
        print(
            f"{name:>17s}: Diff_inst={result.diff_inst:3d}  "
            f"script={result.script_bytes:3d} B "
            f"(code {result.code_script_bytes} + data {result.data_script_bytes})  "
            f"packets={result.packets.packet_count}"
        )
    saved = baseline.script_bytes - ucc.script_bytes
    print(f"UCC saves {saved} bytes on air "
          f"({100 * saved / max(1, baseline.script_bytes):.0f}% of the baseline script)")

    print("\n=== 3. sensor-side patch ===")
    rebuilt = patched_words(old.image, ucc.diff.script)
    assert rebuilt == ucc.new.image.words()
    print(f"patched {old.size_words}-word image into "
          f"{ucc.new.size_words}-word image: byte-identical to the sink's binary")

    print("\n=== 4. run the patched binary ===")
    board = DeviceBoard(timer=Timer(period_cycles=400))
    run = run_image(ucc.new.image, devices=board)
    print(f"ran {run.cycles} cycles; radio sent {len(board.radio.sent)} packets "
          "(every other sample, as the edit intended)")
    print("first reports:", board.radio.sent[:5])


if __name__ == "__main__":
    main()
