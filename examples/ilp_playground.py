#!/usr/bin/env python3
"""Inside the UCC-RA integer program (paper §3.3-3.4).

Builds the ILP for one changed chunk of a real update case, prints it
in LP format (the paper feeds the same shape of program to LP_solve),
solves it with both backends, and cross-checks the linear (theta=3/4)
approximation against the exact non-linear objective — the paper's
§5.6 experiment in miniature.

Run:  python examples/ilp_playground.py
"""

from repro.core import Compiler, CompilerOptions, compile_source
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.ilp import solve
from repro.ir import analyze, static_frequencies
from repro.regalloc import (
    allocate_ucc_greedy,
    build_chunk_model,
    nonlinear_objective,
    solve_chunk_minlp,
)
from repro.regalloc.chunks import changed_indices
from repro.regalloc.ilp_ra import build_spec_for_chunk
from repro.workloads import CASES


def main() -> None:
    case = CASES["6"]
    print(f"update case 6: {case.description}\n")

    old = compile_source(case.old_source)
    module = Compiler(CompilerOptions()).front_and_middle(case.new_source)
    fn = module.functions["tosh_run_next_task"]
    record, report = allocate_ucc_greedy(
        fn, old.module.functions["tosh_run_next_task"],
        old.records["tosh_run_next_task"],
    )

    chunk = next(c for c in report.chunks if c.changed)
    print(f"changed chunk: IR instructions [{chunk.start}, {chunk.end}) of "
          f"{len(fn.instrs)} in tosh_run_next_task")

    info = analyze(fn)
    spec = build_spec_for_chunk(
        fn, info, record, report, chunk.start, chunk.end,
        changed_indices(fn, report.match), static_frequencies(fn),
        DEFAULT_ENERGY_MODEL, 1000.0, 3,
    )
    model = build_chunk_model(spec)
    print(f"model: {model.num_variables} binary variables, "
          f"{model.num_constraints} constraints\n")

    lp_text = model.render_lp()
    preview = "\n".join(lp_text.splitlines()[:18])
    print("LP-format preview:")
    print(preview)
    print("  ...\n")

    own = solve(model, backend="own")
    ref = solve(model, backend="scipy")
    print(f"own simplex+B&B : objective={own.objective:.0f}  "
          f"({own.stats.simplex_iterations} simplex iterations, "
          f"{own.stats.nodes} B&B nodes, {own.stats.wall_time * 1e3:.1f} ms)")
    print(f"scipy/HiGHS     : objective={ref.objective:.0f}  "
          f"({ref.stats.wall_time * 1e3:.1f} ms)")

    minlp = solve_chunk_minlp(spec)
    true_energy = nonlinear_objective(spec, own.values)
    print(f"\nexact MINLP (enumeration of {minlp.evaluated} assignments, "
          f"{minlp.wall_time * 1e3:.1f} ms): objective={minlp.objective:.0f}")
    print(f"true energy of the ILP solution: {true_energy:.0f}")
    verdict = "SAME decisions" if abs(true_energy - minlp.objective) < 1e-6 else "DIFFER"
    print(f"linear approximation vs MINLP: {verdict} "
          "(the paper observed the same on all its test cases)")


if __name__ == "__main__":
    main()
