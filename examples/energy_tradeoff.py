#!/usr/bin/env python3
"""The transmission-vs-execution energy trade-off (paper §2.1, §5.5).

Reproduces the reasoning behind the paper's Figure 12 on one update
case: sweep the projected execution count ``Cnt`` and watch the
adaptive planner choose between

* the UCC compilation (smaller update script, possibly a few extra
  run-time cycles from keeping old register decisions), and
* the baseline compilation (bigger script, best code quality),

falling back to the baseline exactly when the execution term outgrows
the transmission savings — the paper's "UCC-RA falls back to GCC-RA
when the code is executed more than 10^7 times".

Run:  python examples/energy_tradeoff.py
"""

from repro.core import UpdatePlanner, compile_source, measure_cycles
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.workloads import CASES
from repro.config import UpdateConfig


def main() -> None:
    model = DEFAULT_ENERGY_MODEL
    print("the paper's §2.1 rule of thumb:")
    print(
        "  adding 1 instruction to save 1 transmitted word pays off below "
        f"{model.breakeven_executions(1, 1.0):,.0f} executions\n"
    )

    case = CASES["8"]  # adds a parameter; UCC pays one extra saved register
    print(f"update case 8: {case.description}")
    old = compile_source(case.old_source)
    planner = UpdatePlanner(old)

    ucc = measure_cycles(planner.plan(case.new_source, config=UpdateConfig(ra="ucc", da="ucc")))
    baseline = measure_cycles(planner.plan(case.new_source, config=UpdateConfig(ra="gcc", da="ucc")))
    print(
        f"  UCC     : transmits {ucc.diff_words:2d} words, "
        f"runs {ucc.new_cycles - baseline.new_cycles:+d} cycles vs baseline"
    )
    print(f"  baseline: transmits {baseline.diff_words:2d} words\n")

    header = f"{'Cnt':>12s}  {'UCC energy':>14s}  {'baseline energy':>16s}  chosen"
    print(header)
    print("-" * len(header))
    for cnt in (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000):
        chosen = planner.plan_adaptive(case.new_source, cnt=cnt)
        ucc_e = ucc.diff_energy(cnt)
        base_e = baseline.diff_energy(cnt)
        winner = "UCC" if chosen.ra_strategy.endswith("(ucc)") else "baseline"
        print(f"{cnt:12,d}  {ucc_e:14,.0f}  {base_e:16,.0f}  {winner}")

    print(
        "\n(energies in normalised units: 1 = one CPU cycle, "
        f"{model.e_trans:.0f} = one transmitted instruction word)"
    )


if __name__ == "__main__":
    main()
