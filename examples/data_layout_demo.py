#!/usr/bin/env python3
"""Update-conscious data layout in action (paper §4 and Figure 7).

Shows the two §5.7 pathologies and how UCC-DA fixes them:

* D1 — inserting global variables: the name-hash baseline shifts other
  variables' addresses, re-encoding every load/store that touches them;
  UCC-DA leaves survivors in place and reuses holes.
* D2 — shuffling and renaming globals: invisible to UCC-DA (a rename
  is a delete + insert landing in the deleted slot).

Run:  python examples/data_layout_demo.py
"""

from repro.core import compile_source, plan_update
from repro.workloads import CASES
from repro.config import UpdateConfig


def show_layout(tag: str, layout, names) -> None:
    cells = ", ".join(
        f"{uid}@{layout.addresses[uid]:#06x}"
        for uid in sorted(names)
        if uid in layout.addresses
    )
    print(f"  {tag}: {cells}")


def demo(case_id: str) -> None:
    case = CASES[case_id]
    print(f"=== case {case_id}: {case.description} ===")
    old = compile_source(case.old_source)
    old_globals = [s.uid for s in old.module.globals]
    show_layout("old layout     ", old.layout, old_globals)

    baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="gcc"))
    ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
    new_globals = [s.uid for s in ucc.new.module.globals]
    show_layout("GCC-DA relayout", baseline.new.layout, new_globals)
    show_layout("UCC-DA relayout", ucc.new.layout, new_globals)

    for name, result in (("GCC-DA", baseline), ("UCC-DA", ucc)):
        moved = result.new.layout.moved_objects(old.layout)
        print(
            f"  {name}: Diff_inst={result.diff_inst:3d}  "
            f"script={result.script_bytes:3d} B  survivors moved={len(moved)}"
        )
    if ucc.da_report is not None:
        report = ucc.da_report
        print(
            f"  UCC-DA decisions: holes reused for {report.reused_holes or 'none'}, "
            f"appended {report.appended or 'none'}, "
            f"relocated {report.relocated or 'none'}, "
            f"wasted bytes {report.wasted_after}"
        )
    print()


def main() -> None:
    demo("D1")
    demo("D2")
    print("Figure 7's walk-through: with SpaceT=0 the deleted variable's "
          "slot is always reclaimed —\neither a new variable fills it, or "
          "the last variable of the function relocates into it\n"
          "(chosen by eq. 17's Depth/Usage score).")


if __name__ == "__main__":
    main()
