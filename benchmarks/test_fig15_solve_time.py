"""Figure 15: wall time per simplex iteration as a function of problem
complexity (#variables x #IR instructions) — near-linear in the paper,
because each pivot touches the whole (dense) tableau."""

import numpy as np

from repro.ilp import solve
from repro.regalloc import build_chunk_model

from conftest import emit_table
from test_fig13_constraints import spec_for_size

SIZES = [4, 8, 12, 16, 24]


def test_fig15_time_per_iteration(benchmark):
    rows = []
    points = []
    for n in SIZES:
        spec = spec_for_size(n)
        model = build_chunk_model(spec)
        result = solve(model, backend="own")
        assert result.status == "optimal"
        stats = result.stats
        complexity = (spec.hi - spec.lo) * len(spec.variables())
        per_iter = stats.time_per_iteration
        rows.append(
            [
                n,
                complexity,
                stats.simplex_iterations,
                f"{stats.wall_time * 1e3:.2f} ms",
                f"{per_iter * 1e6:.1f} us",
            ]
        )
        points.append((complexity, per_iter))
    emit_table(
        "fig15_solve_time",
        ["statements", "vars x instrs", "iterations", "total time", "time/iteration"],
        rows,
    )

    # Shape check: time per iteration grows with problem complexity
    # (monotone trend between the smallest and largest problems).
    small = np.mean([p[1] for p in points[:2]])
    large = np.mean([p[1] for p in points[-2:]])
    assert large > small

    spec = spec_for_size(8)
    model = build_chunk_model(spec)
    benchmark(solve, model, backend="own")
