"""Shared helpers for the figure-regeneration benchmarks.

Every ``test_figNN_*`` module regenerates the data behind one paper
figure/table and prints it (run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables; they are also written to
``benchmarks/out/``).  The ``benchmark`` fixture times the
representative unit of work of that experiment.
"""

from __future__ import annotations

import os

import pytest

from repro.core import compile_source
from repro.workloads import CASES

# Generated tables land here (gitignored); point REPRO_BENCH_OUT
# somewhere else to keep the tree clean, e.g. in CI.
OUT_DIR = os.environ.get(
    "REPRO_BENCH_OUT", os.path.join(os.path.dirname(__file__), "out")
)


@pytest.fixture(scope="session")
def case_olds():
    return {cid: compile_source(case.old_source) for cid, case in CASES.items()}


def emit_table(name: str, header: list[str], rows: list[list]) -> str:
    """Format, print, and persist one figure's table."""
    widths = [
        max(len(str(cell)) for cell in [head] + [row[i] for row in rows])
        for i, head in enumerate(header)
    ]
    lines = [
        "  ".join(str(head).ljust(widths[i]) for i, head in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text


def synthetic_chunk_source(n_stmts: int, n_vars: int = 3) -> str:
    """A straight-line function of ``n_stmts`` statements over
    ``n_vars`` u8 locals — the workload for the ILP-complexity sweeps
    (Figures 13-15)."""
    decls = "\n    ".join(f"u8 v{i} = {i + 1};" for i in range(n_vars))
    ops = ["+", "^", "|", "&", "-"]
    lines = []
    for s in range(n_stmts):
        dst = s % n_vars
        lhs = (s + 1) % n_vars
        rhs = (s + 2) % n_vars
        op = ops[s % len(ops)]
        lines.append(f"v{dst} = v{lhs} {op} v{rhs};")
    body = "\n    ".join(lines)
    uses = " ^ ".join(f"v{i}" for i in range(n_vars))
    return f"""
void f() {{
    {decls}
    {body}
    led_set({uses});
}}
void main() {{ f(); halt(); }}
"""
