"""Ablation: code placement (the paper's stated future work, §3).

Compares three placement strategies across the update cases:

* ``gcc``  — pack functions afresh (conventional);
* ``ucc``  — address-stable slots with NOP padding;
* ``auto`` — evaluate both, ship the smaller script (the default).

Also sweeps placement *headroom* (pre-provisioned slack per function at
first deployment) against a growth-heavy update.
"""

from repro.core import Compiler, CompilerOptions, plan_update
from repro.workloads import CASES, RA_CASE_IDS
from repro.config import UpdateConfig

from conftest import emit_table


def test_ablation_placement_strategy(benchmark, case_olds):
    rows = []
    totals = {"gcc": 0, "ucc": 0, "auto": 0}
    for cid in RA_CASE_IDS:
        case = CASES[cid]
        old = case_olds[cid]
        row = [cid]
        for cp in ("gcc", "ucc", None):
            result = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc", cp=cp))
            label = cp or "auto"
            row.append(result.code_script_bytes)
            totals[label] += result.code_script_bytes
        rows.append(row)
    emit_table(
        "ablation_placement",
        ["case", "cp=gcc bytes", "cp=ucc bytes", "cp=auto bytes"],
        rows,
    )
    # Auto must dominate both fixed strategies.
    assert totals["auto"] <= totals["gcc"]
    assert totals["auto"] <= totals["ucc"]

    case = CASES["9"]
    benchmark(plan_update, case_olds["9"], case.new_source, ra="ucc", da="ucc")


GROWTH_SRC = """
u8 g;
void sensor_task() { g = g + 1; }
void report_task() { g = g + 2; }
void main() { sensor_task(); report_task(); halt(); }
"""

GROWN_SRC = GROWTH_SRC.replace(
    "void sensor_task() { g = g + 1; }",
    "void sensor_task() { g = g + 1; g = g ^ 5; led_set(g); radio_send(g); }",
)


def test_ablation_placement_headroom():
    """Headroom pre-pays flash for future address stability."""
    rows = []
    for headroom in (0, 8, 16, 32):
        options = CompilerOptions(placement_headroom=headroom)
        old = Compiler(options).compile(GROWTH_SRC)
        result = plan_update(old, GROWN_SRC, config=UpdateConfig(ra="ucc", da="ucc", cp="ucc"))
        stable = len(result.new.placement.stable_functions(old.placement))
        rows.append(
            [
                headroom,
                old.size_words,
                result.code_script_bytes,
                f"{stable}/{len(result.new.placement.slots)}",
            ]
        )
    emit_table(
        "ablation_headroom",
        ["headroom (words)", "deployed words", "update bytes", "stable functions"],
        rows,
    )
    # With enough headroom every function keeps its address.
    assert rows[-1][3].startswith("3/")
