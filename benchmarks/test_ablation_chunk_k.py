"""Ablation: the chunking threshold K (paper §3.2).

K controls when short unchanged runs are merged into changed chunks.
Small K keeps more instructions "unchanged" (more tags to honour);
large K gives the allocator more freedom inside bigger changed chunks.
The paper fixes one K without studying it — DESIGN.md calls this out
as an ablation worth running.
"""

from repro.core import plan_update
from repro.workloads import CASES, RA_CASE_IDS

from conftest import emit_table

K_SWEEP = [0, 2, 4, 8, 16]


def test_ablation_chunk_threshold(benchmark, case_olds):
    rows = []
    for k in K_SWEEP:
        total_diff = 0
        total_script = 0
        for cid in RA_CASE_IDS:
            case = CASES[cid]
            result = plan_update(
                case_olds[cid], case.new_source, ra="ucc", da="ucc", k=k
            )
            total_diff += result.diff_inst
            total_script += result.script_bytes
        rows.append([k, total_diff, total_script])
    emit_table(
        "ablation_chunk_k",
        ["K", "total Diff_inst (cases 1-12)", "total script bytes"],
        rows,
    )
    # The metric must be defined for every K and not vary wildly: the
    # chunker affects preferences, not correctness.
    diffs = [row[1] for row in rows]
    assert max(diffs) - min(diffs) <= max(diffs) * 0.5 + 5

    case = CASES["6"]
    benchmark(
        plan_update, case_olds["6"], case.new_source, ra="ucc", da="ucc", k=4
    )
