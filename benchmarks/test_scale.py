"""Scale: compile and update-planning cost versus program size.

Complements the paper's §5.6 compilation-time study (Figures 13-15
cover the ILP solver; this covers the end-to-end pipeline): the paper
argues UCC's extra compile cost is acceptable because "sensor
applications are small programs" and the work runs sink-side where
energy is abundant.  We quantify both compile and plan time across the
shipped workloads and synthetic programs of growing size.
"""

import time

from repro.core import compile_source, plan_update
from repro.workloads import PROGRAMS
from repro.workloads.extra import EXTRA_PROGRAMS
from repro.config import UpdateConfig

from conftest import emit_table, synthetic_chunk_source


def test_scale_workloads(benchmark):
    rows = []
    for name, source in {**PROGRAMS, **EXTRA_PROGRAMS}.items():
        start = time.perf_counter()
        program = compile_source(source)
        compile_ms = (time.perf_counter() - start) * 1e3

        edited = source.replace("halt();", "led_set(1);\n    halt();", 1)
        start = time.perf_counter()
        result = plan_update(program, edited, config=UpdateConfig(ra="ucc", da="ucc"))
        plan_ms = (time.perf_counter() - start) * 1e3
        rows.append(
            [
                name,
                program.instruction_count,
                f"{compile_ms:.1f} ms",
                f"{plan_ms:.1f} ms",
                result.diff_inst,
            ]
        )
    emit_table(
        "scale_workloads",
        ["program", "instructions", "compile", "ucc plan", "Diff_inst"],
        rows,
    )
    benchmark(compile_source, PROGRAMS["CntToRfm"])


def test_scale_synthetic_growth():
    """Planning cost grows roughly linearly with program size (no
    super-linear blowups hiding in the matcher/chunker/differ)."""
    rows = []
    times = []
    for statements in (20, 40, 80, 160):
        source = synthetic_chunk_source(statements)
        program = compile_source(source)
        edited = source.replace("v0 = v1", "v0 = v2", 1)
        start = time.perf_counter()
        result = plan_update(program, edited, config=UpdateConfig(ra="ucc", da="ucc"))
        elapsed = time.perf_counter() - start
        times.append((program.instruction_count, elapsed))
        rows.append(
            [
                statements,
                program.instruction_count,
                f"{elapsed * 1e3:.1f} ms",
                result.diff_inst,
            ]
        )
    emit_table(
        "scale_synthetic",
        ["statements", "instructions", "ucc plan time", "Diff_inst"],
        rows,
    )
    (n1, t1), (n2, t2) = times[0], times[-1]
    # 8x the instructions must cost well under 8x^2 the time.
    assert t2 / t1 < (n2 / n1) ** 2


def test_scale_extended_cases():
    """The Figure-10 comparison repeated on the larger extra workloads
    (Surge / Oscilloscope, cases E1-E4)."""
    from repro.workloads.extra import EXTRA_CASES

    rows = []
    for case_id, (desc, old_src, new_src) in EXTRA_CASES.items():
        old = compile_source(old_src)
        baseline = plan_update(old, new_src, config=UpdateConfig(ra="gcc", da="gcc"))
        ucc = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc"))
        rows.append(
            [
                case_id,
                desc[:44],
                baseline.diff_inst,
                ucc.diff_inst,
                ucc.script_bytes,
            ]
        )
        assert ucc.diff_inst <= baseline.diff_inst
    emit_table(
        "scale_extended_cases",
        ["case", "update", "GCC diff", "UCC diff", "UCC script B"],
        rows,
    )
