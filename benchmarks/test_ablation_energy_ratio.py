"""Ablation: the transmission/execution energy ratio.

The paper's techniques are motivated by the Mica2's ~1000x bit-to-
instruction energy ratio (§1).  The conclusion section conjectures the
approach carries to other costly-communication environments (cellular
ad-hoc networks) — i.e. to other ratios.  This ablation sweeps the
ratio and reports

* the §2.1 breakeven execution count (linear in the ratio), and
* the planner's adaptive choice for a case where UCC's code is slower
  (case 8): cheap radios should flip the decision to the baseline
  sooner.
"""

from repro.core import UpdatePlanner
from repro.energy import EnergyModel
from repro.workloads import CASES

from conftest import emit_table

RATIOS = [1.0, 10.0, 100.0, 1000.0, 10000.0]


def test_ablation_energy_ratio(benchmark, case_olds):
    case = CASES["8"]
    old = case_olds["8"]
    cnt = 10.0
    rows = []
    choices = []
    for ratio in RATIOS:
        model = EnergyModel(bit_cost_ratio=ratio)
        planner = UpdatePlanner(old, energy=model, expected_runs=cnt)
        chosen = planner.plan_adaptive(case.new_source, cnt=cnt, energy=model)
        choice = "UCC" if chosen.ra_strategy.endswith("(ucc)") else "baseline"
        choices.append(choice)
        rows.append(
            [
                f"{ratio:g}x",
                f"{model.breakeven_executions(1, 1.0):,.0f}",
                chosen.diff_inst,
                choice,
            ]
        )
    emit_table(
        "ablation_energy_ratio",
        ["bit/instr ratio", "breakeven runs (+1 instr/-1 word)", "Diff_inst", "chosen"],
        rows,
    )
    # Expensive radios favour UCC; once the radio is cheap enough the
    # execution term wins and the planner prefers the baseline.
    assert choices[-1] == "UCC" or choices[0] == "baseline"
    assert "UCC" in choices  # the trade flips somewhere in the sweep

    model = EnergyModel(bit_cost_ratio=1000.0)
    planner = UpdatePlanner(old, energy=model)
    benchmark(planner.plan, case.new_source, ra="ucc", da="ucc")
