"""Figure 14: solver iterations as a function of (#variables x #IR
instructions), plus §5.6's preferred-register-tag observation:

* correct tags (and the warm-start incumbent they enable) reduce the
  number of iterations the solver needs;
* misleading (random) tags inflate iterations by 2-3x.
"""

from repro.ilp import solve
from repro.regalloc import build_chunk_model
from repro.regalloc.ilp_model import greedy_incumbent

from conftest import emit_table
from test_fig13_constraints import spec_for_size

SIZES = [4, 8, 12, 16, 24]


def solve_with_tags(spec, mode: str):
    """Solve under a tag mode: 'preferred' | 'none' | 'misleading'."""
    import random

    if mode == "none":
        spec_prefer = {}
    elif mode == "misleading":
        rng = random.Random(11)
        spec_prefer = {
            key: rng.choice(spec.candidates[key[0]])
            for key in spec.prefer
        }
    else:
        spec_prefer = dict(spec.prefer)
    original = spec.prefer
    spec.prefer = spec_prefer
    try:
        model = build_chunk_model(spec)
        incumbent = None
        if mode == "preferred":
            # The tags define a known-good assignment: warm-start on it
            # (this is how the "hint to the solver" manifests).
            assignment = {}
            for a in spec.variables():
                tag = None
                for (name, _), reg in sorted(spec_prefer.items()):
                    if name == a:
                        tag = reg
                        break
                assignment[a] = tag if tag is not None else spec.candidates[a][0]
            incumbent = greedy_incumbent(spec, assignment)
            if not model.is_feasible(incumbent):
                incumbent = None
        result = solve(model, backend="own", incumbent=incumbent)
        return model, result
    finally:
        spec.prefer = original


def test_fig14_iterations(benchmark):
    rows = []
    totals = {"preferred": 0, "none": 0, "misleading": 0}
    for n in SIZES:
        spec = spec_for_size(n)
        row = [n, (spec.hi - spec.lo) * len(spec.variables())]
        for mode in ("preferred", "none", "misleading"):
            model, result = solve_with_tags(spec, mode)
            assert result.status == "optimal", (n, mode)
            row.append(result.stats.simplex_iterations)
            totals[mode] += result.stats.simplex_iterations
        rows.append(row)
    emit_table(
        "fig14_iterations",
        ["statements", "vars x instrs", "iters (preferred tags)", "iters (no tags)", "iters (misleading tags)"],
        rows,
    )
    # Paper's shape: preferred tags need the fewest iterations overall;
    # misleading tags cost more than correct tags.
    assert totals["preferred"] <= totals["none"]
    assert totals["misleading"] > totals["preferred"]

    spec = spec_for_size(12)
    benchmark(lambda: solve_with_tags(spec, "preferred"))
