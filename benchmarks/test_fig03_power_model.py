"""Figure 3: the Mica2 power model table."""

from repro.energy import DEFAULT_ENERGY_MODEL, MICA2

from conftest import emit_table


def test_fig03_power_model(benchmark):
    rows = [[mode, current] for mode, current in MICA2.figure3_rows()]
    rows.append(["--derived--", ""])
    rows.append(["cycle energy", f"{MICA2.cycle_energy_j * 1e9:.2f} nJ"])
    rows.append(["tx bit energy", f"{MICA2.tx_bit_energy_j * 1e6:.2f} uJ"])
    rows.append(
        ["tx-bit / cycle ratio", f"{MICA2.tx_bit_per_cycle_ratio:.0f}x (paper uses 1000x incl. protocol overhead)"]
    )
    rows.append(
        ["compile-time E_trans/word", f"{DEFAULT_ENERGY_MODEL.e_trans:.0f} cycle-units"]
    )
    emit_table("fig03_power_model", ["mode", "current"], rows)
    benchmark(MICA2.figure3_rows)
