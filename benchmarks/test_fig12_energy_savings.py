"""Figure 12: energy savings per update as a function of execution
count ``Cnt`` (paper eqs. 18-19).

Reproduced shape:

* cases where UCC-RA and GCC-RA tie on code quality have savings
  independent of Cnt (pure transmission savings);
* cases where keeping the old decisions costs run-time cycles (extra
  saved registers, inserted movs) lose savings as Cnt grows;
* the planner's adaptive fallback (paper §5.5: *"UCC-RA falls back to
  GCC-RA when test case 12 is executed more than 10^7 times"*) keeps
  the savings non-negative at every Cnt.
"""

from repro.core import UpdatePlanner, measure_cycles, plan_update
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.workloads import CASES
from repro.config import UpdateConfig

from conftest import emit_table

CNT_SWEEP = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]
SHOWN_CASES = ["1", "4", "6", "8", "12"]


def test_fig12_energy_savings(benchmark, case_olds):
    model = DEFAULT_ENERGY_MODEL
    rows = []
    fallbacks = 0
    for cid in SHOWN_CASES:
        case = CASES[cid]
        old = case_olds[cid]
        planner = UpdatePlanner(old)
        row = [cid]
        for cnt in CNT_SWEEP:
            baseline = measure_cycles(
                planner.plan(case.new_source, config=UpdateConfig(ra="gcc", da="ucc"))
            )
            adaptive = planner.plan_adaptive(case.new_source, cnt=cnt)
            savings = baseline.diff_energy(cnt, model) - adaptive.diff_energy(
                cnt, model
            )
            fallbacks += adaptive.ra_strategy.endswith("(gcc)")
            row.append(f"{savings / 1000.0:.1f}k")
            assert savings >= -1e-6, (cid, cnt, savings)
        rows.append(row)
    emit_table(
        "fig12_energy_savings",
        ["case"] + [f"Cnt={c:g}" for c in CNT_SWEEP],
        rows,
    )

    case = CASES["4"]
    benchmark(
        plan_update, case_olds["4"], case.new_source, ra="ucc", da="ucc"
    )


def test_fig12_cnt_gates_move_insertion():
    """The Cnt-dependence itself, isolated: a Figure 4(c) scenario where
    the preferred register is blocked at the definition but free over a
    long unchanged tail.  At small Cnt the planner inserts the mov (one
    extra executed instruction buys many untransmitted words); at huge
    Cnt the energy model rejects it — the §5.5 fallback in miniature."""
    from repro.core import compile_source

    # Paper Figure 4: a and b had disjoint live ranges sharing one
    # register; the update extends a's range across b's definition, so
    # b's preferred register is occupied at its def but frees before a
    # long unchanged tail of b-uses.
    tail = "\n".join("    g = g ^ b;" for _ in range(8))
    old_src = (
        f"u8 g;\nvoid f(u8 a) {{\n    g = g + a;\n    u8 b = g & 3;\n{tail}\n}}\n"
        "void main() { f(1); halt(); }"
    )
    new_src = (
        "u8 g;\nvoid f(u8 a) {\n    g = g + a;\n    u8 b = g & 3;\n"
        "    g = g + a;\n" + tail + "\n}\nvoid main() { f(1); halt(); }"
    )
    old = compile_source(old_src)
    small = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc", expected_runs=1.0))
    huge = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc", expected_runs=1e9))
    rows = [
        ["Cnt=1", small.moves_inserted(), small.diff_inst],
        ["Cnt=1e9", huge.moves_inserted(), huge.diff_inst],
    ]
    emit_table(
        "fig12_move_gating", ["Cnt", "movs inserted", "Diff_inst"], rows
    )
    assert huge.moves_inserted() <= small.moves_inserted()
