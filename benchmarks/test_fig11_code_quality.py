"""Figure 11: code-quality comparison — Diff_cycle per single run.

Both strategies' updated binaries are simulated for one run under
identical device configurations; Diff_cycle is the per-run cycle change
relative to the old binary.  The paper's observation: UCC-RA and GCC-RA
almost always tie (no extra spills), and where UCC-RA inserts movs the
slowdown is a negligible fraction of the run.
"""

from repro.core import measure_cycles, plan_update
from repro.workloads import CASES, RA_CASE_IDS
from repro.config import UpdateConfig

from conftest import emit_table


def test_fig11_code_quality(benchmark, case_olds):
    rows = []
    for cid in RA_CASE_IDS:
        case = CASES[cid]
        old = case_olds[cid]
        gcc = measure_cycles(plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="ucc")))
        ucc = measure_cycles(plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc")))
        ucc_overhead = ucc.new_cycles - gcc.new_cycles
        rows.append(
            [
                cid,
                gcc.old_cycles,
                gcc.diff_cycle,
                ucc.diff_cycle,
                ucc_overhead,
                f"{100.0 * ucc_overhead / max(1, gcc.new_cycles):.3f}%",
            ]
        )
        # Paper: the slowdown is negligible in nearly all cases (their
        # case 12 pays three mov instructions; our case 8 pays one extra
        # callee-saved push/pop pair per call, ~1.9% of a run — and the
        # adaptive planner undoes even that at large Cnt, see Fig. 12).
        assert abs(ucc_overhead) <= max(10, 0.025 * gcc.new_cycles), cid
    emit_table(
        "fig11_code_quality",
        ["case", "old cycles", "GCC diff_cycle", "UCC diff_cycle", "UCC-GCC cycles", "overhead"],
        rows,
    )

    case = CASES["6"]
    result = plan_update(case_olds["6"], case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
    benchmark(measure_cycles, result)
