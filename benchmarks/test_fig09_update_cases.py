"""Figure 9 (and Figure 16's D-cases): the update test cases."""

from repro.core import compile_source
from repro.workloads import CASES

from conftest import emit_table


def test_fig09_update_cases(benchmark):
    rows = [
        [cid, case.level, case.program, case.description]
        for cid, case in CASES.items()
    ]
    emit_table("fig09_update_cases", ["case", "level", "program", "update details"], rows)
    benchmark(compile_source, CASES["1"].old_source)
