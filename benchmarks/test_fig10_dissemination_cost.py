"""Figure 10: the code dissemination cost (Diff_inst), UCC-RA vs GCC-RA.

The paper compares UCC-RA against the *best possible* binary match for
GCC-RA (our differ produces the optimal alignment for both).  To
decouple register allocation from data layout, both strategies run with
the update-conscious data layout (the paper likewise reports only
directly-affected functions).

Also reproduces the §5.3 case-13 discussion: reused instructions under
each strategy for the application-replacement update.
"""

from repro.core import plan_update
from repro.workloads import CASES, RA_CASE_IDS
from repro.config import UpdateConfig

from conftest import emit_table


def test_fig10_dissemination_cost(benchmark, case_olds):
    rows = []
    wins = 0
    for cid in RA_CASE_IDS:
        case = CASES[cid]
        old = case_olds[cid]
        gcc = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="ucc"))
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        rows.append(
            [
                cid,
                case.level,
                gcc.diff_inst,
                ucc.diff_inst,
                gcc.diff_inst - ucc.diff_inst,
                ucc.script_bytes,
                ucc.packets.packet_count,
            ]
        )
        wins += ucc.diff_inst <= gcc.diff_inst
    emit_table(
        "fig10_dissemination_cost",
        ["case", "level", "GCC-RA diff_inst", "UCC-RA diff_inst", "saved", "UCC script B", "packets"],
        rows,
    )
    assert wins == len(RA_CASE_IDS), "UCC-RA must never lose on Diff_inst"

    case = CASES["6"]
    benchmark(plan_update, case_olds["6"], case.new_source, ra="ucc", da="ucc")


def test_fig10_case13_reuse(case_olds):
    """§5.3: the large change reuses structurally-similar code; UCC-RA
    reuses more than GCC-RA (paper: 422 + 15% for the TinyOS images)."""
    case = CASES["13"]
    old = case_olds["13"]
    gcc = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="ucc"))
    ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
    rows = [
        ["old instructions (CntToLeds)", gcc.diff.old_instructions],
        ["new instructions (CntToRfm)", gcc.diff.new_instructions],
        ["GCC-RA reused", gcc.reused_instructions],
        ["UCC-RA reused", ucc.reused_instructions],
        ["extra reuse (UCC-GCC)", ucc.reused_instructions - gcc.reused_instructions],
        ["GCC-RA transmitted", gcc.diff_inst],
        ["UCC-RA transmitted", ucc.diff_inst],
    ]
    emit_table("fig10_case13_reuse", ["quantity", "value"], rows)
    assert ucc.reused_instructions >= gcc.reused_instructions
