#!/usr/bin/env python3
"""The 100k-node Trickle acceptance run (docs/SIMULATOR.md).

Not a pytest benchmark (no ``test_`` prefix on purpose — a 100k-node
fleet takes a couple of minutes of wall time): run it directly from
the repository root when re-validating the scale numbers quoted in
docs/SIMULATOR.md and EXPERIMENTS.md.

    PYTHONPATH=src python benchmarks/scale_100k_trickle.py

Acceptance gates checked here:

* the fleet converges within the 3600 s simulated budget and under
  5 minutes of wall time;
* every node's ledger prices idle-listening (the LPL_1 duty cycle);
* the report digest is printed so two hosts can diff their runs.
"""

import sys
import time

from repro.net.topology import grid
from repro.net.trickle import run_trickle

NODES_W, NODES_H = 400, 250
LOSS = 0.05
SEED = 4
BLOB = bytes(range(256)) * 2 + bytes(88)  # 600 B -> 28 packets
WALL_BUDGET_S = 300.0


def main() -> int:
    topology = grid(NODES_W, NODES_H)
    print(f"fleet: {topology.node_count} nodes, loss {LOSS:.0%}, "
          f"{len(BLOB)} B blob")
    start = time.perf_counter()
    report = run_trickle(
        topology, BLOB, loss=LOSS, seed=SEED, max_time=3600.0
    )
    wall_s = time.perf_counter() - start
    print(report.render())
    print(f"wall     : {wall_s:.1f}s ({report.events} events, "
          f"{report.events / wall_s:,.0f} events/s)")
    print(f"digest   : {report.digest()}")

    failures = []
    if not report.converged:
        failures.append(f"fleet did not converge ({report.outcome})")
    if wall_s > WALL_BUDGET_S:
        failures.append(f"wall time {wall_s:.1f}s over the "
                        f"{WALL_BUDGET_S:.0f}s budget")
    sink_ledger = report.ledgers[0]
    if sink_ledger.idle_j <= 0.0 and report.total_idle_j <= 0.0:
        failures.append("no idle-listening energy priced anywhere")
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
