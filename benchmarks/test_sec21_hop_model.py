"""§2.1's multi-hop example: data-processing vs data-transmission code.

"A data report may jump 70 or more hops before reaching the sink.  An
interesting event may invoke the data processing code in the
originating sensor once but the data transmission code 70 times along
the path" — so processing code should be updated for *similarity* and
transmission code for *speed*.

We quantify that: for a 71-node line, compare two update policies for a
transmission-path routine that the compiler could either keep similar
(small script, +k cycles/invocation) or regenerate for speed (bigger
script, no slowdown).
"""

from repro.diff import EditScript, packetize
from repro.energy import MICA2
from repro.net import ReportModel, disseminate, line

from conftest import emit_table


def script_of(nbytes: int) -> EditScript:
    script = EditScript()
    for _ in range(nbytes):
        script.remove(1)
    return script


def test_sec21_hop_weighting(benchmark):
    topo = line(71)
    model = ReportModel(topo)
    weight = model.processing_vs_transmission_weight(70)
    assert weight == 70

    # Policy A (similarity-first): 20-byte script, +5 cycles/invocation.
    # Policy B (speed-first): 120-byte script, no slowdown.
    reports_lifetime = 50_000  # reports flowing through a relay node
    rows = []
    for name, script_bytes, extra_cycles in (
        ("similarity-first", 20, 5),
        ("speed-first", 120, 0),
    ):
        dissemination = disseminate(topo, packetize(script_of(script_bytes)))
        update_j = dissemination.total_energy_j
        # Per-node figure excludes the mains-powered sink: the hottest
        # battery node is what bounds deployment lifetime.
        hottest_j = dissemination.max_node_energy_j(exclude_sink=True)
        runtime_j = (
            reports_lifetime * extra_cycles * MICA2.cycle_energy_j * topo.node_count
        )
        rows.append(
            [
                name,
                script_bytes,
                extra_cycles,
                f"{update_j * 1e3:.2f} mJ",
                f"{hottest_j * 1e6:.0f} uJ",
                f"{runtime_j * 1e3:.2f} mJ",
                f"{(update_j + runtime_j) * 1e3:.2f} mJ",
            ]
        )
    emit_table(
        "sec21_hop_model",
        ["policy", "script B", "cycles/report", "update energy",
         "hottest node", "runtime energy", "total"],
        rows,
    )

    # The asymmetry the paper describes: for transmission-path code that
    # runs very frequently, the runtime term dominates — verify the
    # crossover exists by scaling the report count.
    sim_cheap = disseminate(topo, packetize(script_of(20))).total_energy_j
    sim_fast = disseminate(topo, packetize(script_of(120))).total_energy_j
    extra_per_report = 5 * MICA2.cycle_energy_j * topo.node_count
    crossover_reports = (sim_fast - sim_cheap) / extra_per_report
    assert crossover_reports > 0  # beyond this, speed-first wins

    benchmark(disseminate, topo, packetize(script_of(60)))
