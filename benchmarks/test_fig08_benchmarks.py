"""Figure 8: the benchmark programs (compiled sizes and behaviour)."""

from repro.core import compile_source
from repro.sim import run_image
from repro.workloads import PROGRAMS

from conftest import emit_table

DETAILS = {
    "Blink": "1Hz timer toggles the red LED on each fire",
    "CntToLeds": "4Hz counter, lowest three bits on the LEDs",
    "CntToRfm": "counter sent in an IntMsg AM packet per increment",
    "CntToLedsAndRfm": "combines CntToRfm and CntToLeds",
    "AES": "AES-128 block encryption (Crypto++ benchmark stand-in)",
}


def test_fig08_benchmark_programs(benchmark):
    rows = []
    for name, source in PROGRAMS.items():
        program = compile_source(source)
        run = run_image(program.image, max_cycles=10_000_000)
        rows.append(
            [
                name,
                program.instruction_count,
                program.size_words,
                run.cycles,
                DETAILS[name],
            ]
        )
    emit_table(
        "fig08_benchmarks",
        ["program", "instructions", "words", "cycles/run", "details"],
        rows,
    )
    benchmark(compile_source, PROGRAMS["CntToLeds"])
