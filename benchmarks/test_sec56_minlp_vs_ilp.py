"""§5.6: the linear (theta = 3/4) approximation vs the exact MINLP.

The paper: *"We observed the same allocation decisions for all the test
cases with or without the approximation.  The only difference is that
solving a non-linear problem is orders of magnitude slower."*

We verify decision equality on real changed chunks (via the true
non-linear energy of the ILP's solution) and record the speed gap
between one ILP solve and the exhaustive non-linear reference.
"""

import time

import pytest

from repro.core import Compiler, CompilerOptions, compile_source
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.ilp import solve
from repro.ir import analyze, static_frequencies
from repro.regalloc import (
    allocate_ucc_greedy,
    build_chunk_model,
    nonlinear_objective,
    solve_chunk_minlp,
)
from repro.regalloc.chunks import changed_indices
from repro.regalloc.ilp_ra import build_spec_for_chunk
from repro.workloads import CASES

from conftest import emit_table

CHUNK_SOURCES = [("6", "tosh_run_next_task"), ("11", "timer_handle_fire")]


def chunk_spec(case_id, fname, candidates=3):
    case = CASES[case_id]
    old = compile_source(case.old_source)
    module = Compiler(CompilerOptions()).front_and_middle(case.new_source)
    fn = module.functions[fname]
    record, report = allocate_ucc_greedy(
        fn, old.module.functions[fname], old.records[fname]
    )
    info = analyze(fn)
    freqs = static_frequencies(fn)
    changed = changed_indices(fn, report.match)
    chunk = next((c for c in report.chunks if c.changed), report.chunks[0])
    return build_spec_for_chunk(
        fn, info, record, report, chunk.start, chunk.end, changed, freqs,
        DEFAULT_ENERGY_MODEL, 1000.0, candidates,
    )


def test_sec56_minlp_vs_ilp(benchmark):
    rows = []
    for case_id, fname in CHUNK_SOURCES:
        spec = chunk_spec(case_id, fname)
        model = build_chunk_model(spec)

        start = time.perf_counter()
        ilp = solve(model, backend="scipy")
        ilp_time = time.perf_counter() - start
        assert ilp.status == "optimal"

        minlp = solve_chunk_minlp(spec)
        ilp_energy = nonlinear_objective(spec, ilp.values)

        rows.append(
            [
                f"case {case_id}:{fname}",
                f"{ilp_energy:.0f}",
                f"{minlp.objective:.0f}",
                "same" if ilp_energy == pytest.approx(minlp.objective) else "DIFFER",
                f"{ilp_time * 1e3:.1f} ms",
                f"{minlp.wall_time * 1e3:.1f} ms ({minlp.evaluated} assignments)",
            ]
        )
        # The approximation must not change the decisions' true energy.
        assert ilp_energy == pytest.approx(minlp.objective, rel=1e-9)
    emit_table(
        "sec56_minlp_vs_ilp",
        ["chunk", "ILP energy (true obj)", "MINLP energy", "decisions", "ILP time", "MINLP time"],
        rows,
    )

    spec = chunk_spec(*CHUNK_SOURCES[0])
    benchmark(solve_chunk_minlp, spec)
