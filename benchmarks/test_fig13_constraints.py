"""Figure 13: ILP constraint count as a function of IR instruction
count — the paper observes near-linear growth."""

import numpy as np

from repro.core import Compiler, CompilerOptions, compile_source
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.ir import analyze, static_frequencies
from repro.regalloc import allocate_ucc_greedy, build_chunk_model
from repro.regalloc.chunks import changed_indices
from repro.regalloc.ilp_ra import build_spec_for_chunk

from conftest import emit_table, synthetic_chunk_source

SIZES = [4, 8, 12, 16, 24, 32, 48, 64]


def spec_for_size(n_stmts, candidates=3):
    source = synthetic_chunk_source(n_stmts)
    old = compile_source(source)
    module = Compiler(CompilerOptions()).front_and_middle(source)
    fn = module.functions["f"]
    record, report = allocate_ucc_greedy(fn, old.module.functions["f"], old.records["f"])
    info = analyze(fn)
    freqs = static_frequencies(fn)
    changed = changed_indices(fn, report.match)
    return build_spec_for_chunk(
        fn, info, record, report, 0, len(fn.instrs), changed, freqs,
        DEFAULT_ENERGY_MODEL, 1000.0, candidates,
    )


def test_fig13_constraints_vs_instructions(benchmark):
    rows = []
    points = []
    for n in SIZES:
        spec = spec_for_size(n)
        model = build_chunk_model(spec)
        instrs = spec.hi - spec.lo
        rows.append([n, instrs, model.num_variables, model.num_constraints])
        points.append((instrs, model.num_constraints))
    emit_table(
        "fig13_constraints",
        ["statements", "IR instructions", "ILP variables", "ILP constraints"],
        rows,
    )

    # Near-linear growth: a linear fit must explain the curve well.
    xs = np.array([p[0] for p in points], dtype=float)
    ys = np.array([p[1] for p in points], dtype=float)
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r_squared = 1 - ss_res / ss_tot
    assert r_squared > 0.98, f"constraint growth not linear (R^2={r_squared:.3f})"
    assert slope > 0

    spec = spec_for_size(16)
    benchmark(build_chunk_model, spec)
