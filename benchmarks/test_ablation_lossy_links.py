"""Ablation: link loss amplifies UCC's transmission savings.

The paper evaluates on lossless dissemination; real deployments lose
packets and repair with retransmissions (Deluge/MNP, the paper's refs
[11]/[17]).  Every lost packet is paid again, so the joule value of a
*smaller* update script grows with the loss rate — UCC's advantage is a
lower bound at loss 0.
"""

from repro.core import plan_update
from repro.net import disseminate_lossy, grid
from repro.workloads import CASES
from repro.config import UpdateConfig

from conftest import emit_table

LOSS_SWEEP = [0.0, 0.1, 0.2, 0.35]


def test_ablation_lossy_links(benchmark, case_olds):
    case = CASES["D1"]
    old = case_olds["D1"]
    topo = grid(5, 5)
    baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
    ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))

    rows = []
    savings = []
    hottest_pairs = []
    for loss in LOSS_SWEEP:
        base = disseminate_lossy(topo, baseline.packets, loss=loss, seed=4)
        ucc_run = disseminate_lossy(topo, ucc.packets, loss=loss, seed=4)
        base_j = base.total_energy_j
        ucc_j = ucc_run.total_energy_j
        saved = base_j - ucc_j
        savings.append(saved)
        # Lifetime is limited by the hottest battery-powered node, so
        # the per-node column excludes the mains-powered sink.
        base_hot = base.max_node_energy_j(exclude_sink=True)
        ucc_hot = ucc_run.max_node_energy_j(exclude_sink=True)
        hottest_pairs.append((base_hot, ucc_hot))
        rows.append(
            [
                f"{loss:.0%}",
                f"{base_j * 1e3:.2f} mJ",
                f"{ucc_j * 1e3:.2f} mJ",
                f"{saved * 1e3:.2f} mJ",
                f"{100 * saved / base_j:.0f}%",
                f"{base_hot * 1e6:.0f} uJ",
                f"{ucc_hot * 1e6:.0f} uJ",
            ]
        )
    emit_table(
        "ablation_lossy_links",
        ["link loss", "baseline energy", "UCC energy", "saved", "saved %",
         "hottest node (gcc)", "hottest node (ucc)"],
        rows,
    )
    assert all(s > 0 for s in savings)
    # Absolute savings grow with the loss rate.
    assert savings[-1] > savings[0]
    # The smaller script also relieves the lifetime-limiting node.
    assert all(ucc_hot <= base_hot for base_hot, ucc_hot in hottest_pairs)

    benchmark(disseminate_lossy, topo, ucc.packets, loss=0.2, seed=4)
