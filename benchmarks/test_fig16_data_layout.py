"""Figure 16 / §5.7: the update-conscious data allocation cases.

D1 — inserting globals: GCC-DA's name-hash layout cascades offsets and
re-encodes a large fraction of the instructions; UCC-DA keeps survivors
in place.  D2 — shuffling declaration order and renaming variables:
invisible under UCC-DA (renames land in the deleted slots), while the
rename perturbs GCC-DA's hash order.
"""

from repro.core import plan_update
from repro.workloads import CASES, DATA_CASE_IDS
from repro.config import UpdateConfig

from conftest import emit_table


def test_fig16_data_layout(benchmark, case_olds):
    rows = []
    for cid in DATA_CASE_IDS:
        case = CASES[cid]
        old = case_olds[cid]
        gcc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="gcc"))
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        moved_gcc = len(gcc.new.layout.moved_objects(old.layout))
        moved_ucc = len(ucc.new.layout.moved_objects(old.layout))
        total = ucc.diff.new_instructions
        rows.append(
            [
                cid,
                case.description[:46],
                gcc.diff_inst,
                f"{100.0 * gcc.diff_inst / total:.1f}%",
                ucc.diff_inst,
                moved_gcc,
                moved_ucc,
            ]
        )
        assert ucc.diff_inst <= gcc.diff_inst
        assert moved_ucc <= moved_gcc
    emit_table(
        "fig16_data_layout",
        ["case", "update", "GCC-DA diff", "of binary", "UCC-DA diff", "GCC-DA moved", "UCC-DA moved"],
        rows,
    )

    # D2's headline: renames are (nearly) free under UCC-DA.
    case = CASES["D2"]
    ucc = plan_update(case_olds["D2"], case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
    assert ucc.diff_inst <= 2

    benchmark(plan_update, case_olds["D1"], CASES["D1"].new_source, ra="ucc", da="ucc")


def test_fig16_space_threshold_tradeoff(case_olds):
    """The SpaceT knob (eq. 16): a zero threshold reclaims all waste,
    a large threshold avoids relocations (and their re-encodings)."""
    case = CASES["D2"]
    old = case_olds["D2"]
    tight = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc", space_threshold=0))
    loose = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc", space_threshold=64))
    rows = [
        ["SpaceT=0", tight.diff_inst, tight.new.layout.wasted_bytes],
        ["SpaceT=64", loose.diff_inst, loose.new.layout.wasted_bytes],
    ]
    emit_table(
        "fig16_space_threshold", ["threshold", "diff_inst", "wasted bytes"], rows
    )
    assert tight.new.layout.wasted_bytes <= loose.new.layout.wasted_bytes
