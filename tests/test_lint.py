"""The repro.lint suite: golden fixtures, suppressions, baseline, outputs.

The fixture tree under ``tests/fixtures/lint`` has a ``bad/`` half that
must trip every rule and a ``good/`` half that must stay clean — so a
rule that stops firing *and* a rule that starts over-firing both break
this file.  The suite is also required to be self-clean: ``repro lint
src tools`` from the repo root exits 0 against the committed baseline.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.lint import Baseline, all_rules, get_rule, lint_paths
from repro.lint.baseline import (
    BaselineEntry,
    BaselineError,
    fingerprint_findings,
)
from repro.lint.output import render_human, render_json, render_sarif
from repro.lint.suppress import SUP_RULE_ID

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

ALL_RULE_IDS = ("DIGEST-TAINT", "ERR001", "FROZEN001", "OBS001", "POOL001", "RNG001")


def run_fixture(half: str, **kwargs):
    return lint_paths([FIXTURES / half], root=FIXTURES, **kwargs)


@pytest.fixture(scope="module")
def bad_result():
    return run_fixture("bad")


@pytest.fixture(scope="module")
def good_result():
    return run_fixture("good")


class TestRegistry:
    def test_all_six_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        for rule_id in ALL_RULE_IDS:
            assert rule_id in ids

    def test_every_rule_has_rationale_and_name(self):
        for rule in all_rules():
            assert rule.rationale, rule.rule_id
            assert rule.name, rule.rule_id
            assert rule.severity in ("error", "warning")

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")


class TestFixtures:
    """bad/ must trip every rule; good/ must trip none."""

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_bad_fixtures_trip_rule(self, bad_result, rule_id):
        fired = {finding.rule for finding in bad_result.active}
        assert rule_id in fired

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_good_fixtures_stay_clean(self, good_result, rule_id):
        fired = [f for f in good_result.active if f.rule == rule_id]
        assert fired == []

    def test_err001_fires_once_per_bare_raise(self, bad_result):
        err = [f for f in bad_result.active if f.rule == "ERR001"]
        assert len(err) == 3  # ValueError, RuntimeError, AssertionError
        assert {f.path for f in err} == {"bad/repro/net/err001_bad.py"}

    def test_err001_scoped_to_net_and_core(self):
        # The same bare raises outside repro/net//repro/core are legal:
        # rng001_bad.py lives at the fixture root and has no ERR001.
        result = run_fixture("bad")
        err_paths = {f.path for f in result.active if f.rule == "ERR001"}
        assert all("repro/net/" in p or "repro/core/" in p for p in err_paths)

    def test_rng001_distinguishes_failure_modes(self, bad_result):
        messages = sorted(
            f.message for f in bad_result.active
            if f.rule == "RNG001" and f.path == "bad/rng001_bad.py"
        )
        assert len(messages) == 3
        assert any("ambient entropy" in m for m in messages)
        assert any("exactly one" in m for m in messages)
        assert any("not a derived string" in m for m in messages)

    def test_pool001_flags_lambda_closure_and_bound_method(self, bad_result):
        pool = [f for f in bad_result.active if f.rule == "POOL001"]
        kinds = sorted(f.message.split(" ")[0] for f in pool)
        assert kinds == ["bound", "closure", "lambda"]

    def test_obs001_names_the_missing_span(self, bad_result):
        obs = [f for f in bad_result.active if f.rule == "OBS001"]
        assert len(obs) == 1
        assert "'compile.full'" in obs[0].message
        assert obs[0].path == "bad/repro/core/compiler.py"

    def test_frozen001_flags_both_mutation_shapes(self, bad_result):
        frozen = [f for f in bad_result.active if f.rule == "FROZEN001"]
        assert len(frozen) == 2
        assert any("self.budget" in f.message for f in frozen)
        assert any("object.__setattr__" in f.message for f in frozen)

    def test_only_rules_filter(self):
        result = run_fixture("bad", only_rules=["RNG001"])
        fired = {f.rule for f in result.active}
        # SUP001 is meta (part of the suppression machinery), never filtered.
        assert fired <= {"RNG001", SUP_RULE_ID}
        assert "RNG001" in fired


class TestDigestTaint:
    """Each flow kind in the bad fixture is reported with its reason."""

    @pytest.mark.parametrize(
        "needle",
        [
            "wall clock (time.time())",
            "unsorted set iteration",
            "unsorted dict .keys() iteration",
            "os.environ read",
            "json.dumps(default=str)",
            "interpreter identity (id())",
        ],
    )
    def test_flow_kind_reported(self, bad_result, needle):
        taint = [f for f in bad_result.active if f.rule == "DIGEST-TAINT"]
        assert any(needle in f.message for f in taint), needle

    def test_interprocedural_flow_names_the_helper(self, bad_result):
        taint = [f for f in bad_result.active if f.rule == "DIGEST-TAINT"]
        helper = [f for f in taint if "_digest(blob=...)" in f.message]
        # os.environ, default=str, and id() all reach sha256 via _digest.
        assert len(helper) == 3

    def test_sorted_cleanses_order_taint_only(self, good_result):
        # good/digest_taint_good.py sorts its sets and dict views, times
        # around (not inside) the digest, and uses a canonical encoder:
        # all clean.
        taint = [f for f in good_result.active if f.rule == "DIGEST-TAINT"]
        assert taint == []


class TestSuppressions:
    def test_unjustified_suppression_does_not_suppress(self, bad_result):
        sup_path = "bad/sup001_bad.py"
        rules_there = sorted(
            f.rule for f in bad_result.active if f.path == sup_path
        )
        # The RNG001 finding survives AND the naked suppression is flagged.
        assert rules_there == ["RNG001", SUP_RULE_ID]

    def test_justified_suppression_silences_rule(self, good_result):
        suppressed = [
            f for f in good_result.suppressed
            if f.path == "good/sup001_good.py" and f.rule == "RNG001"
        ]
        # Same-line and standalone-comment forms both apply.
        assert len(suppressed) == 2
        active_there = [
            f for f in good_result.active if f.path == "good/sup001_good.py"
        ]
        assert active_there == []


class TestBaseline:
    def test_round_trip(self, tmp_path):
        first = run_fixture("bad")
        assert first.active
        baseline = Baseline.from_findings(
            first.all_raw_findings(), justification="fixture grandfathering"
        )
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        assert set(reloaded.entries) == set(baseline.entries)

        second = run_fixture("bad", baseline=reloaded)
        assert second.active == []
        assert len(second.grandfathered) == len(first.active)
        assert second.stale_entries == []
        assert second.exit_code == 0

    def test_stale_entries_surface(self):
        ghost = BaselineEntry(
            fingerprint="deadbeefdeadbeef",
            rule="RNG001",
            path="bad/deleted_long_ago.py",
            justification="the code this covered is gone",
        )
        baseline = Baseline(entries={ghost.fingerprint: ghost})
        result = run_fixture("bad", baseline=baseline)
        assert ghost in result.stale_entries
        assert "stale baseline entry" in render_human(result)

    def test_missing_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "fingerprint": "abcd1234abcd1234",
                "rule": "RNG001",
                "path": "x.py",
                "justification": "   ",
            }],
        }))
        with pytest.raises(BaselineError, match="no justification"):
            Baseline.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError, match="version"):
            Baseline.load(path)

    def test_fingerprints_survive_line_drift(self, tmp_path):
        # The same finding, shifted down 5 lines, keeps its fingerprint:
        # entries key on content, not position.
        src = (FIXTURES / "bad" / "rng001_bad.py").read_text()
        (tmp_path / "a.py").write_text(src)
        (tmp_path / "b.py").write_text("\n" * 5 + src)

        res_a = lint_paths([tmp_path / "a.py"], root=tmp_path)
        res_b = lint_paths([tmp_path / "b.py"], root=tmp_path)

        # Recompute with the path component neutralised.
        fps_a = fingerprint_findings(
            [replace(f, path="same.py") for f in res_a.active]
        )
        fps_b = fingerprint_findings(
            [replace(f, path="same.py") for f in res_b.active]
        )
        assert fps_a == fps_b
        assert [f.line for f in res_a.active] != [f.line for f in res_b.active]


class TestOutputs:
    def test_json_output_parses_and_counts(self, bad_result):
        document = json.loads(render_json(bad_result))
        assert document["tool"] == "repro.lint"
        assert document["exit_code"] == 1
        assert len(document["findings"]) == len(bad_result.active)

    def test_sarif_shape(self, bad_result):
        sarif = json.loads(render_sarif(bad_result))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        for rule_id in ALL_RULE_IDS:
            assert rule_id in rule_ids
        assert len(run["results"]) >= len(bad_result.active)
        first = run["results"][0]
        location = first["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1

    def test_sarif_grandfathered_become_suppressions(self):
        first = run_fixture("bad")
        baseline = Baseline.from_findings(
            first.all_raw_findings(), justification="fixture grandfathering"
        )
        second = run_fixture("bad", baseline=baseline)
        sarif = json.loads(render_sarif(second))
        results = sarif["runs"][0]["results"]
        assert results and all("suppressions" in r for r in results)

    def test_human_output_mentions_counts(self, bad_result):
        text = render_human(bad_result)
        assert "active" in text and "checked" in text


class TestSelfCleanliness:
    """The acceptance bar: the repo lints clean against its baseline."""

    def test_src_and_tools_lint_clean(self):
        baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
        result = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tools"],
            root=REPO_ROOT,
            baseline=baseline,
        )
        assert result.parse_errors == []
        assert result.active == [], "\n".join(
            f.render() for f in result.active
        )
        assert result.exit_code == 0

    def test_baseline_is_small_and_justified(self):
        document = json.loads(
            (REPO_ROOT / "tools" / "lint_baseline.json").read_text()
        )
        entries = document["entries"]
        assert len(entries) <= 10
        for entry in entries:
            assert len(entry["justification"].strip()) > 20, entry

    def test_no_stale_baseline_entries(self):
        baseline = Baseline.load(REPO_ROOT / "tools" / "lint_baseline.json")
        result = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tools"],
            root=REPO_ROOT,
            baseline=baseline,
        )
        assert result.stale_entries == []


class TestCLI:
    def test_repro_lint_subcommand(self, capsys):
        from repro.cli import main

        code = main([
            "lint", str(FIXTURES / "good"),
            "--root", str(FIXTURES),
            "--no-baseline",
        ])
        assert code == 0
        assert "active" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_bad_fixtures_fail_via_cli(self, capsys):
        from repro.cli import main

        code = main([
            "lint", str(FIXTURES / "bad"),
            "--root", str(FIXTURES),
            "--no-baseline", "--format", "json",
        ])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["findings"]
