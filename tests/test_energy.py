"""Energy-model tests (paper Figure 3, §2.1, eqs. 18-19)."""

import math

import pytest

from repro.energy import DEFAULT_ENERGY_MODEL, EnergyModel, MICA2, WORD_BITS


class TestPowerModel:
    def test_figure3_values(self):
        rows = dict(MICA2.figure3_rows())
        assert rows["CPU active"] == "8.0mA"
        assert rows["Tx(+10dB)"] == "21.5mA"
        assert rows["Radio Rx"] == "7 mA"
        assert rows["EEPROM write"] == "18.4mA"

    def test_currents_match_table(self):
        assert MICA2.cpu_active_a == pytest.approx(8.0e-3)
        assert MICA2.radio_tx_a == pytest.approx(21.5e-3)
        assert MICA2.cpu_standby_a == pytest.approx(216e-6)

    def test_tx_bit_vs_cycle_ratio_order_of_magnitude(self):
        """Figure 3's currents imply a tx-bit / cpu-cycle energy ratio of
        a few hundred; the paper's headline 1000x figure additionally
        counts protocol overheads (buffering, collisions)."""
        ratio = MICA2.tx_bit_per_cycle_ratio
        assert 100 < ratio < 2000

    def test_battery_energy_positive(self):
        assert MICA2.battery_j() > 20_000  # 2700 mAh at 3 V ~ 29 kJ

    def test_rx_cheaper_than_tx(self):
        assert MICA2.rx_bit_energy_j < MICA2.tx_bit_energy_j


class TestEnergyModel:
    def test_e_trans_is_word_bits_times_ratio(self):
        model = EnergyModel(bit_cost_ratio=1000.0)
        assert model.e_trans == WORD_BITS * 1000.0

    def test_paper_breakeven_16000(self):
        """§2.1: adding one instruction to save one transmitted word pays
        off iff it executes fewer than 16,000 times (16 bits x 1000)."""
        assert DEFAULT_ENERGY_MODEL.breakeven_executions(1, 1.0) == 16000.0

    def test_breakeven_scales_with_words(self):
        assert DEFAULT_ENERGY_MODEL.breakeven_executions(2, 1.0) == 32000.0

    def test_breakeven_infinite_when_no_cycle_cost(self):
        assert math.isinf(DEFAULT_ENERGY_MODEL.breakeven_executions(1, 0.0))

    def test_diff_energy_eq18(self):
        model = EnergyModel(bit_cost_ratio=1000.0)
        # Diff_energy = Diff_inst*E_trans + Diff_cycle*E_exe*Cnt
        assert model.diff_energy(3, 2.0, 100.0) == 3 * 16000.0 + 2.0 * 100.0

    def test_energy_savings_eq19_sign(self):
        model = DEFAULT_ENERGY_MODEL
        # UCC transmits less, executes the same -> positive savings.
        savings = model.energy_savings(10, 0.0, 4, 0.0, cnt=1000)
        assert savings == 6 * model.e_trans

    def test_savings_diminish_with_cnt_when_ucc_slower(self):
        """§5.5: extra mov cycles erode the savings as Cnt grows."""
        model = DEFAULT_ENERGY_MODEL
        small = model.energy_savings(10, 0.0, 4, 3.0, cnt=10)
        large = model.energy_savings(10, 0.0, 4, 3.0, cnt=10_000_000)
        assert small > 0
        assert large < small

    def test_crossover_cnt_exists(self):
        """There is a Cnt beyond which UCC-with-movs loses — exactly why
        UCC-RA falls back to the baseline at huge Cnt."""
        model = DEFAULT_ENERGY_MODEL
        crossover = model.e_trans_words(6) / 3.0
        just_below = model.energy_savings(10, 0.0, 4, 3.0, cnt=crossover * 0.9)
        just_above = model.energy_savings(10, 0.0, 4, 3.0, cnt=crossover * 1.1)
        assert just_below > 0 > just_above

    def test_custom_ratio(self):
        cheap_radio = EnergyModel(bit_cost_ratio=10.0)
        assert cheap_radio.e_trans == 160.0
        assert cheap_radio.breakeven_executions(1, 1.0) == 160.0

    def test_mem_instruction_costs_more(self):
        assert DEFAULT_ENERGY_MODEL.e_exe_mem > DEFAULT_ENERGY_MODEL.e_exe
