"""Unit tests for the observability layer (repro.obs).

Covers the tracer (nesting, exception safety, disabled no-ops, both
export formats), the metrics registry (all three instrument kinds,
type collisions, deltas, reset), and the docs checker's extraction
logic (tools/check_docs.py).
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


# ---------------------------------------------------------------------------
# tracer


def test_span_nesting_records_depths_in_completion_order():
    tracer = Tracer(enabled=True)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner2"):
            pass
    events = tracer.events()
    assert [(e.name, e.depth) for e in events] == [
        ("inner", 1),
        ("inner2", 1),
        ("outer", 0),
    ]
    outer = events[-1]
    assert outer.duration_us >= sum(e.duration_us for e in events[:-1]) - 1e-6


def test_span_exception_sets_error_flag_and_propagates():
    tracer = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("boom"):
                raise ValueError("x")
    events = tracer.events()
    assert [(e.name, e.error) for e in events] == [
        ("boom", True),
        ("outer", True),
    ]
    # Depth bookkeeping survived the unwind.
    with tracer.span("after"):
        pass
    assert tracer.events()[-1].depth == 0


def test_span_args_and_set():
    tracer = Tracer(enabled=True)
    with tracer.span("s", a=1) as sp:
        sp.set(b=2)
    assert tracer.events()[0].args == {"a": 1, "b": 2}


def test_disabled_tracer_is_a_shared_noop():
    tracer = Tracer()
    s1 = tracer.span("x", big=list(range(100)))
    s2 = tracer.span("y")
    assert s1 is s2  # the shared null span: no per-call allocation
    with s1 as sp:
        sp.set(anything="ignored")
    assert tracer.events() == []


def test_disable_mid_span_drops_the_event():
    tracer = Tracer(enabled=True)
    with tracer.span("outer"):
        tracer.disable()
    assert tracer.events() == []


def test_reset_clears_events_and_epoch():
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        pass
    tracer.reset()
    assert tracer.events() == []
    with tracer.span("b"):
        pass
    assert tracer.events()[0].start_us < 1e6  # fresh epoch


def test_jsonl_schema():
    tracer = Tracer(enabled=True)
    with tracer.span("a", k="v"):
        pass
    lines = tracer.to_jsonl().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert set(record) == {"name", "start_us", "dur_us", "depth", "args", "error"}
    assert record["name"] == "a"
    assert record["args"] == {"k": "v"}
    assert record["error"] is False


def test_chrome_trace_schema():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("net.fail"):
            raise RuntimeError("x")
    with tracer.span("ilp.ok", backend="own"):
        pass
    doc = tracer.chrome_trace()
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert len(events) == 2
    for ev in events:
        assert ev["ph"] == "X"
        assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(ev)
    by_name = {ev["name"]: ev for ev in events}
    assert by_name["net.fail"]["cat"] == "net"
    assert by_name["net.fail"]["args"]["error"] is True
    assert by_name["ilp.ok"]["args"] == {"backend": "own"}


def test_trace_file_writers(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        pass
    jsonl = tmp_path / "t.jsonl"
    chrome = tmp_path / "t.json"
    tracer.write_jsonl(str(jsonl))
    tracer.write_chrome_trace(str(chrome))
    assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "a"
    assert json.loads(chrome.read_text())["traceEvents"][0]["name"] == "a"


# ---------------------------------------------------------------------------
# metrics


def test_counter_accumulates_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("t.count")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert reg.counter("t.count") is c  # get-or-create


def test_gauge_keeps_last_value():
    reg = MetricsRegistry()
    g = reg.gauge("t.level")
    g.set(7)
    g.set(3)
    assert g.value == 3


def test_histogram_summary():
    reg = MetricsRegistry()
    h = reg.histogram("t.sizes")
    for v in (4, 10, 1):
        h.observe(v)
    snap = h.snapshot()
    assert snap == {
        "type": "histogram",
        "count": 3,
        "sum": 15.0,
        "min": 1,
        "max": 10,
        "mean": 5.0,
    }
    assert reg.histogram("t.sizes").mean == 5.0


def test_type_collision_raises():
    reg = MetricsRegistry()
    reg.counter("t.x")
    with pytest.raises(TypeError):
        reg.gauge("t.x")


def test_values_delta_and_reset():
    reg = MetricsRegistry()
    reg.counter("a.one").inc(5)
    reg.histogram("a.two").observe(1)
    reg.counter("b.other").inc()
    before = reg.values("a.")
    reg.counter("a.one").inc(2)
    reg.histogram("a.two").observe(9)
    delta = reg.delta(before, "a.")
    assert delta == {"a.one": 2.0, "a.two": 1.0}  # histograms delta by count
    assert set(reg.values()) == {"a.one", "a.two", "b.other"}
    reg.reset()
    assert reg.values() == {"a.one": 0.0, "a.two": 0.0, "b.other": 0.0}


def test_render_mentions_every_metric():
    reg = MetricsRegistry()
    reg.counter("r.c").inc()
    reg.histogram("r.h").observe(2)
    text = reg.render()
    assert "r.c: 1" in text
    assert "count=1" in text


# ---------------------------------------------------------------------------
# the docs checker's extraction


def test_check_docs_extracts_multiline_span_names(tmp_path):
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "check_docs",
        Path(__file__).resolve().parent.parent / "tools" / "check_docs.py",
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    sample = 'with trace.span(\n    "multi.line",\n    x=1,\n):\n    pass\n'
    sample += 'metrics.counter("some.count").inc()\n'
    assert mod._SPAN_RE.findall(sample) == ["multi.line"]
    assert mod._METRIC_RE.findall(sample) == ["some.count"]

    spans, mets = mod.emitted_names()
    # Names this PR instruments must be visible to the checker.
    assert "ilp.solve" in spans
    assert "compile.regalloc" in spans  # multiline call site
    assert "net.disseminate_lossy" in spans
    assert "ilp.simplex_iterations" in mets
    assert "fuzz.oracle_failures.trace" in mets


def test_check_docs_passes_on_this_repo():
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parent.parent
    proc = subprocess.run(
        [sys.executable, str(repo / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout
