"""Tests for the end-to-end update fuzzer (:mod:`repro.fuzz`).

Covers the three guarantees the subsystem makes:

* **determinism** — same seed, same programs, same edits, same verdict
  digest, on any platform;
* **soundness of the clean path** — generated pairs pass every oracle
  (a short campaign with zero findings);
* **sensitivity** — a deliberately broken sensor-side patcher is
  caught by the oracle battery and delta-debugged down to a minimal,
  persisted reproducer.
"""

import json
import random

import pytest

from repro.core import compile_source
from repro.fuzz import (
    GenConfig,
    apply_edits,
    check_pair,
    generate_program,
    mutate,
    run_fuzz,
)
from repro.fuzz import oracles as fuzz_oracles
from repro.fuzz.progen import validate
from repro.fuzz.runner import _iteration_rng

#: Small programs keep the shrinking tests fast; the defaults are
#: exercised by the CI smoke campaign (`repro fuzz`).
SMALL = GenConfig(
    max_globals=3,
    max_arrays=1,
    max_funcs=1,
    max_stmts=3,
    max_nesting=1,
    scheduler_iters=8,
)


def _rng(seed=0):
    return random.Random(f"test-fuzz:{seed}")


# ---------------------------------------------------------------------------
# generator
# ---------------------------------------------------------------------------


class TestProgramGenerator:
    def test_same_seed_same_program(self):
        a = generate_program(_rng(1)).render()
        b = generate_program(_rng(1)).render()
        assert a == b

    def test_different_seeds_differ(self):
        sources = {generate_program(_rng(seed)).render() for seed in range(6)}
        assert len(sources) > 1

    @pytest.mark.parametrize("seed", range(5))
    def test_generated_programs_compile_and_halt(self, seed):
        program = generate_program(_rng(seed))
        source = program.render()
        compiled = compile_source(source)
        assert compiled.instruction_count > 0
        assert "halt()" in source
        validate(program)  # frontend accepts the structured form too

    def test_config_bounds_respected(self):
        program = generate_program(_rng(2), SMALL)
        assert len(program.funcs) <= SMALL.max_funcs + 1  # helpers + main
        assert len(program.globals) <= SMALL.max_globals + SMALL.max_arrays


# ---------------------------------------------------------------------------
# mutator
# ---------------------------------------------------------------------------


class TestMutator:
    def test_same_seed_same_edits(self):
        program = generate_program(_rng(3))
        _, edits_a = mutate(program, _rng(30), 3)
        _, edits_b = mutate(program, _rng(30), 3)
        assert [e.describe() for e in edits_a] == [e.describe() for e in edits_b]

    @pytest.mark.parametrize("seed", range(5))
    def test_mutated_programs_compile(self, seed):
        program = generate_program(_rng(seed))
        mutated, edits = mutate(program, _rng(seed + 100), 3)
        assert edits, "mutator produced no applicable edits"
        compile_source(mutated.render())

    def test_edits_replay_on_a_clone(self):
        program = generate_program(_rng(4))
        mutated, edits = mutate(program, _rng(40), 2)
        assert apply_edits(program, edits).render() == mutated.render()
        # the base program is untouched
        validate(program)


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------


class TestOracles:
    def test_clean_generated_pair_passes_all_oracles(self):
        program = generate_program(_rng(7), SMALL)
        mutated, edits = mutate(program, _rng(70), 2)
        assert edits
        verdict = check_pair(program.render(), mutated.render())
        assert verdict.ok, verdict.summary()
        assert verdict.old_cycles and verdict.new_cycles

    def test_non_compiling_new_source_is_a_plan_failure(self):
        program = generate_program(_rng(8), SMALL)
        verdict = check_pair(program.render(), "void main() { undeclared = 1; }")
        assert not verdict.ok
        assert verdict.failures[0].oracle == "plan"


# ---------------------------------------------------------------------------
# campaign determinism
# ---------------------------------------------------------------------------


class TestCampaignDeterminism:
    def test_same_seed_same_digest(self):
        a = run_fuzz(seed=5, iters=3, config=SMALL)
        b = run_fuzz(seed=5, iters=3, config=SMALL)
        assert a.ok and b.ok
        assert a.digest == b.digest
        assert a.edit_counts == b.edit_counts
        assert a.script_bytes_total == b.script_bytes_total

    def test_different_seeds_different_digest(self):
        a = run_fuzz(seed=5, iters=3, config=SMALL)
        b = run_fuzz(seed=6, iters=3, config=SMALL)
        assert a.digest != b.digest

    def test_iteration_rng_is_stable_across_runs(self):
        # string-seeded Random hashes with SHA-512, not PYTHONHASHSEED
        assert _iteration_rng(0, 0).random() == _iteration_rng(0, 0).random()
        assert (
            _iteration_rng(0, 1).getrandbits(32)
            != _iteration_rng(1, 0).getrandbits(32)
        )

    def test_report_renders_summary(self):
        report = run_fuzz(seed=5, iters=2, config=SMALL)
        text = report.render()
        assert "seed=5" in text and "findings=0" in text
        assert report.digest in text


# ---------------------------------------------------------------------------
# sensitivity: a broken patcher must be caught and shrunk
# ---------------------------------------------------------------------------


def _break_patcher(monkeypatch):
    """Install a patcher that flips one word of every rebuilt image."""
    real = fuzz_oracles.patched_words

    def broken(old_image, script):
        words = real(old_image, script)
        if words:
            words[0] ^= 0x0001
        return words

    monkeypatch.setattr(fuzz_oracles, "patched_words", broken)


class TestBrokenPatcherIsCaught:
    def test_finding_is_reported_shrunk_and_persisted(self, monkeypatch, tmp_path):
        _break_patcher(monkeypatch)
        corpus = tmp_path / "corpus"
        report = run_fuzz(seed=0, iters=1, config=SMALL, corpus_dir=str(corpus))
        assert not report.ok
        (finding,) = report.findings

        # caught: the patch oracle names the divergence
        assert any(f.oracle == "patch" for f in finding.failures)
        assert "diverges" in finding.failures[0].message

        # shrunk: a single surviving edit on a minimal program
        assert finding.shrunk_edits == 1
        assert finding.shrunk_statements <= 3

        # persisted: a replayable reproducer directory
        case_dirs = list(corpus.glob("case-*"))
        assert len(case_dirs) == 1
        assert str(case_dirs[0]) == finding.case_dir
        old_source = (case_dirs[0] / "old.c").read_text()
        new_source = (case_dirs[0] / "new.c").read_text()
        compile_source(old_source)
        compile_source(new_source)
        meta = json.loads((case_dirs[0] / "meta.json").read_text())
        assert meta["seed"] == 0 and meta["iteration"] == 0
        assert len(meta["edits"]) == 1
        assert any("patch" in failure for failure in meta["failures"])

    def test_shrunk_pair_still_fails_the_oracles(self, monkeypatch, tmp_path):
        _break_patcher(monkeypatch)
        corpus = tmp_path / "corpus"
        run_fuzz(seed=0, iters=1, config=SMALL, corpus_dir=str(corpus))
        (case_dir,) = corpus.glob("case-*")
        verdict = check_pair(
            (case_dir / "old.c").read_text(), (case_dir / "new.c").read_text()
        )
        assert not verdict.ok

    def test_no_shrink_keeps_the_original_case(self, monkeypatch, tmp_path):
        _break_patcher(monkeypatch)
        report = run_fuzz(
            seed=0,
            iters=1,
            config=SMALL,
            corpus_dir=str(tmp_path),
            shrink_findings=False,
        )
        (finding,) = report.findings
        assert finding.shrunk_edits >= 1
        assert any(f.oracle == "patch" for f in finding.failures)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFuzzCli:
    def test_clean_campaign_exits_zero(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "fuzz",
                "--seed",
                "0",
                "--iters",
                "2",
                "--max-funcs",
                "1",
                "--scheduler-iters",
                "8",
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "findings=0" in out

    def test_broken_patcher_exits_nonzero(self, monkeypatch, tmp_path, capsys):
        from repro.cli import main

        _break_patcher(monkeypatch)
        rc = main(
            [
                "fuzz",
                "--seed",
                "0",
                "--iters",
                "1",
                "--max-funcs",
                "1",
                "--scheduler-iters",
                "8",
                "--corpus",
                str(tmp_path),
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        assert list(tmp_path.glob("case-*"))
