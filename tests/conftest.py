"""Shared fixtures: compiled workload programs, cached per session."""

from __future__ import annotations

import pytest

from repro.core import compile_source
from repro.workloads import CASES, PROGRAMS


@pytest.fixture(scope="session")
def compiled_programs():
    """All five benchmark programs, compiled once."""
    return {name: compile_source(src) for name, src in PROGRAMS.items()}


@pytest.fixture(scope="session")
def compiled_case_olds():
    """Old versions of every update case, compiled once."""
    return {cid: compile_source(case.old_source) for cid, case in CASES.items()}


SIMPLE_PROGRAM = """
u16 counter = 0;
u8 mask = 7;

u16 bump(u16 x, u8 step) {
    u16 r = x + step;
    if (r > 100 && step != 0) { r = 0; }
    return r;
}

void main() {
    u8 i;
    for (i = 0; i < 20; i++) {
        counter = bump(counter, i & mask);
        if (timer_fired()) { led_set(counter & 7); radio_send(counter); }
    }
    halt();
}
"""


@pytest.fixture(scope="session")
def simple_program():
    return compile_source(SIMPLE_PROGRAM)


@pytest.fixture(scope="session")
def simple_source():
    return SIMPLE_PROGRAM
