"""IR-interpreter tests, including IR-vs-machine differential checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Compiler, CompilerOptions, compile_source
from repro.ir import IRInterpError, run_ir
from repro.sim import run_image


def front_middle(source, optimize=True):
    return Compiler(CompilerOptions(optimize=optimize)).front_and_middle(source)


class TestBasics:
    def test_arithmetic_and_globals(self):
        module = front_middle(
            "u16 r; void main() { u16 a = 300; r = a * 3 + 7; halt(); }"
        )
        result = run_ir(module)
        assert result.halted
        assert result.globals["r"] == (300 * 3 + 7) & 0xFFFF

    def test_function_calls(self):
        module = front_middle(
            "u8 r; u8 sq(u8 x) { return x * x; } void main() { r = sq(9); halt(); }"
        )
        assert run_ir(module).globals["r"] == 81

    def test_arrays(self):
        module = front_middle(
            "u8 t[4]; u8 r;"
            " void main() { u8 i; for (i = 0; i < 4; i++) { t[i] = i * 3; }"
            " r = t[0] + t[1] + t[2] + t[3]; halt(); }"
        )
        assert run_ir(module).globals["r"] == 0 + 3 + 6 + 9

    def test_devices(self):
        module = front_middle(
            "void main() { led_set(5); radio_send(0x1234); halt(); }"
        )
        result = run_ir(module)
        assert result.devices.led.writes == [5]
        assert result.devices.radio.sent == [0x1234]

    def test_out_of_bounds_detected(self):
        module = front_middle(
            "u8 t[2]; void main() { u8 i = 5; t[i] = 1; halt(); }",
            optimize=False,
        )
        with pytest.raises(IRInterpError):
            run_ir(module)

    def test_step_budget(self):
        module = front_middle("void main() { while (1) { } }")
        result = run_ir(module, max_steps=1000)
        assert not result.halted
        assert result.steps >= 1000

    def test_division_by_zero_matches_machine(self):
        src = "u8 r; void main() { u8 a = 7; u8 z = a - a; r = a / z; halt(); }"
        module = front_middle(src, optimize=False)
        ir_result = run_ir(module)
        prog = compile_source(src, optimize=False)
        from repro.sim import Simulator

        sim = Simulator(prog.image)
        sim.run()
        assert ir_result.globals["r"] == sim.load(prog.layout.addresses["r"])


class TestIRvsMachineDifferential:
    """The IR interpreter and the machine simulator must observe the
    same behaviour — this isolates back-end bugs from front-end ones."""

    def _compare(self, source):
        module = front_middle(source)
        ir_result = run_ir(module, max_steps=10_000_000)
        program = compile_source(source)
        machine = run_image(program.image, max_cycles=20_000_000)
        assert ir_result.halted and machine.halted
        assert ir_result.devices.radio.sent == machine.devices.radio.sent
        assert ir_result.devices.led.writes == machine.devices.led.writes
        return ir_result, program

    def test_benchmarks_agree(self):
        from repro.workloads import AES

        self._compare(AES)

    def test_nontrivial_control_flow_agrees(self):
        self._compare(
            """
            u16 acc;
            void main() {
                u8 i; u8 j;
                for (i = 0; i < 12; i++) {
                    for (j = 0; j < 5; j++) {
                        if ((i ^ j) & 1) { acc = acc + i * j; }
                        else { acc = acc - j; }
                    }
                    if (acc > 500) { break; }
                }
                radio_send(acc);
                halt();
            }
            """
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_programs_agree(self, seed):
        import random

        rng = random.Random(seed)
        ops = ["+", "-", "^", "&", "|", "*"]
        lines = [f"u8 v{i} = {i + 1};" for i in range(4)]
        for _ in range(rng.randrange(1, 16)):
            dst, a, b = (rng.randrange(4) for _ in range(3))
            lines.append(f"v{dst} = v{a} {rng.choice(ops)} v{b};")
        body = "\n    ".join(lines)
        source = (
            f"void main() {{\n    {body}\n    radio_send(v0 ^ v1 ^ v2 ^ v3);\n"
            "    halt();\n}"
        )
        self._compare(source)
