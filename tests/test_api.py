"""The typed public API (`repro.api` + `repro.config`).

Pins the facade's behaviour: typed configs validate at construction,
the facade functions produce the same artefacts as the underlying
classes, and empty fleets are rejected up front.
"""

import pytest

import repro.api as api
from repro.config import (
    CompileConfig,
    FleetJob,
    TopologySpec,
    UpdateConfig,
    baseline_ra,
    merge_legacy_strategy,
)
from repro.workloads import CASES

CASE = CASES["6"]


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_update_config_rejects_unknown_ra(self):
        with pytest.raises(ValueError, match="UpdateConfig.ra"):
            UpdateConfig(ra="bogus")

    def test_update_config_rejects_unknown_da(self):
        with pytest.raises(ValueError, match="UpdateConfig.da"):
            UpdateConfig(da="bogus")

    def test_update_config_rejects_unknown_cp(self):
        with pytest.raises(ValueError, match="UpdateConfig.cp"):
            UpdateConfig(cp="bogus")

    def test_update_config_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            UpdateConfig(k=0)

    def test_update_config_rejects_negative_runs(self):
        with pytest.raises(ValueError, match="expected_runs"):
            UpdateConfig(expected_runs=-1.0)

    def test_compile_config_rejects_update_strategies(self):
        # "ucc" is an *update* strategy; a from-scratch compile needs a
        # baseline allocator.  CompileConfig.of does the mapping.
        with pytest.raises(ValueError, match="CompileConfig.ra"):
            CompileConfig(ra="ucc")

    def test_compile_config_of_maps_update_strategy_to_baseline(self):
        assert CompileConfig.of(ra="ucc").ra == "gcc"
        assert CompileConfig.of(ra="ucc-ilp").ra == "gcc"
        assert CompileConfig.of(ra="linear").ra == "linear"
        assert baseline_ra("ucc") == "gcc"

    def test_topology_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="grid/line/random"):
            TopologySpec(kind="torus")

    def test_fleet_job_rejects_bad_loss(self):
        with pytest.raises(ValueError, match="loss"):
            FleetJob(old_source="", new_source="", loss=1.0)

    def test_configs_are_frozen(self):
        with pytest.raises(AttributeError):
            UpdateConfig().ra = "gcc"


class TestConfigSemantics:
    def test_resolved_cp_strategy_defaults(self):
        assert UpdateConfig(ra="ucc").resolved_cp() == "auto"
        assert UpdateConfig(ra="ucc-ilp").resolved_cp() == "auto"
        assert UpdateConfig(ra="gcc").resolved_cp() == "gcc"
        assert UpdateConfig(ra="linear").resolved_cp() == "gcc"
        assert UpdateConfig(ra="ucc", cp="gcc").resolved_cp() == "gcc"

    def test_digests_are_content_addresses(self):
        assert UpdateConfig().digest() == UpdateConfig().digest()
        assert UpdateConfig().digest() != UpdateConfig(ra="gcc").digest()
        job = FleetJob(old_source="a", new_source="b")
        assert job.digest() == FleetJob(old_source="a", new_source="b").digest()
        assert job.digest() != FleetJob(old_source="a", new_source="c").digest()

    def test_merge_legacy_strategy_explicit_flag_wins(self):
        merged = merge_legacy_strategy(UpdateConfig(ra="ucc", da="ucc"), ra="gcc")
        assert merged.ra == "gcc"
        assert merged.da == "ucc"  # untouched fields survive the merge

    def test_topology_spec_builds_the_right_shape(self):
        grid = TopologySpec.grid(3, 4)
        assert grid.node_count() == 12
        assert grid.build().node_count == 12
        line = TopologySpec.line(5)
        assert line.build().node_count == 5


# ---------------------------------------------------------------------------
# The facade functions
# ---------------------------------------------------------------------------


class TestFacade:
    def test_compile_source_matches_compiler(self):
        from repro.core.compiler import Compiler

        via_api = api.compile_source(CASE.old_source, CompileConfig())
        direct = Compiler(CompileConfig().to_options()).compile(CASE.old_source)
        assert via_api.image.words() == direct.image.words()

    def test_plan_update_matches_planner(self):
        old = api.compile_source(CASE.old_source)
        cfg = UpdateConfig(ra="ucc", da="ucc")
        via_api = api.plan_update(old, CASE.new_source, cfg)
        direct = api.UpdatePlanner(old, config=cfg).plan(CASE.new_source)
        assert via_api.diff_inst == direct.diff_inst
        assert via_api.script_bytes == direct.script_bytes
        assert via_api.diff.script.render() == direct.diff.script.render()

    def test_make_planner_reuses_one_deployed_version(self):
        old = api.compile_source(CASE.old_source)
        planner = api.make_planner(old, UpdateConfig(ra="ucc"))
        first = planner.plan(CASE.new_source)
        second = planner.plan(CASE.new_source)
        assert first.diff_inst == second.diff_inst

    def test_make_session_accepts_topology_spec(self):
        old = api.compile_source(CASE.old_source)
        session = api.make_session(old, TopologySpec.grid(3, 3))
        result = session.push_update(
            CASE.new_source, config=UpdateConfig(ra="ucc", da="ucc")
        )
        assert result.nodes_patched == 8  # 9 nodes minus the sink

    def test_make_session_rejects_empty_fleet(self):
        old = api.compile_source(CASE.old_source)
        with pytest.raises(ValueError, match="no sensor nodes"):
            api.make_session(old, TopologySpec.grid(1, 1))

    def test_all_is_sorted_and_complete(self):
        assert api.__all__ == sorted(api.__all__)
        for name in api.__all__:
            assert getattr(api, name) is not None
