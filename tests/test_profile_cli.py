"""Integration tests for ``repro profile`` and repro.obs.profile.

Pins the telemetry contract end to end: a default profile run on a
Figure 9 case emits every documented core phase, the CLI prints the
per-phase table, and the exported Chrome trace is structurally valid.
"""

import json

import pytest

from repro.cli import main
from repro.obs import metrics, trace
from repro.obs.profile import CORE_PHASES, aggregate_phases, profile_update
from repro.workloads import CASES


@pytest.fixture(autouse=True)
def _quiet_tracer():
    """Profiling toggles the process-wide tracer; leave it clean."""
    yield
    trace.TRACER.disable()
    trace.TRACER.reset()


CASE = CASES["6"]  # "add an else branch ..." — a Figure 9 quoted case


@pytest.fixture(scope="module")
def report():
    return profile_update(CASE.old_source, CASE.new_source, label="case 6")


def test_profile_emits_every_core_phase(report):
    names = set(report.phase_names())
    missing = [p for p in CORE_PHASES if p not in names]
    assert not missing, f"phases missing from profile: {missing}"


def test_profile_leaves_tracer_disabled(report):
    assert not trace.TRACER.enabled


def test_phase_rows_are_consistent(report):
    rows = {row.name: row for row in report.rows}
    assert rows["profile.total"].calls == 1
    assert rows["sim.run"].calls == 2  # old + new for Diff_cycle
    for row in report.rows:
        assert row.self_ms <= row.total_ms + 1e-9
        assert row.calls >= 1
    # The root span contains everything, so its total is the maximum.
    assert rows["profile.total"].total_ms == max(r.total_ms for r in report.rows)


def test_energy_column_attribution(report):
    rows = {row.name: row for row in report.rows}
    assert rows["net.disseminate"].energy.endswith(" J")
    assert rows["diff.images"].energy.endswith(" u tx")
    assert rows["sim.run"].energy.endswith(" u exe")
    assert rows["compile.full"].energy == "-"


def test_metrics_delta_is_per_run(report):
    delta = report.metrics_delta
    assert delta.get("update.plans") == 1
    assert delta.get("sim.runs") == 2
    # A second profile reports its own deltas, not cumulative totals.
    second = profile_update(CASE.old_source, CASE.new_source, label="again")
    assert second.metrics_delta.get("update.plans") == 1


def test_render_contains_table_and_metrics(report):
    text = report.render()
    assert "phase" in text and "self ms" in text
    for phase in CORE_PHASES:
        assert phase in text
    assert "metrics (this run):" in text
    assert "Diff_inst=" in text


def test_chrome_trace_is_valid(report):
    doc = report.chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert {ev["name"] for ev in events} >= set(CORE_PHASES)
    for ev in events:
        assert ev["ph"] == "X"
        assert isinstance(ev["ts"], (int, float))
        assert isinstance(ev["dur"], (int, float))
        assert ev["dur"] >= 0


def test_self_time_is_total_minus_children(report):
    events = report.events
    rows = {row.name: row for row in aggregate_phases(events)}
    total = rows["profile.total"]
    children_ms = sum(
        ev.duration_us / 1000.0 for ev in events if ev.depth == 1
    )
    assert total.self_ms == pytest.approx(total.total_ms - children_ms, rel=1e-6)


def test_lossy_profile_uses_lossy_span():
    report = profile_update(
        CASE.old_source,
        CASE.new_source,
        loss=0.2,
        grid_side=3,
        simulate=False,
        label="lossy",
    )
    names = set(report.phase_names())
    assert "net.disseminate_lossy" in names
    assert "net.disseminate" not in names
    assert "sim.run" not in names
    assert report.metrics_delta.get("net.lossy.runs") == 1
    assert report.metrics_delta.get("net.lossy.drops", 0) > 0


# ---------------------------------------------------------------------------
# CLI


def test_cli_profile_case(tmp_path, capsys):
    trace_file = tmp_path / "trace.json"
    jsonl_file = tmp_path / "trace.jsonl"
    code = main(
        [
            "profile",
            "--case",
            "6",
            "--trace",
            str(trace_file),
            "--jsonl",
            str(jsonl_file),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    for phase in CORE_PHASES:
        assert phase in out
    assert "Diff_cycle" in out

    doc = json.loads(trace_file.read_text())
    assert {ev["name"] for ev in doc["traceEvents"]} >= set(CORE_PHASES)
    records = [json.loads(line) for line in jsonl_file.read_text().splitlines()]
    assert {r["name"] for r in records} >= set(CORE_PHASES)


def test_cli_profile_files(tmp_path, capsys):
    old = tmp_path / "old.c"
    new = tmp_path / "new.c"
    old.write_text(CASE.old_source)
    new.write_text(CASE.new_source)
    code = main(["profile", str(old), str(new), "--no-sim"])
    assert code == 0
    out = capsys.readouterr().out
    assert "update.plan" in out
    assert "sim.run" not in out


def test_cli_profile_rejects_unknown_case(capsys):
    assert main(["profile", "--case", "nope"]) == 2


def test_cli_profile_requires_inputs(capsys):
    assert main(["profile"]) == 2


def test_fuzz_report_embeds_metrics(capsys):
    code = main(["fuzz", "--iters", "3", "--quiet", "--no-shrink"])
    assert code == 0
    out = capsys.readouterr().out
    assert "metrics : " in out
    assert "iterations:3" in out
