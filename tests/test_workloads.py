"""Workload tests: the five benchmarks and the fifteen update cases."""

import pytest

from repro.sim import DeviceBoard, Timer, run_image
from repro.workloads import (
    AES_EXPECTED_CIPHERTEXT,
    CASES,
    DATA_CASE_IDS,
    PROGRAMS,
    RA_CASE_IDS,
)


class TestPrograms:
    def test_all_programs_compile(self, compiled_programs):
        for name, prog in compiled_programs.items():
            assert prog.instruction_count > 10, name

    def test_all_programs_halt(self, compiled_programs):
        for name, prog in compiled_programs.items():
            result = run_image(prog.image, max_cycles=10_000_000)
            assert result.halted, name

    def test_blink_toggles_led(self, compiled_programs):
        board = DeviceBoard(timer=Timer(period_cycles=200))
        result = run_image(compiled_programs["Blink"].image, devices=board)
        writes = result.devices.led.writes
        assert len(writes) > 2
        toggles = writes[1:]  # after the initial led_set(0)
        assert toggles[:4] == [1, 0, 1, 0]

    def test_cnt_to_leds_shows_low_bits(self, compiled_programs):
        board = DeviceBoard(timer=Timer(period_cycles=200))
        result = run_image(compiled_programs["CntToLeds"].image, devices=board)
        writes = result.devices.led.writes
        assert writes[: min(9, len(writes))] == [
            (i + 1) & 7 for i in range(min(9, len(writes)))
        ]

    def test_cnt_to_rfm_sends_counter_packets(self, compiled_programs):
        board = DeviceBoard(timer=Timer(period_cycles=200))
        result = run_image(compiled_programs["CntToRfm"].image, devices=board)
        sent = result.devices.radio.sent
        # stream is (am_type, seq, value) triples
        assert len(sent) >= 6
        triples = [sent[i : i + 3] for i in range(0, len(sent) - 2, 3)]
        for idx, (kind, seq, value) in enumerate(triples):
            assert kind == 4
            assert seq == idx
            assert value == idx + 1

    def test_cnt_to_leds_and_rfm_does_both(self, compiled_programs):
        board = DeviceBoard(timer=Timer(period_cycles=200))
        result = run_image(
            compiled_programs["CntToLedsAndRfm"].image, devices=board
        )
        assert result.devices.led.writes
        assert result.devices.radio.sent

    def test_aes_matches_fips197_vector(self, compiled_programs):
        result = run_image(compiled_programs["AES"].image, max_cycles=10_000_000)
        assert bytes(result.devices.radio.sent) == AES_EXPECTED_CIPHERTEXT

    def test_program_sizes_ordered_like_paper(self, compiled_programs):
        """CntToLeds < CntToRfm (the paper reports 828 vs 4351 for the
        TinyOS images; ours are smaller but ordered the same way)."""
        assert (
            compiled_programs["CntToLeds"].instruction_count
            < compiled_programs["CntToRfm"].instruction_count
        )
        assert (
            compiled_programs["CntToRfm"].instruction_count
            < compiled_programs["CntToLedsAndRfm"].instruction_count
        )


class TestCases:
    def test_fifteen_cases_defined(self):
        assert len(CASES) == 15
        assert len(RA_CASE_IDS) == 12
        assert DATA_CASE_IDS == ["D1", "D2"]

    def test_levels_cover_paper_spectrum(self):
        levels = {case.level for case in CASES.values()}
        assert levels == {"small", "medium", "large", "data"}

    def test_every_case_sources_differ(self):
        for cid, case in CASES.items():
            assert case.old_source != case.new_source, cid

    def test_every_case_compiles_and_runs(self, compiled_case_olds):
        from repro.core import compile_source

        for cid, case in CASES.items():
            new = compile_source(case.new_source)
            result = run_image(new.image, max_cycles=10_000_000)
            assert result.halted, f"case {cid} new binary did not halt"

    def test_case12_is_application_replacement(self):
        assert CASES["12"].new_source == PROGRAMS["CntToLedsAndRfm"]

    def test_case13_matches_paper_description(self):
        assert CASES["13"].old_source == PROGRAMS["CntToLeds"]
        assert CASES["13"].new_source == PROGRAMS["CntToRfm"]

    def test_update_case_anchor_validation(self):
        from repro.workloads.updates import _edit

        with pytest.raises(ValueError):
            _edit("abc", ("missing", "x"))
