"""Profile-guided update planning (paper §2.1's execution profiles)."""


from repro.config import UpdateConfig
from repro.core import UpdatePlanner, compile_source, plan_update, profile_program
from repro.workloads import CASES


class TestProfileCollection:
    def test_profile_program_returns_counts(self, compiled_programs):
        result = profile_program(compiled_programs["CntToLeds"])
        assert result.halted
        assert result.profile
        freqs = result.ir_frequencies("timer_handle_fire")
        assert freqs and max(freqs.values()) > 0

    def test_loop_bodies_hotter_than_prologue(self, compiled_programs):
        result = profile_program(compiled_programs["Blink"])
        freqs = result.ir_frequencies("main")
        # the scheduler loop runs 600 times; entry code runs once
        assert max(freqs.values()) >= 100 * min(freqs.values())


class TestProfileGuidedPlanning:
    def test_profiled_plan_round_trips(self, compiled_case_olds):
        from repro.diff.patcher import patched_words

        case = CASES["6"]
        old = compiled_case_olds["6"]
        planner = UpdatePlanner(old, profile=profile_program(old))
        result = planner.plan(case.new_source)
        assert (
            patched_words(old.image, result.diff.script)
            == result.new.image.words()
        )

    def test_profiled_and_static_agree_on_clean_cases(self, compiled_case_olds):
        """Where no energy decision is marginal, the profile changes
        nothing (cases whose UCC compile ties the static plan)."""
        case = CASES["1"]
        old = compiled_case_olds["1"]
        static = plan_update(old, case.new_source)
        profiled = UpdatePlanner(old, profile=profile_program(old)).plan(
            case.new_source
        )
        assert static.diff_inst == profiled.diff_inst

    def test_profile_gates_move_on_measured_heat(self):
        """A mov inside code the profile shows to be *hot* is rejected
        at an expected_runs level where the static estimate (which has
        no loop around the mov site) would accept it."""
        tail = "\n".join("        g = g ^ b;" for _ in range(8))
        old_src = (
            "u8 g;\nvoid f(u8 a) {\n    g = g + a;\n    u8 b = g & 3;\n"
            + tail
            + "\n}\nvoid main() { u16 i; for (i = 0; i < 400; i++) { f(1); } halt(); }"
        )
        new_src = old_src.replace(
            "    u8 b = g & 3;\n",
            "    u8 b = g & 3;\n    g = g + a;\n",
        )
        old = compile_source(old_src)
        # Static estimate: f's body has frequency 1 (no loop inside f),
        # so at expected_runs=1 the mov is inserted.
        static = plan_update(
            old, new_src, config=UpdateConfig(ra="ucc", expected_runs=1.0)
        )
        assert static.moves_inserted() == 1
        # The profile knows f runs 400 times per run of the program: the
        # mov executes 400x per run, making it 400x more expensive.
        profile = profile_program(old)
        hot_config = UpdateConfig(ra="ucc", expected_runs=50.0)
        hot = UpdatePlanner(old, profile=profile, config=hot_config).plan(new_src)
        cold = UpdatePlanner(old, config=hot_config).plan(new_src)
        assert cold.moves_inserted() >= hot.moves_inserted()
