"""Tests for the static verification layer (repro.analysis)."""

import pytest

from repro.analysis import (
    ENTRY_DEF,
    Definition,
    Finding,
    VerificationError,
    VerificationReport,
    audit_ilp_solution,
    def_use_chains,
    dominators,
    immediate_dominators,
    reaching_definitions,
    verify_update,
)
from repro.core import (
    Compiler,
    CompilerOptions,
    UpdatePlanner,
    compile_source,
    plan_update,
)
from repro.ilp.branch_bound import SolveResult
from repro.ilp.model import IntegerProgram
from repro.ir import build_cfg, build_ir
from repro.lang import frontend
from repro.workloads import CASES, RA_CASE_IDS
from repro.config import UpdateConfig


def lower_fn(source, name="f"):
    return build_ir(frontend(source)).functions[name]


# ---------------------------------------------------------------------------
# dataflow framework
# ---------------------------------------------------------------------------


class TestReachingDefinitions:
    def test_redefinition_kills_previous(self):
        fn = lower_fn("u8 f() { u8 x = 1; x = 2; return x; }")
        rd = reaching_definitions(fn)
        ret_idx = len(fn.instrs) - 1
        x_name = next(r.name for r in fn.instrs[0].defs())
        reaching = rd.defs_reaching(ret_idx, x_name)
        # only the second definition survives to the return
        assert len(reaching) == 1
        assert all(d.index > 0 for d in reaching)

    def test_branch_merges_definitions(self):
        fn = lower_fn(
            "u8 f(u8 a) { u8 x = 1; if (a) { x = 2; } return x; }"
        )
        rd = reaching_definitions(fn)
        x_name = next(r.name for r in fn.instrs[0].defs() if "x" in r.name)
        # both arms' definitions can reach the join
        reached = {d.index for d in rd.defs_reaching(len(fn.instrs) - 1, x_name)}
        assert len(reached) == 2

    def test_parameters_reach_from_entry(self):
        fn = lower_fn("u8 f(u8 a) { return a; }")
        rd = reaching_definitions(fn)
        a_name = fn.param_vregs[0].name
        assert Definition(a_name, ENTRY_DEF) in rd.reach_in[0]

    def test_loop_carried_definition_reaches_header(self):
        fn = lower_fn("void f(u8 a) { while (a) { a = a - 1; } }")
        rd = reaching_definitions(fn)
        a_name = fn.param_vregs[0].name
        # the in-loop redefinition flows around the back edge to index 0
        assert any(
            d.index >= 0 for d in rd.defs_reaching(0, a_name)
        ), "back-edge definition should reach the loop header"


class TestDefUseChains:
    def test_use_linked_to_its_definition(self):
        fn = lower_fn("u8 f() { u8 x = 7; return x; }")
        chains = def_use_chains(fn)
        x_name = next(r.name for r in fn.instrs[0].defs())
        definition = Definition(x_name, 0)
        assert definition in chains.uses_of
        assert chains.uses_of[definition]

    def test_well_formed_function_has_no_undefined_uses(self):
        fn = lower_fn(
            "u8 f(u8 a) { u8 x = a + 1; if (x) { x = x + a; } return x; }"
        )
        chains = def_use_chains(fn)
        assert chains.undefined_uses == []


class TestDominators:
    def test_entry_dominates_everything(self):
        fn = lower_fn("void f(u8 a) { if (a) { a = 1; } else { a = 2; } }")
        cfg = build_cfg(fn)
        dom = dominators(cfg)
        assert all(0 in dom[b.index] for b in cfg.blocks)

    def test_branch_arm_does_not_dominate_join(self):
        fn = lower_fn(
            "u8 f(u8 a) { u8 x = 0; if (a) { x = 1; } else { x = 2; } return x; }"
        )
        cfg = build_cfg(fn)
        dom = dominators(cfg)
        entry = cfg.blocks[0]
        arms = entry.successors
        join = next(
            b.index
            for b in cfg.blocks
            if b.index not in arms and b.index != entry.index
        )
        for arm in arms:
            assert arm not in dom[join]

    def test_immediate_dominator_of_join_is_branch_head(self):
        fn = lower_fn(
            "u8 f(u8 a) { u8 x = 0; if (a) { x = 1; } else { x = 2; } return x; }"
        )
        cfg = build_cfg(fn)
        idom = immediate_dominators(cfg)
        assert idom[0] is None
        dom = dominators(cfg)
        for block in cfg.blocks:
            if block.index == 0:
                continue
            # the idom is a strict dominator
            assert idom[block.index] in dom[block.index] - {block.index}


# ---------------------------------------------------------------------------
# report / error plumbing
# ---------------------------------------------------------------------------


class TestReportPlumbing:
    def test_clean_report_is_ok(self):
        report = VerificationReport()
        report.extend("allocation", [])
        assert report.ok
        assert report.failing_passes() == []
        report.raise_if_failed()  # no-op

    def test_error_names_failing_pass(self):
        report = VerificationReport()
        report.extend("layout", [Finding("layout", "slots overlap")])
        with pytest.raises(VerificationError) as excinfo:
            report.raise_if_failed()
        assert "layout" in str(excinfo.value)
        assert excinfo.value.failing_passes == ["layout"]
        assert excinfo.value.report is report

    def test_render_lists_every_pass(self):
        report = VerificationReport()
        report.extend("patch", [])
        report.extend("energy", [Finding("energy", "objective drifted")])
        rendered = report.render()
        assert "pass patch" in rendered
        assert "objective drifted" in rendered


# ---------------------------------------------------------------------------
# the full pipeline verifies clean
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("ra", ["ucc", "ucc-ilp"])
@pytest.mark.parametrize("case_id", RA_CASE_IDS)
def test_all_paper_cases_verify_clean(compiled_case_olds, case_id, ra):
    case = CASES[case_id]
    result = plan_update(compiled_case_olds[case_id], case.new_source, config=UpdateConfig(ra=ra))
    report = verify_update(result)
    assert report.ok, report.render()
    assert set(report.passes_run) == {
        "allocation",
        "layout",
        "addressing",
        "patch",
        "energy",
    }


@pytest.mark.parametrize("case_id", ["D1", "D2"])
def test_data_cases_verify_clean(compiled_case_olds, case_id):
    case = CASES[case_id]
    result = plan_update(compiled_case_olds[case_id], case.new_source)
    report = verify_update(result)
    assert report.ok, report.render()


# ---------------------------------------------------------------------------
# injected corruption is caught and attributed to the right pass
# ---------------------------------------------------------------------------


@pytest.fixture()
def planned_update(compiled_case_olds):
    """A fresh ucc/ucc update of case 3, safe to corrupt in-place."""
    case = CASES["3"]
    return plan_update(compiled_case_olds["3"], case.new_source)


def _assert_rejected(result, pass_name):
    report = verify_update(result)
    assert not report.ok
    with pytest.raises(VerificationError) as excinfo:
        report.raise_if_failed()
    assert pass_name in excinfo.value.failing_passes, str(excinfo.value)
    return excinfo.value


class TestCorruptionDetection:
    def test_clobbered_register_caught_by_allocation_pass(self, planned_update):
        placement = next(
            p
            for record in planned_update.new.records.values()
            for p in record.placements.values()
            if p.pieces
        )
        placement.pieces[0].base = 0  # r0 is reserved for scratch
        _assert_rejected(planned_update, "allocation")

    def test_overlapping_slots_caught_by_layout_pass(self, planned_update):
        layout = planned_update.new.layout
        uids = sorted(layout.addresses)
        assert len(uids) >= 2
        layout.addresses[uids[1]] = layout.addresses[uids[0]]
        _assert_rejected(planned_update, "layout")

    def test_truncated_script_caught_by_patch_pass(self, planned_update):
        assert planned_update.diff.script.primitives
        planned_update.diff.script.primitives.pop()
        _assert_rejected(planned_update, "patch")

    def test_tampered_diff_words_caught_by_energy_audit(self, planned_update):
        planned_update.diff.diff_words += 3
        error = _assert_rejected(planned_update, "energy")
        assert "diff_words" in str(error)

    def test_relocated_object_caught_by_addressing_pass(self, planned_update):
        # Move one referenced object elsewhere in the segment: the
        # emitted lds/sts still target the old address.
        layout = planned_update.new.layout
        uid = max(layout.addresses, key=lambda u: layout.addresses[u])
        layout.addresses[uid] = layout.addresses[uid] + 2
        report = verify_update(planned_update)
        assert not report.ok
        # either the stale address or a resulting overlap must fire
        assert set(report.failing_passes()) & {"addressing", "layout"}


class TestILPAudit:
    def _model(self):
        model = IntegerProgram()
        model.add_objective(model.var("x"), 2.0)
        model.add_constraint([(1.0, "x")], ">=", 1.0)
        return model

    def test_consistent_solution_passes(self):
        model = self._model()
        result = SolveResult(status="optimal", values={"x": 1}, objective=2.0)
        assert audit_ilp_solution(model, result) == []

    def test_drifted_objective_flagged(self):
        model = self._model()
        result = SolveResult(status="optimal", values={"x": 1}, objective=5.0)
        findings = audit_ilp_solution(model, result)
        assert findings and "objective" in findings[0].message

    def test_infeasible_assignment_flagged(self):
        model = self._model()
        result = SolveResult(status="optimal", values={"x": 0}, objective=0.0)
        findings = audit_ilp_solution(model, result)
        assert findings

    def test_non_optimal_results_are_skipped(self):
        model = self._model()
        result = SolveResult(status="infeasible", values={}, objective=0.0)
        assert audit_ilp_solution(model, result) == []


# ---------------------------------------------------------------------------
# checked pipeline mode
# ---------------------------------------------------------------------------


class TestCheckedMode:
    def test_checked_compile_passes_on_clean_source(self):
        case = CASES["1"]
        program = compile_source(case.old_source, checked=True)
        assert program.options.checked

    def test_checked_plan_runs_verifiers(self, compiled_case_olds):
        case = CASES["2"]
        result = plan_update(
            compiled_case_olds["2"], case.new_source, checked=True
        )
        assert result.new.options.checked

    def test_checked_inherited_from_old_options(self):
        case = CASES["1"]
        compiler = Compiler(CompilerOptions(checked=True))
        old = compiler.compile(case.old_source)
        result = UpdatePlanner(old).plan(case.new_source)
        # checked=None inherits from the old program's options
        assert result.new.options.checked
