"""Differential testing: compiled programs vs a Python oracle.

Hypothesis generates random expression trees and loop programs; each is
compiled through the full pipeline (front end → opt → RA → layout →
selection → assembly), executed on the instruction-level simulator, and
checked against direct Python evaluation with AVR wrap-around
semantics.  This is the broadest correctness net over the whole
substrate.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import compile_source
from repro.sim import Simulator

# -- expression generator -----------------------------------------------------

_BIN_OPS = ["+", "-", "*", "&", "|", "^"]
_CMP_OPS = ["==", "!=", "<", "<=", ">", ">="]
_VARS = ["a", "b", "c"]


def _expr_strategy(depth: int):
    leaf = st.one_of(
        st.integers(0, 255).map(str),
        st.sampled_from(_VARS),
    )
    if depth == 0:
        return leaf
    sub = _expr_strategy(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, st.sampled_from(_BIN_OPS), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, st.sampled_from(_CMP_OPS), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        sub.map(lambda e: f"(~{e})"),
        sub.map(lambda e: f"(-{e})"),
        st.tuples(sub, st.integers(0, 7)).map(lambda t: f"({t[0]} << {t[1]})"),
        st.tuples(sub, st.integers(0, 7)).map(lambda t: f"({t[0]} >> {t[1]})"),
    )


def _eval_u8(expr: str, env: dict) -> int:
    """Python oracle with u8 wrap-around at every step.

    Every integer literal is wrapped in the u8 type so that unary
    operators on literals (e.g. ``~0``) follow target semantics too.
    """
    import re

    wrapped = re.sub(r"\b\d+\b", r"_U8(\g<0>)", expr)
    value = eval(  # noqa: S307 - controlled expression language
        wrapped,
        {"__builtins__": {}, "_U8": _U8},
        {k: _U8(v) for k, v in env.items()},
    )
    return int(value) & 0xFF


class _U8(int):
    """u8 with wrap-around arithmetic, mirroring the target semantics."""

    def _wrap(self, value):
        return _U8(int(value) & 0xFF)

    def __add__(self, other):
        return self._wrap(int(self) + int(other))

    def __radd__(self, other):
        return self._wrap(int(other) + int(self))

    def __sub__(self, other):
        return self._wrap(int(self) - int(other))

    def __rsub__(self, other):
        return self._wrap(int(other) - int(self))

    def __mul__(self, other):
        return self._wrap(int(self) * int(other))

    def __rmul__(self, other):
        return self._wrap(int(other) * int(self))

    def __and__(self, other):
        return self._wrap(int(self) & int(other))

    def __rand__(self, other):
        return self._wrap(int(other) & int(self))

    def __or__(self, other):
        return self._wrap(int(self) | int(other))

    def __ror__(self, other):
        return self._wrap(int(other) | int(self))

    def __xor__(self, other):
        return self._wrap(int(self) ^ int(other))

    def __rxor__(self, other):
        return self._wrap(int(other) ^ int(self))

    def __lshift__(self, other):
        return self._wrap(int(self) << (int(other) & 15))

    def __rlshift__(self, other):
        return self._wrap(int(other) << (int(self) & 15))

    def __rshift__(self, other):
        return self._wrap(int(self) >> (int(other) & 15))

    def __rrshift__(self, other):
        return self._wrap(int(other) >> (int(self) & 15))

    def __invert__(self):
        return self._wrap(~int(self))

    def __neg__(self):
        return self._wrap(-int(self))

    def __eq__(self, other):
        return _U8(1 if int(self) == int(other) else 0)

    def __ne__(self, other):
        return _U8(1 if int(self) != int(other) else 0)

    def __lt__(self, other):
        return _U8(1 if int(self) < int(other) else 0)

    def __le__(self, other):
        return _U8(1 if int(self) <= int(other) else 0)

    def __gt__(self, other):
        return _U8(1 if int(self) > int(other) else 0)

    def __ge__(self, other):
        return _U8(1 if int(self) >= int(other) else 0)

    def __hash__(self):
        return int.__hash__(self)


def _run_expr(expr: str, a: int, b: int, c: int) -> int:
    src = f"""
    u8 result;
    void main() {{
        u8 a = {a}; u8 b = {b}; u8 c = {c};
        result = {expr};
        halt();
    }}
    """
    prog = compile_source(src)
    sim = Simulator(prog.image)
    sim.run(max_cycles=200_000)
    assert sim.halted
    return sim.load(prog.layout.addresses["result"])


class TestExpressionDifferential:
    @settings(max_examples=120, deadline=None)
    @given(
        _expr_strategy(3),
        st.integers(0, 255),
        st.integers(0, 255),
        st.integers(0, 255),
    )
    def test_u8_expressions_match_oracle(self, expr, a, b, c):
        expected = _eval_u8(expr, {"a": a, "b": b, "c": c})
        got = _run_expr(expr, a, b, c)
        assert got == expected, f"{expr} with a={a} b={b} c={c}"

    @settings(max_examples=40, deadline=None)
    @given(
        _expr_strategy(2),
        st.integers(0, 255),
        st.integers(0, 255),
        st.integers(0, 255),
    )
    def test_unoptimized_matches_optimized(self, expr, a, b, c):
        """Optimization must not change results."""
        src = f"""
        u8 result;
        void main() {{
            u8 a = {a}; u8 b = {b}; u8 c = {c};
            result = {expr};
            halt();
        }}
        """
        progs = [compile_source(src, optimize=flag) for flag in (True, False)]
        values = []
        for prog in progs:
            sim = Simulator(prog.image)
            sim.run(max_cycles=200_000)
            values.append(sim.load(prog.layout.addresses["result"]))
        assert values[0] == values[1]

    @settings(max_examples=40, deadline=None)
    @given(
        _expr_strategy(2),
        st.integers(0, 255),
        st.integers(0, 255),
        st.integers(0, 255),
    )
    def test_linear_scan_matches_graph_coloring(self, expr, a, b, c):
        """Allocator choice must not change results."""
        src = f"""
        u8 result;
        void main() {{
            u8 a = {a}; u8 b = {b}; u8 c = {c};
            result = {expr};
            halt();
        }}
        """
        values = []
        for ra in ("gcc", "linear"):
            prog = compile_source(src, register_allocator=ra)
            sim = Simulator(prog.image)
            sim.run(max_cycles=200_000)
            values.append(sim.load(prog.layout.addresses["result"]))
        assert values[0] == values[1]


class TestLoopDifferential:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 40),
        st.integers(0, 255),
        st.sampled_from(["+", "^", "|", "&"]),
    )
    def test_accumulation_loops(self, trip, seed, op):
        src = f"""
        u8 acc = {seed};
        void main() {{
            u8 i;
            for (i = 0; i < {trip}; i++) {{ acc = acc {op} i; }}
            halt();
        }}
        """
        prog = compile_source(src)
        sim = Simulator(prog.image)
        sim.run(max_cycles=500_000)
        acc = seed
        for i in range(trip):
            if op == "+":
                acc = (acc + i) & 0xFF
            elif op == "^":
                acc ^= i
            elif op == "|":
                acc |= i
            else:
                acc &= i
        assert sim.load(prog.layout.addresses["acc"]) == acc

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=12))
    def test_array_reversal(self, values):
        n = len(values)
        inits = ", ".join(map(str, values))
        src = f"""
        u8 t[{n}] = {{{inits}}};
        void main() {{
            u8 i = 0;
            u8 j = {n - 1};
            while (i < j) {{
                u8 tmp = t[i];
                t[i] = t[j];
                t[j] = tmp;
                i++;
                j = j - 1;
            }}
            halt();
        }}
        """
        prog = compile_source(src)
        sim = Simulator(prog.image)
        sim.run(max_cycles=500_000)
        base = prog.layout.addresses["t"]
        got = [sim.load(base + k) for k in range(n)]
        assert got == list(reversed(values))
