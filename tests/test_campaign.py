"""Campaign controller tests: determinism, crash consistency, degradation."""

import pytest

from repro import FleetJob, TopologySpec, UpdateSession, compile_source, plan_update
from repro.net import (
    FaultPlan,
    NodeCrash,
    PartitionWindow,
    Topology,
    grid,
    line,
    run_campaign,
)
from repro.net.errors import DisseminationIncomplete
from repro.service import execute_job
from repro.sim import DeviceBoard, Timer
from repro.sim.executor import run_image, traces_equal
from repro.workloads import CASES

BLOB = bytes(range(251)) * 2  # two packets' worth of arbitrary script


def small_plan():
    return FaultPlan(
        crashes=(NodeCrash(node=4, round=2, reboot_round=7),),
        corrupt_prob=0.04,
        seed=11,
    )


class TestCampaignDeterminism:
    def test_identical_inputs_give_byte_identical_reports(self):
        """The acceptance criterion: same seed + same fault plan ⇒
        byte-identical CampaignReport."""
        runs = [
            run_campaign(grid(3, 3), BLOB, small_plan(), loss=0.15, seed=5)
            for _ in range(3)
        ]
        blobs = {report.to_json() for report in runs}
        assert len(blobs) == 1
        digests = {report.digest() for report in runs}
        assert len(digests) == 1

    def test_different_fault_seed_changes_the_run(self):
        base = run_campaign(
            grid(3, 3), BLOB, small_plan(), loss=0.15, seed=5
        )
        other_plan = FaultPlan(
            crashes=small_plan().crashes,
            corrupt_prob=small_plan().corrupt_prob,
            seed=99,
        )
        other = run_campaign(grid(3, 3), BLOB, other_plan, loss=0.15, seed=5)
        assert base.plan_digest != other.plan_digest

    def test_report_json_is_canonical(self):
        report = run_campaign(line(4), BLOB, FaultPlan(), seed=2)
        assert report.to_json() == report.to_json()
        assert '"outcome"' in report.to_json()


class TestCampaignConvergence:
    def test_fault_free_campaign_converges(self):
        report = run_campaign(grid(3, 3), BLOB, FaultPlan(), seed=1)
        assert report.converged
        assert report.quarantined == ()
        assert report.converged_nodes == tuple(range(1, 9))
        assert all(
            version == 1
            for node, version in report.node_versions.items()
            if node != 0
        )

    def test_crashed_node_reboots_resyncs_and_commits(self):
        report = run_campaign(grid(3, 3), BLOB, small_plan(), loss=0.1, seed=3)
        assert report.converged
        assert report.node_versions[4] == 1
        assert any("node 4 crashed" in entry for entry in report.fault_log)
        assert any("node 4 rebooted" in entry for entry in report.fault_log)

    def test_never_rebooting_node_is_quarantined_on_golden_image(self):
        plan = FaultPlan(crashes=(NodeCrash(node=5, round=1),))
        report = run_campaign(grid(3, 3), BLOB, plan, seed=3)
        assert report.outcome == "partial"
        assert report.quarantined == (5,)
        assert report.node_versions[5] == 0  # still the golden image
        assert all(
            report.node_versions[node] == 1
            for node in range(1, 9)
            if node != 5
        )

    def test_unhealed_partition_quarantines_the_island(self):
        plan = FaultPlan(
            partitions=(PartitionWindow(start=1, end=10_000, nodes=(7, 8)),)
        )
        report = run_campaign(grid(3, 3), BLOB, plan, seed=2)
        assert report.outcome == "partial"
        assert report.quarantined == (7, 8)
        # Stall detection: nowhere near the full 200-round budget.
        assert report.rounds < 100

    def test_healed_partition_converges_late(self):
        plan = FaultPlan(
            partitions=(PartitionWindow(start=1, end=12, nodes=(8,)),)
        )
        report = run_campaign(grid(3, 3), BLOB, plan, seed=2)
        assert report.converged
        assert report.rounds >= 12

    def test_unreachable_nodes_quarantined_not_raised(self):
        topo = Topology(
            positions=[(0, 0), (1, 0), (9, 9)],
            neighbors={0: [1], 1: [0], 2: []},
        )
        report = run_campaign(topo, BLOB, FaultPlan(), seed=1)
        assert report.unreachable == (2,)
        assert 2 in report.quarantined
        assert report.outcome == "partial"
        assert report.node_versions[1] == 1

    def test_corruption_is_caught_and_repaired(self):
        plan = FaultPlan(corrupt_prob=0.3, seed=5)
        report = run_campaign(grid(3, 3), BLOB, plan, seed=4)
        assert report.converged
        assert report.crc_rejections > 0

    def test_duplicates_are_deduplicated(self):
        plan = FaultPlan(duplicate_prob=0.4, seed=6)
        report = run_campaign(grid(3, 3), BLOB, plan, seed=4)
        assert report.converged
        assert report.duplicates > 0

    def test_empty_blob_converges_immediately(self):
        report = run_campaign(grid(3, 3), b"", FaultPlan(), seed=1)
        assert report.converged
        assert report.rounds == 0
        assert report.total_energy_j == 0.0

    def test_energy_ledgers_track_retransmission_overhead(self):
        clean = run_campaign(grid(3, 3), BLOB, FaultPlan(), seed=1)
        rough = run_campaign(
            grid(3, 3),
            BLOB,
            FaultPlan(corrupt_prob=0.25, seed=9),
            loss=0.2,
            seed=1,
        )
        assert rough.retransmissions > clean.retransmissions
        assert rough.total_energy_j > clean.total_energy_j
        assert rough.max_node_energy_j() > 0.0
        assert rough.max_node_energy_j(exclude_sink=False) >= (
            rough.max_node_energy_j()
        )


class TestCrashConsistency:
    """A crashed-mid-patch node never executes a torn image — checked
    against the sim executor differential oracle."""

    def _board(self):
        return DeviceBoard(timer=Timer(fire_every_polls=3))

    def test_quarantined_node_runs_golden_committed_nodes_run_new(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        result = plan_update(old, case.new_source)
        blob = result.diff.script.to_bytes() + result.data_script.to_bytes()
        # Crash node 3 early, never reboot: it dies mid-assembly/patch.
        plan = FaultPlan(crashes=(NodeCrash(node=3, round=2),))
        report = run_campaign(
            grid(3, 3),
            blob,
            plan,
            seed=7,
            payload_per_packet=result.packets.payload_per_packet,
            overhead_per_packet=result.packets.overhead_per_packet,
        )
        assert report.quarantined == (3,)

        # Map each node's final version onto the image it would boot.
        images = {0: old.image, 1: result.new.image}
        scratch = compile_source(case.new_source)
        scratch_run = run_image(
            scratch.image, devices=self._board(), max_cycles=4_000_000
        )
        golden_run = run_image(
            old.image, devices=self._board(), max_cycles=4_000_000
        )
        assert golden_run.halted
        for node, version in report.node_versions.items():
            if node == 0:
                continue
            image = images[version]
            run = run_image(
                image, devices=self._board(), max_cycles=4_000_000
            )
            assert run.halted, f"node {node} boots a hanging image"
            if version == 1:
                # Committed nodes behave exactly like a from-scratch
                # compile of the new source: no torn semantics.
                assert traces_equal(run, scratch_run) is None

    def test_crash_mid_patch_then_reboot_reaches_new_version(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        result = plan_update(old, case.new_source)
        blob = result.diff.script.to_bytes() + result.data_script.to_bytes()
        plan = FaultPlan(
            crashes=(NodeCrash(node=3, round=2, reboot_round=6),)
        )
        report = run_campaign(
            grid(3, 3),
            blob,
            plan,
            seed=7,
            payload_per_packet=result.packets.payload_per_packet,
            overhead_per_packet=result.packets.overhead_per_packet,
        )
        assert report.converged
        assert report.node_versions[3] == 1


class TestSessionCampaign:
    def test_push_campaign_converges_and_advances_version(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        session = UpdateSession(old, topology=grid(3, 3), loss=0.05)
        result = session.push_campaign({1: case.new_source}, plan=small_plan())
        assert result.converged
        assert result.nodes_patched == 8
        assert session.version == 1
        assert session.deployed is result.update.new

    def test_partial_campaign_does_not_advance_the_baseline(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        session = UpdateSession(old, topology=grid(3, 3))
        plan = FaultPlan(crashes=(NodeCrash(node=2, round=1),))
        result = session.push_campaign({1: case.new_source}, plan=plan)
        assert not result.converged
        assert result.report.quarantined == (2,)
        assert session.version == 0
        assert session.deployed is old

    def test_push_update_raises_structured_incomplete(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        session = UpdateSession(old, topology=line(8), loss=0.99, loss_seed=1)
        with pytest.raises(DisseminationIncomplete) as excinfo:
            session.push_update(case.new_source)
        error = excinfo.value
        assert error.rounds == 200
        assert error.missing  # per-node missing-packet counts
        assert all(count >= 1 for count in error.missing.values())
        assert isinstance(error, RuntimeError)  # legacy handlers survive


class TestFleetCampaign:
    def _job(self, **overrides):
        case = CASES["6"]
        spec = dict(
            old_source=case.old_source,
            new_source=case.new_source,
            topology=TopologySpec.grid(3, 3),
            loss=0.05,
            fault_plan=small_plan(),
        )
        spec.update(overrides)
        return FleetJob(**spec)

    def test_job_runs_campaign_and_reports_digest(self):
        outcome = execute_job(self._job())
        assert outcome.ok
        assert outcome.campaign_outcome == "converged"
        assert outcome.nodes_quarantined == 0
        assert outcome.nodes_patched == 8
        assert len(outcome.campaign_digest) == 64
        assert execute_job(self._job()).campaign_digest == (
            outcome.campaign_digest
        )

    def test_partial_fleet_returns_structured_outcome_not_exception(self):
        """The graceful-degradation acceptance criterion."""
        plan = FaultPlan(
            partitions=(PartitionWindow(start=1, end=10_000, nodes=(8,)),)
        )
        outcome = execute_job(self._job(fault_plan=plan, loss=0.0))
        assert outcome.ok  # no exception path
        assert outcome.campaign_outcome == "partial"
        assert outcome.nodes_quarantined == 1
        assert outcome.nodes_patched == 7

    def test_fault_plan_requires_topology(self):
        with pytest.raises(ValueError):
            self._job(topology=None)

    def test_fault_plan_changes_job_digest(self):
        with_faults = self._job()
        without = self._job(fault_plan=None)
        assert with_faults.digest() != without.digest()

    def test_lossy_job_failure_is_structured(self):
        case = CASES["6"]
        job = FleetJob(
            old_source=case.old_source,
            new_source=case.new_source,
            topology=TopologySpec.line(8),
            loss=0.99,
            loss_seed=1,
        )
        outcome = execute_job(job)
        assert not outcome.ok
        assert "DisseminationIncomplete" in outcome.error
        assert "missing" in outcome.error


class TestCampaignCli:
    def test_cli_converged_exits_zero(self, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "--case",
                "6",
                "--grid",
                "3",
                "--crash",
                "4@2:8",
                "--corrupt",
                "0.03",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "fault log" in out

    def test_cli_partial_exits_one(self, capsys):
        from repro.cli import main

        code = main(
            ["campaign", "--case", "6", "--grid", "3",
             "--partition", "1-9999:8"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "quarantined: 8" in out

    def test_cli_bad_crash_spec_exits_two(self, capsys):
        from repro.cli import main

        code = main(["campaign", "--case", "6", "--crash", "nope"])
        assert code == 2
        assert "--crash" in capsys.readouterr().err


class TestFaultFuzzAcceptance:
    def test_fifty_case_seeded_sweep_passes(self):
        """The fuzz acceptance criterion: the convergence-or-quarantine
        oracle holds over a 50-case seeded campaign."""
        from repro.fuzz import run_fault_fuzz

        report = run_fault_fuzz(seed=2026, iters=50)
        assert report.ok, report.render()
        assert report.converged + report.partial == 50
        # The sweep must actually exercise the fault space.
        assert report.crashes_injected > 0
        assert report.partitions_injected > 0
        assert report.quarantined_total >= 0

    def test_sweep_digest_is_reproducible(self):
        from repro.fuzz import run_fault_fuzz

        a = run_fault_fuzz(seed=7, iters=6)
        b = run_fault_fuzz(seed=7, iters=6)
        assert a.digest == b.digest
        assert a.ok and b.ok
