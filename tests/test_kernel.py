"""Event-kernel unit tests: ordering, cancellation, energy, determinism.

These pin the contract docs/SIMULATOR.md documents: events dispatch in
``(time, seq, node)`` order, cancellation never reorders survivors,
``run(max_time)`` leaves the clock at the budget, and the duty-cycle
ledger prices TX/RX/idle-listen/sleep exactly as specified.
"""

import pytest

from repro.energy import MICA2
from repro.net.errors import NetConfigError
from repro.net.kernel import (
    ALWAYS_ON,
    LPL_1,
    LPL_10,
    DutyCycle,
    SimKernel,
    rounds_equivalent,
)


class TestEventOrdering:
    def test_events_dispatch_in_time_order(self):
        kernel = SimKernel(4)
        order = []
        kernel.schedule(3.0, 0, lambda: order.append("c"))
        kernel.schedule(1.0, 0, lambda: order.append("a"))
        kernel.schedule(2.0, 0, lambda: order.append("b"))
        kernel.run()
        assert order == ["a", "b", "c"]
        assert kernel.now == 3.0

    def test_simultaneous_events_pop_in_schedule_order(self):
        """Ties at one instant break by the schedule counter, never by
        hash or callback identity — the heart of the determinism
        contract."""
        kernel = SimKernel(8)
        order = []
        for tag in range(6):
            kernel.schedule(1.0, 5 - tag, lambda tag=tag: order.append(tag))
        kernel.run()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_handler_may_schedule_more_events(self):
        kernel = SimKernel(1)
        order = []

        def first():
            order.append("first")
            kernel.schedule(0.5, 0, lambda: order.append("nested"))

        kernel.schedule(1.0, 0, first)
        kernel.schedule(2.0, 0, lambda: order.append("second"))
        kernel.run()
        assert order == ["first", "nested", "second"]

    def test_cannot_schedule_into_the_past(self):
        kernel = SimKernel(1)
        with pytest.raises(NetConfigError):
            kernel.schedule(-0.1, 0, lambda: None)
        kernel.schedule(1.0, 0, lambda: None)
        kernel.run()
        with pytest.raises(NetConfigError):
            kernel.schedule_at(0.5, 0, lambda: None)

    def test_node_count_validated(self):
        with pytest.raises(NetConfigError):
            SimKernel(0)


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        kernel = SimKernel(1)
        order = []
        handle = kernel.schedule(1.0, 0, lambda: order.append("dead"))
        kernel.schedule(2.0, 0, lambda: order.append("alive"))
        handle.cancel()
        kernel.run()
        assert order == ["alive"]

    def test_cancellation_preserves_survivor_order(self):
        kernel = SimKernel(4)
        order = []
        handles = [
            kernel.schedule(1.0, 0, lambda tag=tag: order.append(tag))
            for tag in range(8)
        ]
        for tag in (1, 3, 5):
            handles[tag].cancel()
        kernel.run()
        assert order == [0, 2, 4, 6, 7]

    def test_pending_counts_cancelled_entries(self):
        kernel = SimKernel(1)
        handle = kernel.schedule(1.0, 0, lambda: None)
        handle.cancel()
        assert kernel.pending() == 1


class TestStopAndBudget:
    def test_stop_ends_after_current_handler(self):
        kernel = SimKernel(1)
        order = []

        def stopper():
            order.append("stop")
            kernel.stop()

        kernel.schedule(1.0, 0, stopper)
        kernel.schedule(2.0, 0, lambda: order.append("never"))
        kernel.run()
        assert order == ["stop"]
        assert kernel.pending() == 1

    def test_max_time_rests_clock_at_budget(self):
        kernel = SimKernel(1)
        fired = []
        kernel.schedule(1.0, 0, lambda: fired.append(1.0))
        kernel.schedule(10.0, 0, lambda: fired.append(10.0))
        end = kernel.run(max_time=5.0)
        assert fired == [1.0]
        assert end == 5.0
        assert kernel.now == 5.0

    def test_events_dispatched_counter(self):
        kernel = SimKernel(1)
        for _ in range(3):
            kernel.schedule(1.0, 0, lambda: None)
        kernel.run()
        assert kernel.events_dispatched == 3


class TestEnergyModel:
    def test_duty_cycle_validation(self):
        with pytest.raises(NetConfigError):
            DutyCycle(1.5)
        with pytest.raises(NetConfigError):
            DutyCycle(-0.01)
        assert ALWAYS_ON.listen_fraction == 1.0
        assert LPL_10.listen_fraction == 0.10
        assert LPL_1.listen_fraction == 0.01

    def test_ledger_prices_all_four_radio_states(self):
        """One node, 10 simulated seconds, 1 s TX and 2 s RX.

        Under ALWAYS_ON the 10 s listen budget minus the 2 s spent
        actively receiving is 8 s of idle-listening and the sleep term
        clamps to zero; under LPL_10 the 1 s listen budget is already
        over-covered by RX, so idle is zero and the remaining 7 s are
        sleep.
        """
        volts = MICA2.voltage_v
        cases = (
            (ALWAYS_ON, 8.0, 0.0),
            (LPL_10, 0.0, 7.0),
        )
        for duty, idle_s, sleep_s in cases:
            kernel = SimKernel(1, power=MICA2, duty_cycle=duty)
            kernel.account_tx(0, MICA2.radio_bps)  # exactly 1 s of TX
            kernel.account_rx(0, 2 * MICA2.radio_bps)  # exactly 2 s of RX
            kernel.schedule(10.0, 0, lambda: None)
            kernel.run()
            ledger = kernel.ledgers()[0]
            assert ledger.tx_j == pytest.approx(MICA2.radio_tx_a * volts)
            assert ledger.rx_j == pytest.approx(2 * MICA2.radio_rx_a * volts)
            assert ledger.idle_j == pytest.approx(
                idle_s * MICA2.radio_rx_a * volts
            )
            assert ledger.sleep_j == pytest.approx(
                sleep_s * MICA2.cpu_standby_a * volts
            )
            assert ledger.total_j == pytest.approx(
                ledger.tx_j + ledger.rx_j + ledger.idle_j + ledger.sleep_j
            )

    def test_sleep_fraction_tracks_duty_cycle(self):
        kernel = SimKernel(2, duty_cycle=LPL_1)
        kernel.schedule(100.0, 0, lambda: None)
        kernel.run()
        # No radio traffic at all: sleep is everything but the listen
        # budget.
        assert kernel.sleep_fraction() == pytest.approx(0.99)
        assert SimKernel(1).sleep_fraction() == 0.0


class TestDeterminism:
    def test_identical_schedules_identical_dispatch(self):
        def drive():
            kernel = SimKernel(4)
            order = []
            for tag in range(20):
                kernel.schedule(
                    (tag * 7) % 5 * 0.25,
                    tag % 4,
                    lambda tag=tag: order.append(tag),
                )
            kernel.run()
            return order

        assert drive() == drive()


def test_rounds_equivalent():
    assert rounds_equivalent(0.0, 1.0) == 0
    assert rounds_equivalent(0.1, 1.0) == 1
    assert rounds_equivalent(2.0, 1.0) == 2
    assert rounds_equivalent(2.5, 1.0) == 3
    assert rounds_equivalent(10.0, 2.0) == 5
