"""Lossy-dissemination tests."""

import pytest

from repro.diff import EditScript, packetize
from repro.net import disseminate_lossy, grid, line


def make_packets(script_bytes=60):
    script = EditScript()
    for _ in range(script_bytes):
        script.remove(1)
    return packetize(script)


class TestLossyDissemination:
    def test_zero_loss_completes_in_depth_rounds(self):
        topo = line(6)
        result = disseminate_lossy(topo, make_packets(), loss=0.0, seed=3)
        assert result.complete
        assert result.rounds >= topo.max_hops()

    def test_all_nodes_receive_everything(self):
        topo = grid(4, 4)
        result = disseminate_lossy(topo, make_packets(), loss=0.3, seed=7)
        assert result.complete

    def test_deterministic_given_seed(self):
        topo = grid(3, 3)
        a = disseminate_lossy(topo, make_packets(), loss=0.2, seed=11)
        b = disseminate_lossy(topo, make_packets(), loss=0.2, seed=11)
        assert a.broadcasts == b.broadcasts
        assert a.total_energy_j == b.total_energy_j

    def test_loss_increases_energy(self):
        topo = grid(4, 4)
        clean = disseminate_lossy(topo, make_packets(), loss=0.0, seed=5)
        lossy = disseminate_lossy(topo, make_packets(), loss=0.4, seed=5)
        assert lossy.total_energy_j > clean.total_energy_j
        assert lossy.broadcasts > clean.broadcasts

    def test_loss_amplifies_script_size_savings(self):
        """A smaller script saves even more joules on lossy links."""
        topo = grid(4, 4)
        small, big = make_packets(30), make_packets(120)
        saving_clean = (
            disseminate_lossy(topo, big, loss=0.0, seed=2).total_energy_j
            - disseminate_lossy(topo, small, loss=0.0, seed=2).total_energy_j
        )
        saving_lossy = (
            disseminate_lossy(topo, big, loss=0.3, seed=2).total_energy_j
            - disseminate_lossy(topo, small, loss=0.3, seed=2).total_energy_j
        )
        assert saving_clean > 0
        assert saving_lossy > saving_clean

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            disseminate_lossy(line(3), make_packets(), loss=1.0)

    def test_nacks_counted(self):
        topo = line(4)
        result = disseminate_lossy(topo, make_packets(), loss=0.2, seed=9)
        assert result.nacks > 0

    def test_empty_script_trivially_complete(self):
        topo = grid(3, 3)
        result = disseminate_lossy(topo, packetize(EditScript()), loss=0.5)
        assert result.complete
        assert result.rounds == 0
        assert result.total_energy_j == 0.0
