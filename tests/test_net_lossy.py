"""Lossy-dissemination tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diff import EditScript, packetize
from repro.net import (
    DisconnectedTopologyError,
    Topology,
    disseminate_lossy,
    grid,
    line,
)


def make_packets(script_bytes=60):
    script = EditScript()
    for _ in range(script_bytes):
        script.remove(1)
    return packetize(script)


class TestLossyDissemination:
    def test_zero_loss_completes_in_depth_rounds(self):
        topo = line(6)
        result = disseminate_lossy(topo, make_packets(), loss=0.0, seed=3)
        assert result.complete
        assert result.rounds >= topo.max_hops()

    def test_all_nodes_receive_everything(self):
        topo = grid(4, 4)
        result = disseminate_lossy(topo, make_packets(), loss=0.3, seed=7)
        assert result.complete

    def test_deterministic_given_seed(self):
        topo = grid(3, 3)
        a = disseminate_lossy(topo, make_packets(), loss=0.2, seed=11)
        b = disseminate_lossy(topo, make_packets(), loss=0.2, seed=11)
        assert a.broadcasts == b.broadcasts
        assert a.total_energy_j == b.total_energy_j

    def test_loss_increases_energy(self):
        topo = grid(4, 4)
        clean = disseminate_lossy(topo, make_packets(), loss=0.0, seed=5)
        lossy = disseminate_lossy(topo, make_packets(), loss=0.4, seed=5)
        assert lossy.total_energy_j > clean.total_energy_j
        assert lossy.broadcasts > clean.broadcasts

    def test_loss_amplifies_script_size_savings(self):
        """A smaller script saves even more joules on lossy links."""
        topo = grid(4, 4)
        small, big = make_packets(30), make_packets(120)
        saving_clean = (
            disseminate_lossy(topo, big, loss=0.0, seed=2).total_energy_j
            - disseminate_lossy(topo, small, loss=0.0, seed=2).total_energy_j
        )
        saving_lossy = (
            disseminate_lossy(topo, big, loss=0.3, seed=2).total_energy_j
            - disseminate_lossy(topo, small, loss=0.3, seed=2).total_energy_j
        )
        assert saving_clean > 0
        assert saving_lossy > saving_clean

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            disseminate_lossy(line(3), make_packets(), loss=1.0)

    def test_nacks_counted(self):
        topo = line(4)
        result = disseminate_lossy(topo, make_packets(), loss=0.2, seed=9)
        assert result.nacks > 0

    def test_empty_script_trivially_complete(self):
        topo = grid(3, 3)
        result = disseminate_lossy(topo, packetize(EditScript()), loss=0.5)
        assert result.complete
        assert result.rounds == 0
        assert result.total_energy_j == 0.0

    def test_disconnected_topology_fails_fast(self):
        # Node 3 has no links at all: unreachable from the sink.
        topo = Topology(
            positions=[(0, 0), (1, 0), (2, 0), (9, 9)],
            neighbors={0: [1], 1: [0, 2], 2: [1], 3: []},
        )
        with pytest.raises(DisconnectedTopologyError) as excinfo:
            disseminate_lossy(topo, make_packets(), loss=0.1, seed=1)
        assert excinfo.value.unreachable == (3,)
        assert "node(s) 3" in str(excinfo.value)
        # Still a ValueError, so pre-existing handlers keep working.
        assert isinstance(excinfo.value, ValueError)

    def test_missing_counts_empty_when_complete(self):
        result = disseminate_lossy(grid(3, 3), make_packets(), loss=0.2, seed=4)
        assert result.complete
        assert result.missing == {}

    def test_missing_counts_reported_when_budget_exhausted(self):
        result = disseminate_lossy(
            line(6), make_packets(120), loss=0.9, seed=2, max_rounds=3
        )
        assert not result.complete
        assert result.missing
        assert all(
            1 <= count <= result.packets for count in result.missing.values()
        )

    def test_max_node_energy_exclude_sink(self):
        result = disseminate_lossy(line(5), make_packets(), loss=0.2, seed=6)
        with_sink = result.max_node_energy_j()
        without_sink = result.max_node_energy_j(exclude_sink=True)
        assert without_sink <= with_sink
        non_sink_max = max(
            ledger.total_j
            for node, ledger in result.ledgers.items()
            if node != 0
        )
        assert without_sink == non_sink_max


class TestLossyProperties:
    """Property and regression coverage of the lossy protocol."""

    @settings(max_examples=25, deadline=None)
    @given(
        side=st.integers(min_value=2, max_value=4),
        script_bytes=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_lossless_flood_is_ideal(self, side, script_bytes, seed):
        """With loss=0.0 the repair machinery must never engage: the
        flood completes in exactly the hop depth with zero drops, and
        every node receives each packet exactly once."""
        topo = grid(side, side)
        packets = make_packets(script_bytes)
        result = disseminate_lossy(topo, packets, loss=0.0, seed=seed)
        assert result.complete
        assert result.drops == 0
        assert result.rounds == topo.max_hops()
        for node, ledger in result.ledgers.items():
            if node == 0:
                continue
            assert ledger.packets_received == result.packets

    def test_lossy_result_deterministic_across_repeats(self):
        """Same seed ⇒ field-identical LossyResult, run after run."""
        topo = grid(4, 4)
        runs = [
            disseminate_lossy(topo, make_packets(90), loss=0.35, seed=17)
            for _ in range(3)
        ]
        first = runs[0]
        for other in runs[1:]:
            assert other.packets == first.packets
            assert other.rounds == first.rounds
            assert other.broadcasts == first.broadcasts
            assert other.nacks == first.nacks
            assert other.drops == first.drops
            assert other.complete == first.complete
            assert other.missing == first.missing
            for node, ledger in first.ledgers.items():
                twin = other.ledgers[node]
                assert twin.tx_j == ledger.tx_j
                assert twin.rx_j == ledger.rx_j
                assert twin.cpu_j == ledger.cpu_j
                assert twin.packets_sent == ledger.packets_sent
                assert twin.packets_received == ledger.packets_received
