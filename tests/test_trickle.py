"""Trickle and gossip protocol tests on the event kernel.

Convergence under loss and faults, the Trickle economics (suppression,
interval resets, receiver-driven requests), determinism of the
KernelReport digest, and the CampaignReport-compatible surface.
"""

import pytest

from repro.net import (
    FaultPlan,
    GossipParams,
    NodeCrash,
    PartitionWindow,
    TrickleParams,
    grid,
    run_gossip,
    run_trickle,
)
from repro.net.errors import NetConfigError
from repro.net.kernel import KernelReport
from repro.net.topology import random_geometric

BLOB = bytes(range(251)) * 2  # 502 B -> 23 packets at the default payload


class TestTrickleConvergence:
    def test_converges_on_lossless_grid(self):
        report = run_trickle(grid(4, 4), BLOB, seed=1)
        assert report.converged
        assert report.outcome == "converged"
        assert report.converged_nodes == tuple(range(1, 16))
        assert all(
            version == 1
            for node, version in report.node_versions.items()
            if node != 0
        )
        assert report.transmissions >= report.packets
        assert report.beacons > 0

    def test_converges_under_loss(self):
        report = run_trickle(grid(5, 5), BLOB, loss=0.2, seed=3)
        assert report.converged
        assert report.drops > 0

    def test_time_budget_gives_partial_not_raise(self):
        report = run_trickle(grid(5, 5), BLOB, loss=0.3, seed=3, max_time=0.5)
        assert not report.converged
        assert report.outcome == "partial"
        assert report.quarantined  # the nodes still missing packets
        assert report.time_s <= 0.5

    def test_empty_blob_converges_immediately(self):
        report = run_trickle(grid(3, 3), b"", seed=1)
        assert report.converged
        assert report.time_s == 0.0
        assert report.transmissions == 0

    def test_invalid_params_raise_structured(self):
        with pytest.raises(NetConfigError):
            TrickleParams(imin_s=0.0)
        with pytest.raises(NetConfigError):
            TrickleParams(imax_s=0.5)  # < imin_s
        with pytest.raises(NetConfigError):
            TrickleParams(k=0)
        with pytest.raises(NetConfigError):
            TrickleParams(burst=0)
        with pytest.raises(NetConfigError):
            run_trickle(grid(3, 3), BLOB, loss=1.0)


class TestTrickleEconomics:
    def test_dense_fleet_suppresses_and_requests(self):
        """On a dense neighbourhood the redundancy constant keeps most
        nodes quiet and transfers go through explicit requests."""
        topo = random_geometric(60, radio_range=0.45, seed=2)
        report = run_trickle(topo, BLOB, loss=0.1, seed=2)
        assert report.converged
        assert report.suppressed > 0
        assert report.requests > 0
        assert report.resets > 0

    def test_converged_fleet_beacons_decay(self):
        """After convergence the interval doubles to imax: doubling the
        time budget far less than doubles the beacon count."""
        params = TrickleParams(imin_s=0.5, imax_s=8.0)
        topo = grid(4, 4)
        short = run_trickle(topo, BLOB, seed=1, params=params, max_time=40.0)
        # Same run, but keep simulating long after convergence — the
        # kernel stops at fleet commit, so drive an unconvergeable node
        # count of extra quiet time via a fresh run with a longer budget
        # and a lost node that never commits.
        plan = FaultPlan(crashes=(NodeCrash(node=15, round=1),))
        long = run_trickle(
            topo, BLOB, plan, seed=1, params=params, max_time=400.0
        )
        quiet_time = long.time_s - short.time_s
        assert quiet_time > 100.0
        # Beacon rate in the quiet tail is bounded by ~nodes/imax_s.
        tail_beacons = long.beacons - short.beacons
        assert tail_beacons < quiet_time * 16 / params.imax_s * 2


class TestTrickleFaults:
    def test_crash_without_reboot_is_quarantined(self):
        plan = FaultPlan(crashes=(NodeCrash(node=5, round=1),))
        report = run_trickle(grid(3, 3), BLOB, plan, seed=1, max_time=60.0)
        assert not report.converged
        assert report.quarantined == (5,)
        assert report.node_versions[5] == 0
        assert any("crashed" in line for line in report.fault_log)

    def test_crash_with_reboot_recovers(self):
        plan = FaultPlan(
            crashes=(NodeCrash(node=4, round=1, reboot_round=6),),
        )
        report = run_trickle(grid(3, 3), BLOB, plan, seed=1)
        assert report.converged
        assert any("rebooted" in line for line in report.fault_log)

    def test_partition_heals_and_converges(self):
        plan = FaultPlan(partitions=(PartitionWindow(1, 8, (4, 5, 7, 8)),))
        report = run_trickle(grid(3, 3), BLOB, plan, seed=1)
        assert report.converged
        assert any("isolated" in line for line in report.fault_log)
        assert any("healed" in line for line in report.fault_log)

    def test_corruption_and_duplication_coins(self):
        plan = FaultPlan(corrupt_prob=0.05, duplicate_prob=0.1, seed=9)
        report = run_trickle(grid(4, 4), BLOB, plan, loss=0.1, seed=2)
        assert report.converged
        assert report.crc_rejections > 0
        assert report.plan_digest == plan.digest()


class TestGossip:
    def test_converges_on_lossy_grid(self):
        report = run_gossip(grid(4, 4), BLOB, loss=0.1, seed=2)
        assert report.converged
        assert report.protocol == "gossip"
        assert report.transmissions >= report.packets

    def test_invalid_params_raise(self):
        with pytest.raises(NetConfigError):
            GossipParams(period_s=0.0)
        with pytest.raises(NetConfigError):
            GossipParams(burst=0)


class TestKernelReportSurface:
    """KernelReport duck-types the CampaignReport consumer surface."""

    def test_render_and_totals(self):
        from repro.net.kernel import ALWAYS_ON

        report = run_trickle(
            grid(3, 3), BLOB, loss=0.1, seed=4, duty_cycle=ALWAYS_ON
        )
        assert isinstance(report, KernelReport)
        text = report.render()
        assert "trickle" in text
        assert "beacons" in text
        assert report.total_energy_j > 0.0
        # Always-on radios pay for every idle-listening second.
        assert report.total_idle_j > 0.0
        assert report.max_node_energy_j() > 0.0
        assert 0.0 <= report.sleep_fraction <= 1.0

    def test_every_ledger_has_idle_and_sleep(self):
        report = run_trickle(grid(3, 3), BLOB, seed=1)
        for ledger in report.ledgers.values():
            assert ledger.idle_j >= 0.0
            assert ledger.sleep_j >= 0.0
            assert ledger.total_j >= ledger.idle_j + ledger.sleep_j

    def test_repeat_runs_are_byte_identical(self):
        plan = FaultPlan(
            crashes=(NodeCrash(node=4, round=2, reboot_round=7),),
            corrupt_prob=0.04,
            seed=11,
        )
        blobs = {
            run_trickle(grid(3, 3), BLOB, plan, loss=0.15, seed=5).to_json()
            for _ in range(3)
        }
        assert len(blobs) == 1

    def test_gossip_repeat_runs_are_byte_identical(self):
        blobs = {
            run_gossip(grid(3, 3), BLOB, loss=0.1, seed=5).to_json()
            for _ in range(2)
        }
        assert len(blobs) == 1

    def test_digest_is_sha256_of_to_json(self):
        report = run_trickle(grid(3, 3), b"x" * 50, seed=1)
        assert len(report.digest()) == 64
