"""Smoke tests: every shipped example must run clean and tell its story."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXPECTED_SNIPPETS = {
    "quickstart.py": ["UCC saves", "byte-identical"],
    "ota_campaign.py": ["campaign totals", "network energy"],
    "energy_tradeoff.py": ["16,000 executions", "chosen"],
    "data_layout_demo.py": ["UCC-DA relayout", "Diff_inst"],
    "ilp_playground.py": ["binary variables", "SAME decisions"],
    "lossy_network_update.py": ["hottest sites", "mJ"],
}


def run_example(name: str) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_SNIPPETS))
def test_example_runs_and_reports(name):
    stdout = run_example(name)
    for snippet in EXPECTED_SNIPPETS[name]:
        assert snippet in stdout, f"{name} output missing {snippet!r}"


def test_every_example_file_is_covered():
    files = {
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    }
    assert files == set(EXPECTED_SNIPPETS)
