"""Golden regression tests: pin the paper-facing numbers.

The JSON files under ``tests/golden/`` record, for every Figure 9
update case, the script sizes the planner ships under both strategies,
and — for the Figure 12 sweep cases — the UCC/GCC update-energy ratio
at a fixed execution count.  Script sizes are pinned exactly (they are
fully deterministic); energy ratios get a small relative tolerance so
benign energy-model recalibrations don't churn the goldens.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/golden/regen.py
"""

import json
from pathlib import Path

import pytest

from repro.core import measure_cycles, plan_update
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.workloads import CASES
from repro.config import UpdateConfig

GOLDEN = Path(__file__).parent / "golden"
SCRIPTS = json.loads((GOLDEN / "fig09_scripts.json").read_text())
ENERGY = json.loads((GOLDEN / "fig12_energy.json").read_text())

ENERGY_RTOL = 0.02


def test_goldens_cover_every_case():
    assert set(SCRIPTS) == set(CASES)


@pytest.mark.parametrize("cid", sorted(SCRIPTS))
@pytest.mark.parametrize("strategy", ["gcc/gcc", "ucc/ucc"])
def test_fig09_script_sizes_pinned(cid, strategy, compiled_case_olds):
    ra, da = strategy.split("/")
    case = CASES[cid]
    result = plan_update(compiled_case_olds[cid], case.new_source, config=UpdateConfig(ra=ra, da=da))
    expected = SCRIPTS[cid][strategy]
    got = {
        "diff_inst": result.diff_inst,
        "script_bytes": result.script_bytes,
        "packets": result.packets.packet_count,
    }
    assert got == expected, (
        f"case {cid} {strategy}: planner now ships {got}, golden says "
        f"{expected} — regenerate tests/golden/ if this is intentional"
    )


@pytest.mark.parametrize("cid", sorted(ENERGY, key=lambda c: int(c)))
def test_fig12_energy_ratio_pinned(cid, compiled_case_olds):
    case = CASES[cid]
    old = compiled_case_olds[cid]
    cnt = ENERGY[cid]["cnt"]
    gcc = measure_cycles(plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="ucc")))
    ucc = measure_cycles(plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc")))
    ratio = ucc.diff_energy(cnt, DEFAULT_ENERGY_MODEL) / gcc.diff_energy(
        cnt, DEFAULT_ENERGY_MODEL
    )
    assert ratio == pytest.approx(
        ENERGY[cid]["ratio_ucc_over_gcc"], rel=ENERGY_RTOL
    )
    # UCC never costs more energy than the GCC baseline on the sweep
    # cases at this Cnt (Figure 12's non-negative savings).
    assert ratio <= 1.0 + 1e-9
