"""Flood campaign on the event kernel: parity, dispatch, stability.

The flood campaign runs its rounds through the event kernel by default
(``repro.fastpath``) with the legacy synchronous while-loop kept as
the reference path.  These tests pin the byte-identity of the two
drivers, the ``protocol=`` dispatch surface, and digest stability
across ``PYTHONHASHSEED`` (the kernel heap must never leak hash order
into a report).
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import UpdateSession, compile_source
from repro.fastpath import reference_mode
from repro.net import (
    FaultPlan,
    NodeCrash,
    PartitionWindow,
    grid,
    random_geometric,
    run_campaign,
)
from repro.net.campaign import PROTOCOLS, CampaignReport
from repro.net.errors import NetConfigError
from repro.net.kernel import KernelReport
from repro.workloads import CASES

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

BLOB = bytes(range(251)) * 2


def heavy_plan():
    return FaultPlan(
        crashes=(
            NodeCrash(node=7, round=2, reboot_round=5),
            NodeCrash(node=13, round=4, reboot_round=9),
            NodeCrash(node=3, round=6),
        ),
        partitions=(PartitionWindow(3, 7, (10, 11, 15, 16)),),
        corrupt_prob=0.02,
        duplicate_prob=0.03,
        seed=17,
    )


class TestKernelLegacyParity:
    """The kernel driver and the legacy round loop are byte-identical."""

    @pytest.mark.parametrize(
        "topology,loss,plan",
        [
            (grid(5, 5), 0.0, None),
            (grid(5, 5), 0.15, heavy_plan()),
            (random_geometric(40, radio_range=0.3, seed=2), 0.1, None),
            (random_geometric(40, radio_range=0.3, seed=2), 0.2, heavy_plan()),
        ],
        ids=["grid-clean", "grid-faulted", "geo-lossy", "geo-faulted"],
    )
    def test_drivers_agree_byte_for_byte(self, topology, loss, plan):
        fast = run_campaign(topology, BLOB, plan, loss=loss, seed=5)
        with reference_mode(True):
            legacy = run_campaign(topology, BLOB, plan, loss=loss, seed=5)
        assert fast.to_json() == legacy.to_json()
        assert fast.digest() == legacy.digest()

    def test_flood_still_returns_campaign_report(self):
        report = run_campaign(grid(3, 3), BLOB, loss=0.1, seed=1)
        assert isinstance(report, CampaignReport)
        assert report.converged


class TestProtocolDispatch:
    def test_protocols_constant(self):
        assert PROTOCOLS == ("flood", "trickle", "gossip")

    def test_trickle_dispatch_returns_kernel_report(self):
        report = run_campaign(
            grid(3, 3), BLOB, loss=0.1, seed=1, protocol="trickle"
        )
        assert isinstance(report, KernelReport)
        assert report.protocol == "trickle"
        assert report.converged

    def test_gossip_dispatch_returns_kernel_report(self):
        report = run_campaign(grid(3, 3), BLOB, seed=1, protocol="gossip")
        assert isinstance(report, KernelReport)
        assert report.protocol == "gossip"
        assert report.converged

    def test_max_rounds_caps_kernel_time(self):
        # round budget * ROUND_S becomes the kernel time budget; an
        # impossible budget comes back partial, never raises.
        report = run_campaign(
            grid(4, 4), BLOB, loss=0.2, seed=1, protocol="trickle",
            max_rounds=1,
        )
        assert not report.converged
        assert report.time_s <= 1.0

    def test_unknown_protocol_raises_structured(self):
        with pytest.raises(NetConfigError):
            run_campaign(grid(3, 3), BLOB, protocol="deluge")

    def test_fault_plans_work_across_protocols(self):
        plan = FaultPlan(crashes=(NodeCrash(node=4, round=2, reboot_round=6),))
        for protocol in PROTOCOLS:
            report = run_campaign(
                grid(3, 3), BLOB, plan, loss=0.05, seed=3, protocol=protocol
            )
            assert report.converged, protocol
            assert report.plan_digest == plan.digest()


class TestSessionProtocol:
    def test_push_campaign_over_trickle(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        session = UpdateSession(old, topology=grid(3, 3), loss=0.05)
        result = session.push_campaign({1: case.new_source}, protocol="trickle")
        assert result.converged
        assert isinstance(result.report, KernelReport)
        assert result.nodes_patched == 8
        assert session.version == 1
        assert result.network_energy_j > 0.0


_TRICKLE_DIGEST = """
from repro.net.campaign import run_campaign
from repro.net.faults import FaultPlan, NodeCrash
from repro.net.topology import grid
plan = FaultPlan(crashes=(NodeCrash(node=2, round=2, reboot_round=5),),
                 corrupt_prob=0.1, seed=7)
report = run_campaign(grid(3, 3), b"x" * 600, loss=0.1, seed=3, plan=plan,
                      protocol="trickle")
print(report.digest())
report = run_campaign(grid(3, 3), b"x" * 600, loss=0.1, seed=3, plan=plan,
                      protocol="gossip")
print(report.digest())
"""

_FLOOD_PARITY_DIGEST = """
from repro.fastpath import reference_mode
from repro.net.campaign import run_campaign
from repro.net.faults import FaultPlan, NodeCrash, PartitionWindow
from repro.net.topology import grid
plan = FaultPlan(crashes=(NodeCrash(node=2, round=2, reboot_round=5),),
                 partitions=(PartitionWindow(1, 4, (5, 6, 8)),),
                 corrupt_prob=0.05, duplicate_prob=0.05, seed=7)
fast = run_campaign(grid(4, 4), b"y" * 400, loss=0.1, seed=3, plan=plan)
with reference_mode(True):
    legacy = run_campaign(grid(4, 4), b"y" * 400, loss=0.1, seed=3, plan=plan)
assert fast.to_json() == legacy.to_json()
print(fast.digest())
"""


def _run_under_hashseed(snippet: str, seed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": seed,
            "PYTHONPATH": REPO_SRC,
            "PATH": "/usr/bin:/bin",
        },
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize(
    "snippet",
    [_TRICKLE_DIGEST, _FLOOD_PARITY_DIGEST],
    ids=["kernel-protocols", "flood-parity"],
)
def test_kernel_digests_stable_across_hashseed(snippet):
    outputs = {
        _run_under_hashseed(snippet, seed) for seed in ("0", "1", "4242")
    }
    assert len(outputs) == 1, (
        "kernel report digest depends on PYTHONHASHSEED: "
        f"{outputs}"
    )
    assert outputs.pop().strip()
