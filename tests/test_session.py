"""End-to-end OTA session tests (sink → network → sensor)."""

from repro.core import UpdateSession, compile_source
from repro.net import grid, line
from repro.workloads import CASES
from repro.config import UpdateConfig


class TestUpdateSession:
    def test_single_update_round_trip(self, compiled_case_olds):
        case = CASES["1"]
        session = UpdateSession(compiled_case_olds["1"], topology=grid(4, 4))
        result = session.push_update(case.new_source)
        assert result.nodes_patched == 15
        assert session.deployed.source == case.new_source

    def test_successive_updates_chain(self):
        """A maintenance campaign: each update patches the previous
        deployed version, not the original."""
        case1 = CASES["2"]  # Blink: toggle yellow instead of red
        case5 = CASES["5"]  # Blink: mask the value passed to led_set
        session = UpdateSession(compile_source(case1.old_source), topology=line(5))
        first = session.push_update(case1.new_source)
        second = session.push_update(case5.new_source)
        assert first.update.new.source == case1.new_source
        assert second.update.old.source == case1.new_source

    def test_energy_positive_when_script_nonempty(self, compiled_case_olds):
        case = CASES["6"]
        session = UpdateSession(compiled_case_olds["6"], topology=grid(3, 3))
        result = session.push_update(case.new_source)
        assert result.update.script_bytes > 0
        assert result.network_energy_j > 0

    def test_ucc_cheaper_than_baseline_on_data_case(self, compiled_case_olds):
        """D1: the network-level joule cost of the update is lower under
        the update-conscious strategy."""
        case = CASES["D1"]
        topo = grid(5, 5)
        ucc_session = UpdateSession(compiled_case_olds["D1"], topology=topo)
        base_session = UpdateSession(compiled_case_olds["D1"], topology=topo)
        ucc = ucc_session.push_update(case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        base = base_session.push_update(case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
        assert ucc.network_energy_j < base.network_energy_j

    def test_self_update_costs_almost_nothing(self, simple_program, simple_source):
        session = UpdateSession(simple_program, topology=grid(3, 3))
        result = session.push_update(simple_source)
        baseline_bytes = result.update.script_bytes
        assert baseline_bytes <= 4  # just copy primitives


class TestLossySession:
    def test_lossy_session_costs_more(self, compiled_case_olds):
        from repro.net import grid
        from repro.core import UpdateSession
        from repro.workloads import CASES

        case = CASES["6"]
        clean = UpdateSession(compiled_case_olds["6"], topology=grid(4, 4))
        lossy = UpdateSession(
            compiled_case_olds["6"], topology=grid(4, 4), loss=0.3, loss_seed=5
        )
        clean_result = clean.push_update(case.new_source)
        lossy_result = lossy.push_update(case.new_source)
        assert lossy_result.network_energy_j > clean_result.network_energy_j

    def test_lossy_session_still_patches(self, compiled_case_olds):
        from repro.net import line
        from repro.core import UpdateSession
        from repro.workloads import CASES

        case = CASES["2"]
        session = UpdateSession(
            compiled_case_olds["2"], topology=line(5), loss=0.2, loss_seed=3
        )
        result = session.push_update(case.new_source)
        assert session.deployed.source == case.new_source
        assert result.dissemination.complete
