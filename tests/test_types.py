"""lang.types unit tests."""

import pytest

from repro.lang.types import Type, U16, U8, VOID, common_type, scalar


class TestScalars:
    def test_sizes(self):
        assert U8.size_bytes == 1
        assert U16.size_bytes == 2
        assert VOID.size_bytes == 0

    def test_bits_and_max(self):
        assert U8.bits == 8 and U8.max_value == 0xFF
        assert U16.bits == 16 and U16.max_value == 0xFFFF

    def test_scalar_lookup(self):
        assert scalar("u8") == U8
        assert scalar("u16") == U16
        assert scalar("void") == VOID
        with pytest.raises(KeyError):
            scalar("u32")

    def test_void_flag(self):
        assert VOID.is_void
        assert not U8.is_void

    def test_str(self):
        assert str(U8) == "u8"
        assert str(Type("u16", 4)) == "u16[4]"


class TestArrays:
    def test_array_size(self):
        assert Type("u8", 10).size_bytes == 10
        assert Type("u16", 10).size_bytes == 20

    def test_element_type(self):
        assert Type("u16", 3).element_type() == U16
        with pytest.raises(ValueError):
            U8.element_type()

    def test_array_flag(self):
        assert Type("u8", 2).is_array
        assert not U8.is_array


class TestCommonType:
    def test_same_width(self):
        assert common_type(U8, U8) == U8
        assert common_type(U16, U16) == U16

    def test_promotion(self):
        assert common_type(U8, U16) == U16
        assert common_type(U16, U8) == U16

    def test_arrays_rejected(self):
        with pytest.raises(ValueError):
            common_type(Type("u8", 2), U8)
