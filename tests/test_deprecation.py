"""The legacy-kwarg deprecation shims.

Every legacy spelling must (a) emit :class:`DeprecationWarning` and
(b) produce results *identical* to the typed-config form — migration
must never change behaviour.  The tier-1 suite itself runs clean under
``-W error::DeprecationWarning``; these are the only tests that invoke
the legacy forms on purpose.
"""

import warnings

import pytest

from repro.config import UpdateConfig
from repro.core.compiler import Compiler
from repro.core.session import UpdateSession
from repro.core.update import UpdatePlanner, plan_update
from repro.net.topology import grid
from repro.workloads import CASES

CASE = CASES["6"]


@pytest.fixture(scope="module")
def old():
    return Compiler().compile(CASE.old_source)


def _same_plan(legacy, typed):
    assert legacy.diff_inst == typed.diff_inst
    assert legacy.script_bytes == typed.script_bytes
    assert legacy.packets.packet_count == typed.packets.packet_count
    assert legacy.diff.script.render() == typed.diff.script.render()
    assert legacy.new.image.words() == typed.new.image.words()


class TestPlanUpdateShim:
    def test_ra_da_kwargs_warn(self, old):
        with pytest.warns(DeprecationWarning, match="ra=/da=/cp="):
            plan_update(old, CASE.new_source, ra="ucc", da="ucc")

    def test_legacy_equals_typed(self, old):
        with pytest.warns(DeprecationWarning):
            legacy = plan_update(old, CASE.new_source, ra="ucc", da="gcc")
        typed = plan_update(
            old, CASE.new_source, config=UpdateConfig(ra="ucc", da="gcc")
        )
        _same_plan(legacy, typed)

    def test_cp_kwarg_warns_and_matches(self, old):
        with pytest.warns(DeprecationWarning):
            legacy = plan_update(old, CASE.new_source, ra="ucc", cp="ucc")
        typed = plan_update(
            old, CASE.new_source, config=UpdateConfig(ra="ucc", cp="ucc")
        )
        _same_plan(legacy, typed)

    def test_typed_form_does_not_warn(self, old):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            plan_update(old, CASE.new_source, config=UpdateConfig())


class TestPlannerShim:
    def test_plan_kwargs_warn_and_match(self, old):
        planner = UpdatePlanner(old)
        with pytest.warns(DeprecationWarning, match="ra=/da=/cp="):
            legacy = planner.plan(CASE.new_source, ra="gcc", da="gcc")
        typed = UpdatePlanner(old, config=UpdateConfig(ra="gcc", da="gcc")).plan(
            CASE.new_source
        )
        _same_plan(legacy, typed)

    def test_explicit_legacy_flag_overrides_config(self, old):
        # Mixed call: the explicit string flag wins over the config field.
        planner = UpdatePlanner(old, config=UpdateConfig(ra="ucc", da="ucc"))
        with pytest.warns(DeprecationWarning):
            legacy = planner.plan(CASE.new_source, ra="gcc")
        typed = UpdatePlanner(old, config=UpdateConfig(ra="gcc", da="ucc")).plan(
            CASE.new_source
        )
        _same_plan(legacy, typed)


class TestSessionShim:
    def test_planner_kwargs_warn_on_construction(self, old):
        with pytest.warns(DeprecationWarning, match="planner_kwargs"):
            UpdateSession(old, topology=grid(3, 3), expected_runs=50.0)

    def test_push_update_kwargs_warn_and_match(self, old):
        legacy_session = UpdateSession(old, topology=grid(3, 3))
        with pytest.warns(DeprecationWarning, match="ra=/da="):
            legacy = legacy_session.push_update(CASE.new_source, ra="ucc", da="ucc")

        typed_session = UpdateSession(
            old, topology=grid(3, 3), config=UpdateConfig(ra="ucc", da="ucc")
        )
        typed = typed_session.push_update(CASE.new_source)

        _same_plan(legacy.update, typed.update)
        assert legacy.nodes_patched == typed.nodes_patched
        assert legacy.network_energy_j == typed.network_energy_j

    def test_typed_session_does_not_warn(self, old):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = UpdateSession(
                old, topology=grid(3, 3), config=UpdateConfig(ra="ucc")
            )
            session.push_update(CASE.new_source)

    def test_empty_fleet_rejected_at_construction(self, old):
        with pytest.raises(ValueError, match="no sensor nodes"):
            UpdateSession(old, topology=grid(1, 1))
