"""Network substrate tests: topologies, dissemination, report model."""

import pytest

from repro.diff import EditScript, packetize
from repro.energy import MICA2
from repro.net import (
    ReportModel,
    disseminate,
    grid,
    line,
    random_geometric,
)


def script_of_bytes(n):
    script = EditScript()
    remaining = n
    while remaining > 0:
        take = min(remaining, 60)
        script.remove(take)  # 'take' one-byte primitives? no: one primitive
        remaining -= take
    return script


class TestTopologies:
    def test_line_hops(self):
        topo = line(71)
        assert topo.max_hops() == 70  # the paper's 70-hop report example

    def test_grid_connected(self):
        topo = grid(6, 5)
        assert topo.node_count == 30
        assert topo.is_connected()

    def test_grid_corner_distance(self):
        topo = grid(4, 4)
        assert topo.hops_from_sink()[15] == 6  # manhattan distance

    def test_random_geometric_connected_and_deterministic(self):
        a = random_geometric(40, radio_range=0.35, seed=3)
        b = random_geometric(40, radio_range=0.35, seed=3)
        assert a.is_connected()
        assert a.positions == b.positions

    def test_random_geometric_unreachable_raises(self):
        with pytest.raises(ValueError):
            random_geometric(50, radio_range=0.01, seed=1, max_attempts=3)

    def test_path_to_sink_descends(self):
        topo = grid(5, 5)
        path = topo.path_to_sink(24)
        hops = topo.hops_from_sink()
        for a, b in zip(path, path[1:]):
            assert hops[b] == hops[a] - 1
        assert path[-1] == 0


class TestDissemination:
    def _packets(self, script_bytes=40):
        script = EditScript()
        total = 0
        while total < script_bytes:
            script.remove(1)
            total += 1
        return packetize(script)

    def test_every_node_pays_energy(self):
        topo = grid(4, 4)
        result = disseminate(topo, self._packets())
        assert len(result.ledgers) == 16
        for node in range(1, 16):
            assert result.ledgers[node].total_j > 0

    def test_energy_scales_with_script_size(self):
        topo = grid(4, 4)
        small = disseminate(topo, self._packets(10))
        large = disseminate(topo, self._packets(200))
        assert large.total_energy_j > small.total_energy_j

    def test_energy_scales_with_network_size(self):
        packets = self._packets()
        small = disseminate(grid(3, 3), packets)
        large = disseminate(grid(6, 6), packets)
        assert large.total_energy_j > small.total_energy_j

    def test_rx_dominates_in_dense_networks(self):
        """With flooding, each node receives from every neighbour, so
        total Rx energy exceeds total Tx energy in any graph with more
        edges than nodes."""
        topo = grid(5, 5)
        result = disseminate(topo, self._packets())
        assert result.total_rx_j > result.total_tx_j

    def test_no_packets_no_radio_energy(self):
        topo = grid(3, 3)
        result = disseminate(topo, packetize(EditScript()))
        assert result.total_energy_j == 0.0

    def test_rounds_equal_network_depth(self):
        topo = line(10)
        result = disseminate(topo, self._packets())
        assert result.rounds == 9


class TestReportModel:
    def test_seventy_hop_example(self):
        """Paper §2.1: an event at 70 hops runs processing code once and
        transmission code 70 times."""
        topo = line(71)
        model = ReportModel(topo)
        weight = model.processing_vs_transmission_weight(70)
        assert weight == 70

    def test_report_cost_grows_with_distance(self):
        topo = line(20)
        model = ReportModel(topo)
        near, near_hops = model.report_cost(2, 1000, 500)
        far, far_hops = model.report_cost(19, 1000, 500)
        assert far > near
        assert far_hops > near_hops

    def test_transmission_cycles_weighted_by_hops(self):
        topo = line(11)
        model = ReportModel(topo)
        slow_tx, _ = model.report_cost(10, 1000, 2000)
        fast_tx, _ = model.report_cost(10, 1000, 1000)
        # 10 hops x 1000 extra cycles of transmission code
        expected_delta = 10 * 1000 * MICA2.cycle_energy_j
        assert slow_tx - fast_tx == pytest.approx(expected_delta)

    def test_processing_cycles_weighted_once(self):
        topo = line(11)
        model = ReportModel(topo)
        slow_p, _ = model.report_cost(10, 2000, 1000)
        fast_p, _ = model.report_cost(10, 1000, 1000)
        assert slow_p - fast_p == pytest.approx(1000 * MICA2.cycle_energy_j)
