"""Simulator tests: instruction semantics, devices, cycle accounting."""

import pytest

from repro.core import compile_source
from repro.sim import DeviceBoard, SimulationError, Simulator, Timer, run_image


def run(source, **kwargs):
    prog = compile_source(source)
    return prog, run_image(prog.image, **kwargs)


def final_global(source, name):
    prog = compile_source(source)
    sim = Simulator(prog.image)
    sim.run()
    addr = prog.layout.addresses[name]
    size = prog.module.checked.global_symbol(name).ctype.size_bytes
    value = sim.load(addr)
    if size == 2:
        value |= sim.load(addr + 1) << 8
    return value


class TestArithmetic:
    def test_u8_wraparound_add(self):
        assert final_global("u8 r; void main() { r = 200 + 100; halt(); }", "r") == 44

    def test_u8_subtraction_borrow(self):
        src = "u8 r; void main() { u8 a = 5; u8 b = 9; r = a - b; halt(); }"
        assert final_global(src, "r") == (5 - 9) & 0xFF

    def test_u16_arithmetic(self):
        src = "u16 r; void main() { u16 a = 300; u16 b = 500; r = a * b + 7; halt(); }"
        assert final_global(src, "r") == (300 * 500 + 7) & 0xFFFF

    def test_u16_carry_propagation(self):
        src = "u16 r; void main() { u16 a = 0x00ff; r = a + 1; halt(); }"
        assert final_global(src, "r") == 0x0100

    def test_division_and_modulo(self):
        src = "u8 q; u8 m; void main() { u8 a = 47; u8 b = 5; q = a / b; m = a % b; halt(); }"
        prog = compile_source(src)
        sim = Simulator(prog.image)
        sim.run()
        assert sim.load(prog.layout.addresses["q"]) == 9
        assert sim.load(prog.layout.addresses["m"]) == 2

    def test_u16_division(self):
        src = "u16 r; void main() { u16 a = 50000; u16 b = 7; r = a / b; halt(); }"
        assert final_global(src, "r") == 50000 // 7

    def test_shifts(self):
        src = "u8 l; u8 r; void main() { u8 a = 0x81; l = a << 1; r = a >> 1; halt(); }"
        prog = compile_source(src)
        sim = Simulator(prog.image)
        sim.run()
        assert sim.load(prog.layout.addresses["l"]) == 0x02
        assert sim.load(prog.layout.addresses["r"]) == 0x40

    def test_u16_shift_crosses_bytes(self):
        src = "u16 r; void main() { u16 a = 0x0180; r = a << 2; halt(); }"
        assert final_global(src, "r") == 0x0600

    def test_dynamic_shift_amount(self):
        src = "u8 r; void main() { u8 a = 1; u8 n = 5; r = a << n; halt(); }"
        assert final_global(src, "r") == 32

    def test_bitwise_ops(self):
        src = (
            "u8 a; u8 o; u8 x; void main() { u8 p = 0xcc; u8 q = 0xaa; "
            "a = p & q; o = p | q; x = p ^ q; halt(); }"
        )
        prog = compile_source(src)
        sim = Simulator(prog.image)
        sim.run()
        assert sim.load(prog.layout.addresses["a"]) == 0xCC & 0xAA
        assert sim.load(prog.layout.addresses["o"]) == 0xCC | 0xAA
        assert sim.load(prog.layout.addresses["x"]) == 0xCC ^ 0xAA

    def test_unary_neg_and_not(self):
        src = "u8 n; u8 c; void main() { u8 a = 5; n = -a; c = ~a; halt(); }"
        prog = compile_source(src)
        sim = Simulator(prog.image)
        sim.run()
        assert sim.load(prog.layout.addresses["n"]) == (-5) & 0xFF
        assert sim.load(prog.layout.addresses["c"]) == (~5) & 0xFF

    def test_u16_negation(self):
        src = "u16 r; void main() { u16 a = 300; r = -a; halt(); }"
        assert final_global(src, "r") == (-300) & 0xFFFF


class TestComparisons:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("==", 5, 5, 1), ("==", 5, 6, 0),
            ("!=", 5, 6, 1), ("!=", 5, 5, 0),
            ("<", 3, 9, 1), ("<", 9, 3, 0), ("<", 4, 4, 0),
            ("<=", 4, 4, 1), ("<=", 5, 4, 0),
            (">", 9, 3, 1), (">", 3, 9, 0),
            (">=", 3, 3, 1), (">=", 2, 3, 0),
        ],
    )
    def test_u8_comparisons(self, op, a, b, expected):
        src = f"u8 r; void main() {{ u8 x = {a}; u8 y = {b}; r = x {op} y; halt(); }}"
        assert final_global(src, "r") == expected

    def test_u16_comparison_uses_both_bytes(self):
        src = "u8 r; void main() { u16 a = 0x0100; u16 b = 0x00ff; r = a > b; halt(); }"
        assert final_global(src, "r") == 1

    def test_mixed_width_comparison(self):
        src = "u8 r; void main() { u16 a = 256; u8 b = 0; r = a == b; halt(); }"
        assert final_global(src, "r") == 0


class TestControlFlow:
    def test_loop_sum(self):
        src = "u16 s; void main() { u8 i; for (i = 0; i < 10; i++) { s = s + i; } halt(); }"
        assert final_global(src, "s") == sum(range(10))

    def test_nested_loops(self):
        src = """
        u16 s;
        void main() {
            u8 i; u8 j;
            for (i = 0; i < 5; i++) {
                for (j = 0; j < 4; j++) { s = s + 1; }
            }
            halt();
        }
        """
        assert final_global(src, "s") == 20

    def test_break_and_continue(self):
        src = """
        u16 s;
        void main() {
            u8 i;
            for (i = 0; i < 100; i++) {
                if (i == 50) { break; }
                if (i % 2 == 0) { continue; }
                s = s + 1;
            }
            halt();
        }
        """
        assert final_global(src, "s") == 25

    def test_short_circuit_evaluation_order(self):
        src = """
        u8 touched = 0;
        u8 bump() { touched = touched + 1; return 1; }
        void main() {
            u8 a = 0;
            if (a && bump()) { led_set(1); }
            halt();
        }
        """
        assert final_global(src, "touched") == 0

    def test_function_calls_and_returns(self):
        src = """
        u16 r;
        u16 square(u8 x) { return x * x; }
        void main() { r = square(13); halt(); }
        """
        assert final_global(src, "r") == 169

    def test_recursive_style_chain_calls(self):
        src = """
        u8 r;
        u8 h(u8 x) { return x + 1; }
        u8 g(u8 x) { return h(x) * 2; }
        void main() { r = g(h(1)); halt(); }
        """
        assert final_global(src, "r") == (1 + 1 + 1) * 2

    def test_arrays_in_loops(self):
        src = """
        u8 t[8];
        u16 s;
        void main() {
            u8 i;
            for (i = 0; i < 8; i++) { t[i] = i * i; }
            for (i = 0; i < 8; i++) { s = s + t[i]; }
            halt();
        }
        """
        assert final_global(src, "s") == sum(i * i for i in range(8))

    def test_u16_array_elements(self):
        src = """
        u16 t[4];
        u16 s;
        void main() {
            u8 i;
            for (i = 0; i < 4; i++) { t[i] = 300 * i; }
            for (i = 0; i < 4; i++) { s = s + t[i]; }
            halt();
        }
        """
        assert final_global(src, "s") == sum(300 * i for i in range(4))


class TestDevices:
    def test_led_writes_recorded(self):
        _, result = run("void main() { led_set(5); led_set(2); halt(); }")
        assert result.devices.led.writes == [5, 2]

    def test_led_readback(self):
        src = "u8 r; void main() { led_set(6); r = led_get(); halt(); }"
        assert final_global(src, "r") == 6

    def test_radio_sends_u16(self):
        _, result = run("void main() { radio_send(0x1234); halt(); }")
        assert result.devices.radio.sent == [0x1234]

    def test_timer_fires_periodically(self):
        src = """
        u16 fires;
        void main() {
            u16 i;
            for (i = 0; i < 3000; i++) {
                if (timer_fired()) { fires = fires + 1; }
            }
            halt();
        }
        """
        prog = compile_source(src)
        board = DeviceBoard(timer=Timer(period_cycles=1000))
        sim = Simulator(prog.image, devices=board)
        result = sim.run()
        addr = prog.layout.addresses["fires"]
        fires = sim.load(addr) | (sim.load(addr + 1) << 8)
        assert fires == result.cycles // 1000

    def test_adc_deterministic(self):
        src = "u16 a; u16 b; void main() { a = adc_read(); b = adc_read(); halt(); }"
        first = final_global(src, "a")
        second = final_global(src, "a")
        assert first == second  # same seed, same stream

    def test_adc_stream_varies(self):
        src = "u16 a; u16 b; void main() { a = adc_read(); b = adc_read(); halt(); }"
        prog = compile_source(src)
        sim = Simulator(prog.image)
        sim.run()
        a = sim.load(prog.layout.addresses["a"]) | (sim.load(prog.layout.addresses["a"] + 1) << 8)
        b = sim.load(prog.layout.addresses["b"]) | (sim.load(prog.layout.addresses["b"] + 1) << 8)
        assert a != b


class TestExecutionAccounting:
    def test_cycles_monotonic_and_positive(self):
        _, result = run("void main() { u8 i; for (i = 0; i < 5; i++) { } halt(); }")
        assert result.cycles > result.instructions > 0

    def test_taken_branch_costs_extra(self):
        taken = compile_source(
            "void main() { u8 a = 1; if (a) { led_set(1); } halt(); }"
        )
        r1 = run_image(taken.image)
        assert r1.halted

    def test_profile_attributes_to_functions(self):
        src = """
        u8 f(u8 x) { return x + 1; }
        void main() { u8 a = f(1); led_set(a); halt(); }
        """
        prog = compile_source(src)
        result = run_image(prog.image, collect_profile=True)
        functions = {fn for fn, _ in result.profile}
        assert {"f", "main"} <= functions

    def test_ir_frequencies_positive_in_loop(self):
        src = "void main() { u8 i; for (i = 0; i < 7; i++) { led_set(i); } halt(); }"
        prog = compile_source(src)
        result = run_image(prog.image, collect_profile=True)
        freqs = result.ir_frequencies("main")
        assert max(freqs.values()) >= 7

    def test_max_cycles_stops_infinite_loop(self):
        src = "void main() { while (1) { } }"
        prog = compile_source(src)
        result = run_image(prog.image, max_cycles=10_000)
        assert not result.halted
        assert result.cycles >= 10_000

    def test_main_return_ends_run(self):
        _, result = run("void main() { led_set(1); }")
        assert result.main_returned

    def test_stack_misuse_detected(self):
        # pop without push cannot be produced by the compiler; drive the
        # simulator directly.
        from repro.isa import MachineInstr, assemble, label

        image = assemble([label("main"), MachineInstr("pop", rd=2)])
        sim = Simulator(image)
        with pytest.raises(SimulationError):
            sim.step()

    def test_bad_memory_access_detected(self):
        from repro.isa import MachineInstr, assemble, label

        image = assemble([label("main"), MachineInstr("lds", rd=2, addr=0x10)])
        sim = Simulator(image)
        with pytest.raises(SimulationError):
            sim.step()
