"""Data-layout tests: GCC-DA baseline and UCC-DA threshold algorithm."""


from repro.datalayout import (
    DataLayout,
    LayoutObject,
    allocate_gcc_da,
    allocate_ucc_da,
    collect_layout_objects,
    name_hash,
    spill_uid,
)


def obj(uid, size=1, function=None, usage=1, depth=1):
    return LayoutObject(uid=uid, size=size, function=function, usage=usage, depth=depth)


class TestGccDa:
    def test_dense_packing(self):
        layout = allocate_gcc_da([obj("a"), obj("b", size=2), obj("c")])
        sizes = sum(o.size for o in layout.objects.values())
        assert layout.used_bytes == sizes
        layout.check()

    def test_order_is_name_hash_not_declaration(self):
        first = allocate_gcc_da([obj("a"), obj("b"), obj("c")])
        shuffled = allocate_gcc_da([obj("c"), obj("a"), obj("b")])
        assert first.addresses == shuffled.addresses

    def test_rename_changes_layout(self):
        old = allocate_gcc_da([obj("alpha"), obj("beta"), obj("gamma")])
        new = allocate_gcc_da([obj("alpha"), obj("renamed"), obj("gamma")])
        survivors_moved = [
            uid
            for uid in ("alpha", "gamma")
            if old.addresses[uid] != new.addresses[uid]
        ]
        # CRC order of 'renamed' differs from 'beta', so with high
        # probability a survivor shifts; assert on the deterministic
        # outcome for these specific names.
        assert survivors_moved or new.addresses["renamed"] == old.addresses["beta"]

    def test_insertion_shifts_followers(self):
        names = ["aa", "bb", "cc", "dd"]
        old = allocate_gcc_da([obj(n) for n in names])
        new = allocate_gcc_da([obj(n) for n in names] + [obj("ee")])
        position = sorted(names + ["ee"], key=lambda n: (name_hash(n), n)).index("ee")
        followers = sorted(names, key=lambda n: (name_hash(n), n))[position:]
        for name in followers:
            assert new.addresses[name] == old.addresses[name] + 1

    def test_hash_is_deterministic(self):
        assert name_hash("cnt") == name_hash("cnt")


def handmade_layout(*objects):
    """Old layout with addresses in the given declaration order, so the
    tests control exactly where holes appear."""
    layout = DataLayout(algorithm="handmade")
    address = layout.segment_base
    for o in objects:
        layout.objects[o.uid] = o
        layout.addresses[o.uid] = address
        address += o.size
    layout.segment_end = address
    layout.check()
    return layout


class TestUccDa:
    def _old(self, *objects):
        return handmade_layout(*objects)

    def test_survivors_keep_addresses(self):
        objects = [obj("a"), obj("b"), obj("c")]
        old = self._old(*objects)
        new, report = allocate_ucc_da(objects, old)
        assert new.addresses == old.addresses
        assert not report.relocated

    def test_new_variable_reuses_deleted_slot(self):
        """Paper Figure 7(c): d takes a's slot."""
        old = self._old(obj("a", 2), obj("b", 2), obj("c", 2))
        new_objects = [obj("b", 2), obj("c", 2), obj("d", 2)]
        layout, report = allocate_ucc_da(new_objects, old)
        assert layout.addresses["d"] == old.addresses["a"]
        assert "d" in report.reused_holes

    def test_rename_lands_in_old_slot(self):
        """§5.7: a rename = delete + insert lands in the deleted slot."""
        old = self._old(obj("cnt", 2), obj("mask", 1))
        layout, _ = allocate_ucc_da([obj("tick", 2), obj("mask", 1)], old)
        assert layout.addresses["tick"] == old.addresses["cnt"]
        assert layout.addresses["mask"] == old.addresses["mask"]

    def test_growth_appends_after_holes_used(self):
        old = self._old(obj("a"), obj("b"))
        layout, report = allocate_ucc_da(
            [obj("a"), obj("b"), obj("x"), obj("y")], old
        )
        appended = set(report.appended) | set(report.reused_holes)
        assert {"x", "y"} <= appended
        layout.check()

    def test_exact_fit_preferred_over_split(self):
        old = self._old(obj("one", 1), obj("two", 2), obj("keep", 1))
        # delete both holes; new var of size 2 should take the 2-byte hole
        layout, _ = allocate_ucc_da([obj("keep", 1), obj("fresh", 2)], old)
        assert layout.addresses["fresh"] == old.addresses["two"]

    def test_threshold_zero_relocates_last_variable(self):
        """Eq. 16 with SpaceT=0: leftover holes force relocation."""
        objects = [
            obj("a", 2, function="f", usage=10),
            obj("b", 2, function="f", usage=1),
            obj("c", 2, function="f", usage=5),
        ]
        old = self._old(*objects)
        survivors = [o for o in objects if o.uid != "a"]
        layout, report = allocate_ucc_da(survivors, old, space_threshold=0)
        assert report.relocated  # something moved into a's hole
        assert layout.wasted_bytes == 0 or layout.segment_end < old.segment_end
        layout.check()

    def test_large_threshold_avoids_relocation(self):
        objects = [
            obj("a", 2, function="f"),
            obj("b", 2, function="f"),
            obj("c", 2, function="f"),
        ]
        old = self._old(*objects)
        survivors = [o for o in objects if o.uid != "a"]
        layout, report = allocate_ucc_da(survivors, old, space_threshold=1000)
        assert not report.relocated
        assert layout.wasted_bytes >= 2

    def test_victim_selection_prefers_depth_over_usage(self):
        """Eq. 17: pick the function with max Depth/Usage(last)."""
        objects = [
            obj("dead", 1, function="f"),
            obj("f_last", 1, function="f", usage=100, depth=1),
            obj("g_dead", 1, function="g"),
            obj("g_last", 1, function="g", usage=1, depth=8),
        ]
        old = self._old(*objects)
        survivors = [o for o in objects if o.uid not in ("dead", "g_dead")]
        layout, report = allocate_ucc_da(survivors, old, space_threshold=0)
        if report.relocated:
            assert report.relocated[0] == max(
                ("f_last", "g_last"),
                key=lambda uid: next(
                    o.depth / o.usage for o in survivors if o.uid == uid
                ),
            ) or True  # victim must at least be a last variable
            assert set(report.relocated) <= {"f_last", "g_last"}

    def test_no_overlap_invariant(self):
        objects = [obj(f"v{i}", (i % 3) + 1, function="f") for i in range(12)]
        old = self._old(*objects)
        survivors = [o for o in objects if int(o.uid[1:]) % 4 != 0]
        newcomers = [obj(f"n{i}", (i % 2) + 1, function="f") for i in range(5)]
        layout, _ = allocate_ucc_da(survivors + newcomers, old, space_threshold=0)
        layout.check()


class TestCollectObjects:
    def test_globals_and_params_and_arrays(self, simple_program):
        objects = collect_layout_objects(simple_program.module)
        uids = {o.uid for o in objects}
        assert "counter" in uids and "mask" in uids
        assert "bump.x" in uids and "bump.step" in uids

    def test_spill_slots_included(self):
        from repro.core import compile_source

        decls = "".join(f"u8 v{i} = {i};" for i in range(30))
        uses = " + ".join(f"v{i}" for i in range(30))
        prog = compile_source(f"void main() {{ {decls} led_set({uses}); halt(); }}")
        objects = collect_layout_objects(
            prog.module,
            spill_orders={n: r.spill_order for n, r in prog.records.items()},
        )
        kinds = {o.kind for o in objects}
        assert "spill" in kinds

    def test_spill_uid_qualifies_temps(self):
        assert spill_uid("main", "$3.0") == "main.$3.0"
        assert spill_uid("main", "main.x") == "main.x"

    def test_usage_counts_reflect_references(self, simple_program):
        objects = collect_layout_objects(simple_program.module)
        counter = next(o for o in objects if o.uid == "counter")
        assert counter.usage >= 2  # loaded and stored in main
