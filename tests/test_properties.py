"""Cross-cutting property-based tests on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import compile_source, plan_update
from repro.datalayout import (
    LayoutObject,
    allocate_gcc_da,
    allocate_ucc_da,
)
from repro.diff.patcher import patched_words
from repro.ir import analyze, build_ir
from repro.lang import frontend
from repro.config import UpdateConfig
from repro.regalloc import (
    allocate_graph_coloring,
    allocate_linear_scan,
    verify_allocation,
)

# ---------------------------------------------------------------------------
# Data layout properties
# ---------------------------------------------------------------------------

_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4).map(lambda s: "v_" + s),
    min_size=1,
    max_size=10,
    unique=True,
)


def _objects(names, sizes):
    return [
        LayoutObject(uid=name, size=size, function="f", usage=i + 1)
        for i, (name, size) in enumerate(zip(names, sizes))
    ]


class TestLayoutProperties:
    @settings(max_examples=60, deadline=None)
    @given(_names, st.data())
    def test_gcc_da_never_overlaps(self, names, data):
        sizes = [data.draw(st.integers(1, 4)) for _ in names]
        layout = allocate_gcc_da(_objects(names, sizes))
        layout.check()  # raises on overlap
        assert layout.used_bytes == sum(sizes)

    @settings(max_examples=60, deadline=None)
    @given(_names, st.data())
    def test_ucc_da_survivors_never_move(self, names, data):
        sizes = [data.draw(st.integers(1, 4)) for _ in names]
        objects = _objects(names, sizes)
        old = allocate_gcc_da(objects)
        # randomly delete some, add some
        keep = [o for o in objects if data.draw(st.booleans())]
        new_count = data.draw(st.integers(0, 3))
        newcomers = [
            LayoutObject(uid=f"new{i}", size=data.draw(st.integers(1, 4)), function="f")
            for i in range(new_count)
        ]
        layout, _ = allocate_ucc_da(keep + newcomers, old, space_threshold=1_000_000)
        layout.check()
        for obj in keep:
            assert layout.addresses[obj.uid] == old.addresses[obj.uid]

    @settings(max_examples=60, deadline=None)
    @given(_names, st.data())
    def test_ucc_da_threshold_zero_reclaims(self, names, data):
        """With SpaceT=0 and single-function ownership, waste shrinks to
        at most what no legal downward move could reclaim."""
        sizes = [data.draw(st.integers(1, 2)) for _ in names]
        objects = _objects(names, sizes)
        old = allocate_gcc_da(objects)
        keep = [o for o in objects if data.draw(st.booleans())]
        layout, report = allocate_ucc_da(keep, old, space_threshold=0)
        layout.check()
        assert report.wasted_after <= report.wasted_before
        assert layout.segment_end <= old.segment_end


# ---------------------------------------------------------------------------
# Register allocation properties over generated programs
# ---------------------------------------------------------------------------


def _program_source(num_vars: int, num_stmts: int, seed: int) -> str:
    import random

    rng = random.Random(seed)
    ops = ["+", "-", "^", "&", "|"]
    lines = [f"u8 v{i} = {i + 1};" for i in range(num_vars)]
    for _ in range(num_stmts):
        dst = rng.randrange(num_vars)
        a = rng.randrange(num_vars)
        b = rng.randrange(num_vars)
        lines.append(f"v{dst} = v{a} {rng.choice(ops)} v{b};")
    body = "\n    ".join(lines)
    uses = " ^ ".join(f"v{i}" for i in range(num_vars))
    return f"void main() {{\n    {body}\n    led_set({uses});\n    halt();\n}}"


class TestAllocatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 25), st.integers(0, 10_000))
    def test_baselines_always_verify(self, num_vars, num_stmts, seed):
        source = _program_source(num_vars, num_stmts, seed)
        module = build_ir(frontend(source))
        fn = module.functions["main"]
        for alloc in (allocate_graph_coloring, allocate_linear_scan):
            record = alloc(fn)
            verify_allocation(record, analyze(fn))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 15), st.integers(0, 10_000))
    def test_compiled_random_programs_halt(self, num_vars, num_stmts, seed):
        from repro.sim import run_image

        source = _program_source(num_vars, num_stmts, seed)
        program = compile_source(source)
        result = run_image(program.image, max_cycles=500_000)
        assert result.halted


# ---------------------------------------------------------------------------
# Update-planner properties over generated edits
# ---------------------------------------------------------------------------


class TestUpdateProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_patch_roundtrip_over_random_edits(self, seed_old, seed_new):
        old_src = _program_source(3, 8, seed_old)
        new_src = _program_source(3, 8, seed_new)
        old = compile_source(old_src)
        for ra in ("gcc", "ucc"):
            result = plan_update(old, new_src, config=UpdateConfig(ra=ra, da="ucc"))
            assert (
                patched_words(old.image, result.diff.script)
                == result.new.image.words()
            )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_self_update_is_free(self, seed):
        source = _program_source(3, 10, seed)
        old = compile_source(source)
        result = plan_update(old, source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert result.diff_inst == 0
        assert result.data_script.is_empty
