"""Unit tests for the fuzz oracle's trace comparator
(:func:`repro.sim.traces_equal`)."""

from repro.core import compile_source
from repro.sim import DeviceBoard, Divergence, Timer, run_image, traces_equal
from repro.sim.executor import RunResult


def _run(led=(), radio=(), timer=0, adc=0, halted=True, main_returned=True):
    board = DeviceBoard(timer=Timer(fire_every_polls=3))
    board.led.writes.extend(led)
    board.radio.sent.extend(radio)
    board.timer.fires = timer
    board.adc.reads = adc
    return RunResult(
        cycles=100,
        instructions=50,
        halted=halted,
        main_returned=main_returned,
        devices=board,
    )


class TestTracesEqual:
    def test_identical_traces_agree(self):
        a = _run(led=[1, 0, 1], radio=[7, 9], timer=4, adc=2)
        b = _run(led=[1, 0, 1], radio=[7, 9], timer=4, adc=2)
        assert traces_equal(a, b) is None

    def test_led_value_divergence_reports_index(self):
        a = _run(led=[1, 0, 1])
        b = _run(led=[1, 2, 1])
        div = traces_equal(a, b)
        assert div == Divergence(channel="led", a=0, b=2, index=1)
        assert "led[1]" in div.render()

    def test_length_mismatch_reports_absent_side(self):
        a = _run(radio=[7, 9, 11])
        b = _run(radio=[7, 9])
        div = traces_equal(a, b)
        assert div.channel == "radio" and div.index == 2
        assert div.a == 11 and div.b == "<absent>"

    def test_sequence_channels_win_over_scalars(self):
        # Both the LED stream and the timer count differ; the sequence
        # divergence is the more debuggable one and must be returned.
        a = _run(led=[1], timer=3)
        b = _run(led=[2], timer=5)
        assert traces_equal(a, b).channel == "led"

    def test_timer_fires_compared(self):
        div = traces_equal(_run(timer=3), _run(timer=4))
        assert div == Divergence(channel="timer", a=3, b=4)
        assert "[" not in div.render().split(":")[0]

    def test_adc_reads_compared(self):
        assert traces_equal(_run(adc=1), _run(adc=2)).channel == "adc"

    def test_halt_status_compared(self):
        div = traces_equal(_run(halted=True), _run(halted=False))
        assert div.channel == "halted"

    def test_main_returned_compared(self):
        div = traces_equal(
            _run(main_returned=True), _run(main_returned=False)
        )
        assert div.channel == "main_returned"


BLINK = """
u8 state = 0;
void main() {
    u16 i;
    for (i = 0; i < 30; i++) {
        if (timer_fired()) { state = state ^ %s; led_set(state); }
    }
    halt();
}
"""


class TestTracesEqualOnRealRuns:
    def _trace(self, source, ra="gcc"):
        program = compile_source(source, register_allocator=ra)
        board = DeviceBoard(timer=Timer(fire_every_polls=3))
        return run_image(program.image, devices=board)

    def test_same_program_different_ra_traces_agree(self):
        a = self._trace(BLINK % "1", ra="gcc")
        b = self._trace(BLINK % "1", ra="linear")
        assert traces_equal(a, b) is None

    def test_behavioural_change_diverges(self):
        a = self._trace(BLINK % "1")
        b = self._trace(BLINK % "3")
        div = traces_equal(a, b)
        assert div is not None and div.channel == "led"
