"""ISA encoding/decoding and assembler tests, incl. hypothesis roundtrips."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AssemblyError,
    EncodingError,
    MachineInstr,
    OPCODES,
    assemble,
    decode,
    disassemble_words,
    encode,
    label,
)
from repro.isa.instructions import F_ADDR, F_BR, F_IMM, F_RR


class TestOpcodeTable:
    def test_opcodes_unique(self):
        numbers = [spec.opcode for spec in OPCODES.values()]
        assert len(numbers) == len(set(numbers))

    def test_opcodes_fit_six_bits(self):
        assert all(0 < spec.opcode < 64 for spec in OPCODES.values())

    def test_cycle_costs_positive(self):
        assert all(spec.cycles >= 1 for spec in OPCODES.values())

    def test_memory_ops_cost_two_cycles(self):
        for mnemonic in ("lds", "sts", "ld_z", "st_z"):
            assert OPCODES[mnemonic].cycles == 2

    def test_call_ret_cost_four(self):
        assert OPCODES["call"].cycles == 4
        assert OPCODES["ret"].cycles == 4


class TestEncoding:
    def test_rr_roundtrip(self):
        instr = MachineInstr("add", rd=5, rr=17)
        words = encode(instr)
        assert len(words) == 1
        back, consumed = decode(list(words), 0)
        assert (back.mnemonic, back.rd, back.rr) == ("add", 5, 17)
        assert consumed == 1

    def test_imm_roundtrip(self):
        instr = MachineInstr("ldi", rd=16, imm=0xAB)
        words = encode(instr)
        assert len(words) == 2
        back, consumed = decode(list(words), 0)
        assert (back.mnemonic, back.rd, back.imm) == ("ldi", 16, 0xAB)

    def test_addr_roundtrip(self):
        instr = MachineInstr("lds", rd=3, addr=0x0123)
        back, _ = decode(list(encode(instr)), 0)
        assert (back.mnemonic, back.rd, back.addr) == ("lds", 3, 0x0123)

    def test_branch_negative_offset_roundtrip(self):
        instr = MachineInstr("rjmp", addr=-12)
        back, _ = decode(list(encode(instr)), 0)
        assert back.addr == -12

    def test_register_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            encode(MachineInstr("add", rd=32, rr=0))

    def test_immediate_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            encode(MachineInstr("ldi", rd=1, imm=256))

    def test_branch_offset_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            encode(MachineInstr("breq", addr=600))

    def test_register_rename_changes_exactly_one_word(self):
        a = encode(MachineInstr("add", rd=4, rr=7))
        b = encode(MachineInstr("add", rd=5, rr=7))
        assert a != b and len(a) == len(b) == 1

    def test_address_change_keeps_first_word(self):
        a = encode(MachineInstr("lds", rd=4, addr=0x100))
        b = encode(MachineInstr("lds", rd=4, addr=0x101))
        assert a[0] == b[0] and a[1] != b[1]

    @given(st.sampled_from(sorted(OPCODES)), st.integers(0, 31),
           st.integers(0, 31), st.integers(0, 255), st.integers(0, 0xFFFF),
           st.integers(-512, 511))
    def test_encode_decode_roundtrip(self, mnemonic, rd, rr, imm, addr, offset):
        spec = OPCODES[mnemonic]
        instr = MachineInstr(mnemonic)
        if spec.fmt == F_RR:
            instr.rd, instr.rr = rd, rr
        elif spec.fmt == F_IMM:
            instr.rd, instr.imm = rd, imm
        elif spec.fmt == F_ADDR:
            instr.rd, instr.addr = rd, addr
        elif spec.fmt == F_BR:
            instr.addr = offset
        words = encode(instr)
        back, consumed = decode(list(words), 0)
        assert consumed == len(words)
        assert encode(back) == words  # stable re-encoding


class TestAssembler:
    def test_forward_branch_resolution(self):
        prog = [
            label("main"),
            MachineInstr("breq", target="main.done"),
            MachineInstr("nop"),
            label("main.done"),
            MachineInstr("halt"),
        ]
        image = assemble(prog)
        breq = image.code[0].instr
        assert breq.addr == 1  # skip the nop

    def test_backward_branch_resolution(self):
        prog = [
            label("main"),
            label("main.loop"),
            MachineInstr("nop"),
            MachineInstr("rjmp", target="main.loop"),
        ]
        image = assemble(prog)
        rjmp = image.code[1].instr
        assert rjmp.addr == -2

    def test_call_gets_absolute_address(self):
        prog = [
            label("helper"),
            MachineInstr("ret"),
            label("main"),
            MachineInstr("call", target="helper"),
            MachineInstr("halt"),
        ]
        image = assemble(prog)
        call = next(e.instr for e in image.code if e.instr.mnemonic == "call")
        assert call.addr == image.symbols["helper"] == 0

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble([label("main"), MachineInstr("rjmp", target="nowhere")])

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble([label("main"), label("main"), MachineInstr("halt")])

    def test_missing_entry_rejected(self):
        with pytest.raises(AssemblyError):
            assemble([label("not_main"), MachineInstr("halt")])

    def test_word_addresses_account_for_two_word_instrs(self):
        prog = [
            label("main"),
            MachineInstr("ldi", rd=2, imm=1),  # 2 words
            MachineInstr("nop"),
            label("main.end"),
        ]
        image = assemble(prog)
        assert image.symbols["main.end"] == 3

    def test_disassemble_words_roundtrip(self):
        prog = [
            label("main"),
            MachineInstr("ldi", rd=2, imm=7),
            MachineInstr("add", rd=2, rr=3),
            MachineInstr("halt"),
        ]
        image = assemble(prog)
        back = disassemble_words(image.words())
        assert [i.mnemonic for i in back] == ["ldi", "add", "halt"]

    def test_image_byte_serialisation(self):
        prog = [label("main"), MachineInstr("halt")]
        image = assemble(prog)
        raw = image.to_bytes()
        assert len(raw) == 2 * image.size_words

    def test_disassembly_listing_mentions_labels(self):
        prog = [label("main"), MachineInstr("halt")]
        listing = assemble(prog).disassemble()
        assert "main:" in listing and "halt" in listing
