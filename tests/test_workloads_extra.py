"""Tests for the extra (beyond-Figure-8) workloads."""

import pytest

from repro.core import compile_source, plan_update
from repro.diff.patcher import patched_words
from repro.ir import run_ir
from repro.sim import DeviceBoard, Timer, run_image
from repro.workloads.extra import EXTRA_PROGRAMS, SURGE
from repro.config import UpdateConfig


@pytest.fixture(scope="module")
def compiled_extra():
    return {name: compile_source(src) for name, src in EXTRA_PROGRAMS.items()}


class TestSurge:
    def test_compiles_and_halts(self, compiled_extra):
        result = run_image(compiled_extra["Surge"].image, max_cycles=10_000_000)
        assert result.halted

    def test_packets_have_multihop_header(self, compiled_extra):
        board = DeviceBoard(timer=Timer(period_cycles=300))
        run_image(compiled_extra["Surge"].image, devices=board)
        sent = board.radio.sent
        assert len(sent) >= 8
        quads = [sent[i : i + 4] for i in range(0, len(sent) - 3, 4)]
        for idx, (node, parent, seq, _value) in enumerate(quads):
            assert node == 7
            assert parent == 1
            assert seq == idx

    def test_queue_semantics_match_ir_level(self):
        """IR-level and machine-level execution observe the same packet
        stream under the poll-driven timer (identical logical schedules;
        a cycle-driven timer would fire at different points because IR
        steps and machine cycles are different clocks)."""
        from repro.core import Compiler, CompilerOptions

        module = Compiler(CompilerOptions()).front_and_middle(SURGE)
        ir_result = run_ir(
            module,
            devices=DeviceBoard(timer=Timer(fire_every_polls=3)),
            max_steps=10_000_000,
        )
        program = compile_source(SURGE)
        machine = run_image(
            program.image,
            devices=DeviceBoard(timer=Timer(fire_every_polls=3)),
            max_cycles=20_000_000,
        )
        assert ir_result.devices.radio.sent == machine.devices.radio.sent

    def test_update_round_trips(self, compiled_extra):
        old = compiled_extra["Surge"]
        new_source = SURGE.replace("u8 parent_id = 1;", "u8 parent_id = 2;")
        result = plan_update(old, new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert patched_words(old.image, result.diff.script) == result.new.image.words()
        # a data-only change: the parent id lives in the data segment
        assert result.data_script_bytes > 0

    def test_structural_update_is_cheap(self, compiled_extra):
        """Adding a drop counter touches two functions; the rest of this
        ~200-instruction program must not re-encode."""
        old = compiled_extra["Surge"]
        new_source = SURGE.replace(
            "u16 packets_sent = 0;", "u16 packets_sent = 0;\nu16 drops = 0;"
        ).replace(
            "    if (queue_full()) {\n        return;  // drop on overflow, like the real Surge\n    }",
            "    if (queue_full()) {\n        drops = drops + 1;\n        return;\n    }",
        )
        baseline = plan_update(old, new_source, config=UpdateConfig(ra="gcc", da="gcc"))
        ucc = plan_update(old, new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert ucc.diff_inst <= baseline.diff_inst
        assert ucc.diff_inst < 0.25 * ucc.diff.new_instructions


class TestOscilloscope:
    def test_compiles_and_halts(self, compiled_extra):
        result = run_image(
            compiled_extra["Oscilloscope"].image, max_cycles=10_000_000
        )
        assert result.halted

    def test_batches_framed_with_marker(self, compiled_extra):
        board = DeviceBoard(timer=Timer(period_cycles=300))
        run_image(compiled_extra["Oscilloscope"].image, devices=board)
        sent = board.radio.sent
        markers = [i for i, w in enumerate(sent) if w == 0xBEEF]
        assert markers
        # each marker is followed by exactly 10 readings
        for m in markers[:-1]:
            assert markers[markers.index(m) + 1] - m == 11

    def test_led_shows_batch_count(self, compiled_extra):
        board = DeviceBoard(timer=Timer(period_cycles=300))
        run_image(compiled_extra["Oscilloscope"].image, devices=board)
        writes = board.led.writes
        assert writes == [i & 7 for i in range(len(writes))]


class TestExtendedCases:
    @pytest.mark.parametrize("case_id", ["E1", "E2", "E3", "E4"])
    def test_extended_case_round_trips(self, case_id):
        from repro.workloads.extra import EXTRA_CASES

        _desc, old_src, new_src = EXTRA_CASES[case_id]
        old = compile_source(old_src)
        for ra, da in (("gcc", "gcc"), ("ucc", "ucc")):
            result = plan_update(old, new_src, config=UpdateConfig(ra=ra, da=da))
            assert (
                patched_words(old.image, result.diff.script)
                == result.new.image.words()
            )

    @pytest.mark.parametrize("case_id", ["E1", "E2", "E3", "E4"])
    def test_extended_case_ucc_not_worse(self, case_id):
        from repro.workloads.extra import EXTRA_CASES

        _desc, old_src, new_src = EXTRA_CASES[case_id]
        old = compile_source(old_src)
        baseline = plan_update(old, new_src, config=UpdateConfig(ra="gcc", da="gcc"))
        ucc = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc"))
        assert ucc.diff_inst <= baseline.diff_inst

    def test_e1_is_pure_data_update(self):
        from repro.workloads.extra import EXTRA_CASES

        _desc, old_src, new_src = EXTRA_CASES["E1"]
        old = compile_source(old_src)
        result = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc"))
        assert result.diff_inst == 0
        assert result.data_script_bytes > 0

    def test_e3_new_binary_beacons(self):
        from repro.workloads.extra import EXTRA_CASES

        _desc, old_src, new_src = EXTRA_CASES["E3"]
        old = compile_source(old_src)
        result = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc"))
        board = DeviceBoard(timer=Timer(period_cycles=300))
        run_image(result.new.image, devices=board, max_cycles=20_000_000)
        assert 0xFEED in board.radio.sent
