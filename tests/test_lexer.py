"""Lexer unit tests."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        toks = tokenize("counter")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].value == "counter"

    def test_identifier_with_underscore_and_digits(self):
        assert values("tosh_run_next_task2") == ["tosh_run_next_task2"]

    def test_keywords_are_distinguished(self):
        toks = tokenize("u8 u16 void if else while for return break continue const")
        assert all(t.kind is TokenKind.KEYWORD for t in toks[:-1])

    def test_keyword_prefix_is_identifier(self):
        toks = tokenize("u8x iffy")
        assert [t.kind for t in toks[:-1]] == [TokenKind.IDENT, TokenKind.IDENT]

    def test_decimal_literal(self):
        assert values("42") == [42]

    def test_zero(self):
        assert values("0") == [0]

    def test_hex_literal(self):
        assert values("0x1b") == [0x1B]

    def test_hex_uppercase(self):
        assert values("0XFF") == [0xFF]

    def test_char_literal(self):
        assert values("'A'") == [65]

    def test_char_escapes(self):
        assert values(r"'\n' '\t' '\0' '\\'") == [10, 9, 0, 92]

    def test_punctuators_maximal_munch(self):
        assert values("<<= >>= << >> <= >= == != && || ++ --") == [
            "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
        ]

    def test_compound_assign_operators(self):
        assert values("+= -= *= /= %= &= |= ^=") == [
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
        ]


class TestTrivia:
    def test_whitespace_skipped(self):
        assert values("  a \t b \n c ") == ["a", "b", "c"]

    def test_line_comment(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].location.line, toks[0].location.column) == (1, 1)
        assert (toks[1].location.line, toks[1].location.column) == (2, 3)

    def test_filename_recorded(self):
        toks = tokenize("a", filename="blink.c")
        assert toks[0].location.filename == "blink.c"


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_malformed_number_suffix(self):
        with pytest.raises(LexError):
            tokenize("12ab")

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")

    def test_error_carries_location(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ok\n   @")
        assert excinfo.value.location.line == 2
