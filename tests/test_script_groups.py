"""Out-of-order script-group tests (paper §2.2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import compile_source, plan_update
from repro.diff import diff_images
from repro.diff.groups import (
    GROUP_HEADER_BYTES,
    apply_groups,
    group_script,
    grouped_words,
)
from repro.diff.patcher import PatchError
from repro.workloads import CASES
from repro.config import UpdateConfig


@pytest.fixture(scope="module")
def update_pair():
    case = CASES["6"]
    old = compile_source(case.old_source)
    result = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
    return old, result


class TestGrouping:
    def test_groups_cover_whole_script(self, update_pair):
        old, result = update_pair
        groups = group_script(result.diff.script)
        total_prims = sum(len(g.primitives) for g in groups)
        assert total_prims == len(result.diff.script.primitives)

    def test_in_order_application_matches_sequential(self, update_pair):
        old, result = update_pair
        groups = group_script(result.diff.script)
        rebuilt = grouped_words(old.image, groups, result.diff.new_instructions)
        assert rebuilt == result.new.image.words()

    def test_out_of_order_application(self, update_pair):
        """The paper's point: groups apply independent of arrival order."""
        old, result = update_pair
        groups = group_script(result.diff.script, max_group_bytes=24)
        assert len(groups) >= 2
        rng = random.Random(13)
        for _ in range(5):
            shuffled = list(groups)
            rng.shuffle(shuffled)
            rebuilt = grouped_words(
                old.image, shuffled, result.diff.new_instructions
            )
            assert rebuilt == result.new.image.words()

    def test_missing_group_detected(self, update_pair):
        old, result = update_pair
        groups = group_script(result.diff.script, max_group_bytes=24)
        with pytest.raises(PatchError):
            apply_groups(old.image, groups[:-1], result.diff.new_instructions)

    def test_group_size_respected(self, update_pair):
        old, result = update_pair
        limit = 32
        groups = group_script(result.diff.script, max_group_bytes=limit)
        for group in groups:
            # a single oversized primitive may exceed the limit alone
            if len(group.primitives) > 1:
                assert group.size_bytes <= limit + GROUP_HEADER_BYTES

    def test_header_overhead_accounted(self, update_pair):
        _, result = update_pair
        script = result.diff.script
        groups = group_script(script, max_group_bytes=24)
        grouped_bytes = sum(g.size_bytes for g in groups)
        assert grouped_bytes == script.size_bytes + GROUP_HEADER_BYTES * len(groups)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(16, 80))
    def test_grouping_roundtrip_property(self, seed, limit):
        rng = random.Random(seed)
        ops = ["+", "-", "^", "&"]
        def make_src(r):
            lines = [f"u8 v{i} = {i};" for i in range(3)]
            for _ in range(r.randrange(1, 12)):
                lines.append(
                    f"v{r.randrange(3)} = v{r.randrange(3)} {r.choice(ops)} v{r.randrange(3)};"
                )
            body = "\n    ".join(lines)
            return f"void main() {{\n    {body}\n    led_set(v0);\n    halt();\n}}"

        old = compile_source(make_src(random.Random(seed)))
        new = compile_source(make_src(random.Random(seed + 1)))
        diff = diff_images(old.image, new.image)
        groups = group_script(diff.script, max_group_bytes=limit)
        shuffled = list(groups)
        rng.shuffle(shuffled)
        rebuilt = grouped_words(old.image, shuffled, diff.new_instructions)
        assert rebuilt == new.image.words()
