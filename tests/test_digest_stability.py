"""Regression tests for the DIGEST-TAINT fixes.

The one true positive the pass found in ``src`` was
``repro.config._digest_of`` serialising with ``json.dumps(...,
default=str)``: a non-JSON value slipping into a config would have been
silently serialised via ``repr()`` — embedding a memory address for
plain objects, i.e. a different "content" digest in every process.
The fix replaces the fallback with a loudly-raising strict encoder.

These tests pin both halves: the strict encoder rejects non-JSON
values, and every content digest in the pipeline is byte-identical
across processes launched with different ``PYTHONHASHSEED`` values
(the environment knob that perturbs set/dict-hash iteration order).
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import CompileConfig, TopologySpec, UpdateConfig

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

# One script per digest surface: each prints the digest(s) and is run
# under several PYTHONHASHSEED values; all outputs must be identical.
_CONFIG_DIGESTS = """
from repro.config import CompileConfig, UpdateConfig, TopologySpec, FleetJob
print(CompileConfig(ra="linear", depths=(("bump", 2),)).digest())
print(UpdateConfig(ra="ucc", da="ucc").digest())
print(TopologySpec(kind="grid", width=3, height=3).digest())
print(FleetJob(old_source="a", new_source="b").digest())
"""

_CAMPAIGN_DIGEST = """
from repro.net.campaign import run_campaign
from repro.net.faults import FaultPlan, NodeCrash
from repro.net.topology import grid
plan = FaultPlan(crashes=(NodeCrash(node=2, round=2, reboot_round=5),),
                 corrupt_prob=0.1, seed=7)
report = run_campaign(grid(3, 3), b"x" * 600, loss=0.1, seed=3, plan=plan)
print(report.digest())
print(plan.digest())
"""

_SOLVER_MEMO_DIGEST = """
from repro.ilp.canonical import canonical_digest
from repro.ilp.model import IntegerProgram

prog = IntegerProgram()
for i in range(6):
    prog.add_objective(f"x{i}", float((i * 7) % 5 - 2))
prog.add_constraint([(1.0, f"x{i}") for i in range(6)], "<=", 3.0)
prog.add_constraint([(2.0, "x0"), (1.0, "x5")], ">=", 1.0)
prog.fix("x2", 1)
print(canonical_digest(prog, backend="bb", incumbent={"x0": 1, "x2": 1}))
"""


def _run_under_hashseed(snippet: str, seed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": seed,
            "PYTHONPATH": REPO_SRC,
            "PATH": "/usr/bin:/bin",
        },
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestStrictEncoder:
    def test_rejects_non_json_values(self):
        from repro.config import _digest_of

        class Opaque:
            pass

        with pytest.raises(TypeError, match="non-JSON value"):
            _digest_of({"obj": Opaque()})

    def test_primitives_still_digest(self):
        from repro.config import _digest_of

        digest = _digest_of({"a": [1, 2.5, "x", True, None]})
        assert len(digest) == 64

    def test_config_digests_unchanged_by_strictness(self):
        # The strict default never fires for real configs — all fields
        # are JSON primitives by construction — so digests keep their
        # pre-fix bytes (service caches and memo keys stay warm).
        assert CompileConfig().digest() == CompileConfig().digest()
        assert UpdateConfig(ra="ucc", da="ucc").digest()
        assert TopologySpec(kind="line", nodes=5).digest()


@pytest.mark.parametrize(
    "snippet",
    [_CONFIG_DIGESTS, _CAMPAIGN_DIGEST, _SOLVER_MEMO_DIGEST],
    ids=["config", "campaign", "solver-memo"],
)
def test_digests_stable_across_hashseed(snippet):
    outputs = {
        _run_under_hashseed(snippet, seed) for seed in ("0", "1", "4242")
    }
    assert len(outputs) == 1, (
        "digest depends on PYTHONHASHSEED (set/dict iteration order "
        f"leaked into a preimage): {outputs}"
    )
    assert outputs.pop().strip()
