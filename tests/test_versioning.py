"""Version-graph tests: replay identity, planning, versioned campaigns.

The acceptance criterion pinned here: **every** planned path — chained
step diffs, merged diff (direct or composed), full image — rebuilds a
byte-identical target image, including under crash/corruption fault
plans, and the session's typed API exposes the whole machinery.
"""

import pytest

from repro.config import CohortPlan, VersionGraphConfig, VersionSpec
from repro.core.compiler import Compiler
from repro.core.errors import PlanStateError
from repro.core.session import UpdateSession, VersionedCampaignResult
from repro.net.coding import CodedTransferParams
from repro.net.errors import NetConfigError
from repro.net.faults import FaultPlan, NodeCrash
from repro.net.topology import grid
from repro.versioning import (
    VersionGraph,
    build_version_graph,
    plan_cohorts,
    run_versioned_campaign,
)
from repro.versioning.graph import (
    VersionEdge,
    decode_plan_blob,
    encode_plan_blob,
)
from repro.versioning.planner import plan_edges, predicted_wave_energy_j
from repro.workloads import CASES

CASE = CASES["3"]
V3 = CASE.old_source
V5 = CASE.new_source
V6 = V5.replace("u8 am_type = 4;", "u8 am_type = 5;")
V7 = V5.replace("u8 am_type = 4;", "u8 am_type = 6;").replace(
    "cnt = cnt + 1;", "cnt = cnt + 2;"
)
RELEASES = {3: V3, 5: V5, 6: V6, 7: V7}


@pytest.fixture(scope="module")
def graph():
    return build_version_graph(RELEASES)


@pytest.fixture(scope="module")
def composed_graph():
    return build_version_graph(
        RELEASES, config=VersionGraphConfig(merged_from="composed")
    )


def target_image(graph):
    program = graph.programs[graph.target]
    return program.image.words(), program.image.data


class TestVersionGraph:
    def test_versions_and_target(self, graph):
        assert graph.versions == (3, 5, 6, 7)
        assert graph.target == 7

    def test_chain_edges_are_update_conscious_steps(self, graph):
        for src, dst in ((3, 5), (5, 6), (6, 7)):
            edge = graph.edge(src, dst)
            assert edge is not None
            assert edge.kind == "step"
            assert edge.script_bytes > 0

    def test_image_digests_are_distinct_and_stable(self, graph):
        digests = [graph.image_digest(v) for v in graph.versions]
        assert len(set(digests)) == len(digests)
        assert digests == [graph.image_digest(v) for v in graph.versions]

    def test_backwards_chain_is_rejected(self, graph):
        with pytest.raises(PlanStateError):
            graph.step_path(7, 3)
        with pytest.raises(PlanStateError):
            graph.step_path(3, 4)  # v4 was never released


class TestReplayIdentity:
    """Acceptance: every planned path yields the identical final image."""

    def test_every_pair_every_strategy(self, graph, composed_graph):
        words, data = target_image(graph)
        pairs = [
            (src, dst)
            for src in graph.versions
            for dst in graph.versions
            if src < dst
        ]
        for src, dst in pairs:
            expected_words = graph.programs[dst].image.words()
            expected_data = graph.programs[dst].image.data
            chain = graph.step_path(src, dst)
            outcomes = [
                graph.replay(chain, graph.step_edges(src, dst)),
                graph.replay([src, dst], [graph.merged_edge(src, dst)]),
                graph.replay([src, dst], [graph.full_edge(src, dst)]),
                composed_graph.replay(
                    [src, dst], [composed_graph.merged_edge(src, dst)]
                ),
            ]
            for got_words, got_data in outcomes:
                assert got_words == expected_words
                assert got_data == expected_data
        assert (words, data) == (
            graph.programs[7].image.words(),
            graph.programs[7].image.data,
        )

    def test_replay_rejects_misordered_edges(self, graph):
        edges = graph.step_edges(3, 7)
        with pytest.raises(PlanStateError):
            graph.replay([3, 5, 6, 7], list(reversed(edges)))
        with pytest.raises(PlanStateError):
            graph.replay([3, 7], edges)


class TestPlanBlob:
    def test_roundtrip(self, graph):
        edges = graph.step_edges(3, 7)
        blob = encode_plan_blob(edges)
        steps = decode_plan_blob(blob)
        assert len(steps) == len(edges)
        for (code, data), edge in zip(steps, edges):
            assert code == edge.code_script.to_bytes()
            assert data == edge.data_script.to_bytes()

    def test_truncation_and_trailing_bytes_raise(self, graph):
        blob = encode_plan_blob(graph.step_edges(3, 5))
        with pytest.raises(PlanStateError):
            decode_plan_blob(blob[:-3])
        with pytest.raises(PlanStateError):
            decode_plan_blob(blob + b"\x00")
        with pytest.raises(PlanStateError):
            decode_plan_blob(b"")
        with pytest.raises(PlanStateError):
            encode_plan_blob([])


class TestCohortPlanner:
    def test_cohorts_grouped_by_version(self, graph):
        fleet = {0: 7, 1: 3, 2: 3, 3: 5, 4: 6, 5: 7}
        plans = plan_cohorts(graph, fleet)
        assert [p.from_version for p in plans] == [3, 5, 6]
        assert plans[0].nodes == (1, 2)
        assert all(p.to_version == 7 for p in plans)

    def test_nodes_at_target_need_no_plan(self, graph):
        assert plan_cohorts(graph, {0: 7, 1: 7, 2: 7}) == ()

    def test_unknown_or_ahead_versions_raise(self, graph):
        with pytest.raises(PlanStateError):
            plan_cohorts(graph, {1: 4})
        with pytest.raises(PlanStateError):
            plan_cohorts(graph, {1: 7}, target=5)

    def test_diff_plans_beat_full_images(self, graph):
        """Acceptance direction: a tiny inter-version diff must always
        plan cheaper than shipping the whole image."""
        plans = plan_cohorts(graph, {1: 3, 2: 5, 3: 6})
        for plan in plans:
            assert plan.strategy in ("chain", "merged")
            full = graph.full_edge(plan.from_version, 7)
            full_energy = predicted_wave_energy_j(
                full.script_bytes, node_count=4, mean_degree=4.0,
                config=graph.config,
            )
            assert plan.predicted_energy_j < full_energy

    def test_plan_edges_match_the_strategy(self, graph):
        plans = plan_cohorts(graph, {1: 3})
        edges = plan_edges(graph, plans[0])
        assert [(e.src, e.dst) for e in edges] == list(
            zip(plans[0].path, plans[0].path[1:])
        )

    def test_frozen_plan_validation(self):
        with pytest.raises(ValueError):
            CohortPlan(
                from_version=3, to_version=7, nodes=(1,),
                strategy="teleport", path=(3, 7),
                script_bytes=1, predicted_energy_j=0.1,
            )
        with pytest.raises(ValueError):
            CohortPlan(
                from_version=3, to_version=7, nodes=(1,),
                strategy="full", path=(3, 5, 7),
                script_bytes=1, predicted_energy_j=0.1,
            )

    def test_version_spec_validation(self):
        with pytest.raises(ValueError):
            VersionSpec(version=-1, source="void main() {}")
        with pytest.raises(ValueError):
            VersionSpec(version=1, source="")


class TestVersionedCampaign:
    def fleet(self, topology):
        versions = {0: 7}
        for node in range(1, topology.node_count):
            versions[node] = (3, 5, 6)[node % 3]
        return versions

    def test_heterogeneous_fleet_converges_and_replays(self, graph):
        topo = grid(3, 3)
        fleet = self.fleet(topo)
        plans = plan_cohorts(graph, fleet)
        report = run_versioned_campaign(
            graph, plans, topo, loss=0.1, seed=3
        )
        assert report.converged
        assert report.replay_identical
        assert report.target_digest == graph.image_digest(7)
        assert all(
            c.final_image_digest == report.target_digest
            for c in report.cohorts
        )
        versions = report.node_versions(fleet)
        assert all(v == 7 for n, v in versions.items() if n != 0)

    def test_deterministic_report_digest(self, graph):
        topo = grid(3, 3)
        plans = plan_cohorts(graph, self.fleet(topo))
        digests = {
            run_versioned_campaign(
                graph, plans, topo, loss=0.2, seed=9
            ).digest()
            for _ in range(2)
        }
        assert len(digests) == 1

    def test_replay_identity_under_faults(self, graph):
        plan = FaultPlan(
            crashes=(NodeCrash(node=4, round=2, reboot_round=8),),
            corrupt_prob=0.05,
            seed=13,
        )
        topo = grid(3, 3)
        plans = plan_cohorts(graph, self.fleet(topo))
        report = run_versioned_campaign(
            graph, plans, topo, loss=0.1, seed=5, fault_plan=plan,
            max_rounds=400,
        )
        assert report.replay_identical

    def test_coded_fountain_waves(self, graph):
        topo = grid(3, 3)
        plans = plan_cohorts(graph, self.fleet(topo))
        report = run_versioned_campaign(
            graph, plans, topo, loss=0.2, seed=4,
            coding=CodedTransferParams(scheme="lt"),
        )
        assert report.converged
        assert report.replay_identical

    def test_xor_parity_on_trickle_waves(self, graph):
        topo = grid(3, 3)
        plans = plan_cohorts(graph, self.fleet(topo))
        report = run_versioned_campaign(
            graph, plans, topo, loss=0.2, seed=4, protocol="trickle",
            coding=CodedTransferParams(scheme="xor"),
        )
        assert report.converged
        assert report.replay_identical

    def test_scheme_protocol_mismatch_raises(self, graph):
        topo = grid(3, 3)
        plans = plan_cohorts(graph, self.fleet(topo))
        with pytest.raises(NetConfigError):
            run_versioned_campaign(
                graph, plans, topo, protocol="trickle",
                coding=CodedTransferParams(scheme="lt"),
            )
        with pytest.raises(NetConfigError):
            run_versioned_campaign(
                graph, plans, topo, protocol="flood",
                coding=CodedTransferParams(scheme="xor"),
            )


class TestSessionVersionedPush:
    def session(self, version=0):
        old = Compiler().compile(V3)
        return UpdateSession(
            old, topology=grid(3, 3), loss=0.1, loss_seed=2, version=version
        )

    def test_multi_release_push_advances_history(self):
        session = self.session(version=3)
        result = session.push_campaign({5: V5, 6: V6, 7: V7})
        assert isinstance(result, VersionedCampaignResult)
        assert result.converged
        assert session.version == 7
        assert sorted(session.history) == [3, 5, 6, 7]
        assert session.deployed is session.history[7]

    def test_heterogeneous_fleet_versions(self):
        session = self.session(version=3)
        session.push_campaign({5: V5})
        fleet = {node: 3 if node % 2 else 5 for node in range(1, 9)}
        result = session.push_campaign({6: V6}, fleet_versions=fleet)
        assert isinstance(result, VersionedCampaignResult)
        assert {p.from_version for p in result.plans} == {3, 5}
        assert session.version == 6

    def test_single_next_release_stays_on_classic_path(self):
        session = self.session()
        result = session.push_campaign({1: V5})
        assert not isinstance(result, VersionedCampaignResult)
        assert result.converged
        assert session.version == 1

    def test_stale_release_labels_are_rejected(self):
        session = self.session(version=3)
        with pytest.raises(PlanStateError):
            session.push_campaign({3: V5})
        with pytest.raises(PlanStateError):
            session.push_campaign({})

    def test_bare_string_payload_is_deprecated_but_identical(self):
        legacy = self.session()
        with pytest.warns(DeprecationWarning, match="version-keyed"):
            a = legacy.push_campaign(V5)
        typed = self.session()
        b = typed.push_campaign({1: V5})
        assert a.report.digest() == b.report.digest()
        assert legacy.version == typed.version == 1


class TestGraphConstruction:
    def test_needs_two_releases(self):
        with pytest.raises(PlanStateError):
            build_version_graph({7: V7})

    def test_duplicate_spec_labels_rejected(self):
        specs = [
            VersionSpec(version=1, source=V3),
            VersionSpec(version=1, source=V5),
        ]
        with pytest.raises(PlanStateError):
            build_version_graph(specs)

    def test_base_must_precede_releases(self):
        deployed = Compiler().compile(V3)
        with pytest.raises(PlanStateError):
            build_version_graph({5: V5}, base=(6, deployed))

    def test_base_anchor_labels_deployed_binary(self):
        deployed = Compiler().compile(V3)
        graph = build_version_graph({5: V5, 7: V7}, base=(3, deployed))
        assert graph.versions == (3, 5, 7)
        assert graph.specs[3].label == "deployed"
        assert isinstance(graph, VersionGraph)
        assert isinstance(graph.edge(3, 5), VersionEdge)


class TestVersionedFuzz:
    def test_seeded_sweep_passes(self):
        """Version-heterogeneous fleets under random faults uphold the
        replay-identity + convergence-or-quarantine oracle battery."""
        from repro.fuzz import run_versioned_fuzz

        report = run_versioned_fuzz(seed=11, iters=10)
        assert report.ok, report.render()
        assert report.converged + report.partial == 10
        assert report.crashes_injected > 0

    def test_sweep_digest_is_reproducible(self):
        from repro.fuzz import run_versioned_fuzz

        a = run_versioned_fuzz(seed=5, iters=4)
        b = run_versioned_fuzz(seed=5, iters=4)
        assert a.digest == b.digest
        assert a.ok and b.ok
