"""Fault-plan and node update state machine tests."""

import random

import pytest

from repro.net import (
    FaultPlan,
    NodeCrash,
    NodeUpdateState,
    PartitionWindow,
    ScriptPacket,
    generate_fault_plan,
    packet_crc,
    packetise_blob,
)


class TestFaultPlan:
    def test_sink_never_crashes(self):
        with pytest.raises(ValueError):
            NodeCrash(node=0, round=3)

    def test_reboot_must_follow_crash(self):
        with pytest.raises(ValueError):
            NodeCrash(node=2, round=5, reboot_round=5)

    def test_partition_cannot_contain_sink(self):
        with pytest.raises(ValueError):
            PartitionWindow(start=1, end=4, nodes=(0, 2))

    def test_partition_severs_only_across_the_cut(self):
        window = PartitionWindow(start=2, end=5, nodes=(3, 4))
        assert window.severs(3, 1, 2)  # across the cut, inside the window
        assert not window.severs(3, 4, 2)  # both inside the island
        assert not window.severs(1, 2, 3)  # both outside the island
        assert not window.severs(3, 1, 5)  # window is half-open: healed
        assert not window.severs(3, 1, 1)  # before the window opens

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_prob=1.0)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_prob=-0.1)

    def test_one_crash_per_node(self):
        with pytest.raises(ValueError):
            FaultPlan(
                crashes=(
                    NodeCrash(node=2, round=1),
                    NodeCrash(node=2, round=9),
                )
            )

    def test_digest_is_content_addressed(self):
        a = FaultPlan(crashes=(NodeCrash(node=1, round=2),), seed=7)
        b = FaultPlan(crashes=(NodeCrash(node=1, round=2),), seed=7)
        c = FaultPlan(crashes=(NodeCrash(node=1, round=3),), seed=7)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(corrupt_prob=0.1).is_empty

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan(
            crashes=(NodeCrash(node=4, round=2, reboot_round=9),),
            partitions=(PartitionWindow(start=3, end=8, nodes=(5, 6)),),
            corrupt_prob=0.05,
        )
        text = plan.describe()
        assert "node 4" in text
        assert "partition" in text
        assert "corrupt" in text

    def test_generated_plan_deterministic(self):
        a = generate_fault_plan(random.Random("plan:1"), 9)
        b = generate_fault_plan(random.Random("plan:1"), 9)
        assert a == b
        assert a.digest() == b.digest()

    def test_generated_plan_valid_for_fleet(self):
        for seed in range(20):
            plan = generate_fault_plan(random.Random(f"plan:{seed}"), 12)
            for crash in plan.crashes:
                assert 1 <= crash.node < 12
            for window in plan.partitions:
                assert all(1 <= node < 12 for node in window.nodes)


class TestScriptPackets:
    def test_crc_covers_index_and_payload(self):
        assert packet_crc(0, b"abc") != packet_crc(1, b"abc")
        assert packet_crc(0, b"abc") != packet_crc(0, b"abd")

    def test_packetise_round_trips(self):
        blob = bytes(range(256)) * 2
        packets = packetise_blob(blob, 22)
        assert b"".join(p.payload for p in packets) == blob
        assert [p.index for p in packets] == list(range(len(packets)))
        for packet in packets:
            assert packet.crc == packet_crc(packet.index, packet.payload)

    def test_corruption_breaks_the_crc(self):
        packet = ScriptPacket.make(3, b"payload")
        broken = packet.corrupted(flip_at=2)
        assert broken.payload != packet.payload
        assert packet_crc(broken.index, broken.payload) != broken.crc


class TestNodeUpdateState:
    def _packets(self, blob=b"0123456789", payload=4):
        return packetise_blob(blob, payload)

    def test_assembles_and_stages(self):
        packets = self._packets()
        state = NodeUpdateState(node=1, version=0)
        for packet in packets:
            assert state.receive(packet, len(packets)) == "accepted"
        assert state.state == "staged"
        assert state.assembled_blob() == b"0123456789"

    def test_corrupt_packet_rejected(self):
        packets = self._packets()
        state = NodeUpdateState(node=1, version=0)
        verdict = state.receive(packets[0].corrupted(1), len(packets))
        assert verdict == "corrupt"
        assert state.crc_rejections == 1
        assert 0 not in state.bank

    def test_duplicate_detected(self):
        packets = self._packets()
        state = NodeUpdateState(node=1, version=0)
        state.receive(packets[0], len(packets))
        assert state.receive(packets[0], len(packets)) == "duplicate"
        assert state.duplicates == 1

    def test_commit_flips_version_after_apply_rounds(self):
        packets = self._packets()
        state = NodeUpdateState(node=1, version=0, apply_rounds=2)
        for packet in packets:
            state.receive(packet, len(packets))
        assert not state.tick_apply(new_version=1)  # first write round
        assert state.state == "applying"
        assert state.version == 0  # boot pointer untouched mid-write
        assert state.tick_apply(new_version=1)  # commit round
        assert state.committed
        assert state.version == 1

    def test_crash_mid_patch_rolls_back(self):
        """The crash-consistency invariant: a mid-apply crash leaves the
        node on the golden image with no staging residue."""
        packets = self._packets()
        state = NodeUpdateState(node=1, version=0, apply_rounds=3)
        for packet in packets:
            state.receive(packet, len(packets))
        state.tick_apply(new_version=1)  # half-written inactive bank
        state.crash()
        assert state.version == 0  # golden image
        assert not state.committed
        assert state.bank == {}  # staging bank wiped
        state.reboot(round_no=9)
        assert state.version == 0
        assert state.state == "idle"  # re-syncs from scratch

    def test_crash_after_commit_keeps_new_image(self):
        packets = self._packets()
        state = NodeUpdateState(node=1, version=0, apply_rounds=1)
        for packet in packets:
            state.receive(packet, len(packets))
        assert state.tick_apply(new_version=1)
        state.crash()
        state.reboot(round_no=5)
        assert state.committed
        assert state.version == 1  # boots the fully verified new image

    def test_nack_backoff_doubles_and_resets(self):
        packets = self._packets()
        state = NodeUpdateState(node=1, version=0)
        assert state.should_nack(1, len(packets))
        state.note_nack(1, len(packets))
        assert state.advertised_missing == set(range(len(packets)))
        state.note_round(made_progress=False)
        state.note_nack(2, len(packets))
        assert not state.should_nack(3, len(packets))  # backed off
        state.note_round(made_progress=True)  # progress resets
        state.note_nack(4, len(packets))
        assert state.should_nack(5, len(packets))

    def test_dead_or_committed_nodes_ignore_traffic(self):
        packets = self._packets()
        state = NodeUpdateState(node=1, version=0)
        state.crash()
        assert state.receive(packets[0], len(packets)) == "ignored"
        done = NodeUpdateState(node=2, version=1, committed=True)
        assert done.receive(packets[0], len(packets)) == "ignored"
