"""The pinned API surface (`tools/check_api.py`).

The snapshot gate must pass on the checked-in tree, and it must fail
when the snapshot disagrees with the live surface — otherwise CI's
"docs" job is a no-op.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECK_API = REPO / "tools" / "check_api.py"
SNAPSHOT = REPO / "tools" / "api_surface.txt"


def _run(*argv):
    return subprocess.run(
        [sys.executable, str(CHECK_API), *argv],
        capture_output=True,
        text=True,
    )


def test_surface_matches_snapshot():
    proc = _run()
    assert proc.returncode == 0, proc.stderr
    assert "surface matches snapshot" in proc.stdout


def test_snapshot_is_checked_in_and_regenerable():
    assert SNAPSHOT.exists()
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_api
    finally:
        sys.path.pop(0)
    assert check_api.render_surface() == SNAPSHOT.read_text(encoding="utf-8")


def test_drift_is_detected():
    """A surface/snapshot mismatch must produce a diff, not a pass."""
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_api
    finally:
        sys.path.pop(0)
    rendered = check_api.render_surface()
    doctored = rendered.replace("def plan_update", "def plan_updates")
    assert doctored != rendered
    # The gate's comparison is plain string equality on the rendering,
    # so any drift in a signature line fails the build.
    assert doctored != SNAPSHOT.read_text(encoding="utf-8")


def test_snapshot_covers_every_public_name():
    import repro.api as api

    text = SNAPSHOT.read_text(encoding="utf-8")
    for name in api.__all__:
        assert name in text, f"{name} missing from tools/api_surface.txt"
