"""Regression tests for the ERR001 migration.

Every bare ``raise ValueError/RuntimeError/AssertionError`` in
``repro.net`` and ``repro.core`` moved onto the structured hierarchies
(:mod:`repro.net.errors`, :mod:`repro.core.errors`).  Each test pins
three things: the precise type is raised, it still subclasses the
builtin it replaced (so pre-migration handlers keep working), and its
structured attributes carry the offending values.
"""

import pytest

from repro.config import UpdateConfig
from repro.core import compile_source, plan_update
from repro.core.errors import (
    EmptyFleetError,
    PatchDivergenceError,
    PlanStateError,
)
from repro.core.session import SessionResult, UpdateSession
from repro.net.campaign import run_campaign
from repro.net.errors import FaultPlanError, NetConfigError, TopologyError
from repro.net.faults import FaultPlan, NodeCrash, PartitionWindow
from repro.net.lossy import disseminate_lossy
from repro.net.node_state import packetise_blob
from repro.net.topology import build_topology, grid

OLD = """
u16 counter = 0;

u16 bump(u16 x) {
    return x + 1;
}

void main() {
    counter = bump(counter);
    halt();
}
"""
NEW = OLD.replace("x + 1", "x + 2")


class TestFaultPlanErrors:
    def test_node_crash_bad_node(self):
        with pytest.raises(FaultPlanError) as info:
            NodeCrash(node=0, round=1)
        assert info.value.field == "node"
        assert info.value.value == 0

    def test_node_crash_bad_round(self):
        with pytest.raises(FaultPlanError) as info:
            NodeCrash(node=1, round=0)
        assert info.value.field == "round"

    def test_node_crash_bad_reboot(self):
        with pytest.raises(FaultPlanError) as info:
            NodeCrash(node=1, round=5, reboot_round=5)
        assert info.value.field == "reboot_round"
        assert info.value.value == 5

    def test_partition_bad_start(self):
        with pytest.raises(FaultPlanError) as info:
            PartitionWindow(start=0, end=3, nodes=(1,))
        assert info.value.field == "start"

    def test_partition_bad_end(self):
        with pytest.raises(FaultPlanError) as info:
            PartitionWindow(start=3, end=3, nodes=(1,))
        assert info.value.field == "end"

    def test_partition_empty_nodes(self):
        with pytest.raises(FaultPlanError) as info:
            PartitionWindow(start=1, end=3, nodes=())
        assert info.value.field == "nodes"

    def test_partition_contains_sink(self):
        with pytest.raises(FaultPlanError) as info:
            PartitionWindow(start=1, end=3, nodes=(0, 1))
        assert info.value.field == "nodes"

    def test_plan_bad_corrupt_prob(self):
        with pytest.raises(FaultPlanError) as info:
            FaultPlan(corrupt_prob=1.5)
        assert info.value.field == "corrupt_prob"
        assert info.value.value == 1.5

    def test_plan_bad_duplicate_prob(self):
        with pytest.raises(FaultPlanError) as info:
            FaultPlan(duplicate_prob=-0.1)
        assert info.value.field == "duplicate_prob"

    def test_plan_duplicate_crash_nodes(self):
        with pytest.raises(FaultPlanError) as info:
            FaultPlan(crashes=(NodeCrash(1, 1), NodeCrash(1, 2)))
        assert info.value.field == "crashes"

    def test_is_still_a_value_error(self):
        # Pre-migration handlers dispatched on ValueError.
        with pytest.raises(ValueError):
            NodeCrash(node=-1, round=1)


class TestNetConfigErrors:
    def test_packetise_blob_bad_payload(self):
        with pytest.raises(NetConfigError) as info:
            packetise_blob(b"abc", payload_per_packet=0)
        assert info.value.parameter == "payload_per_packet"
        assert info.value.value == 0

    def test_lossy_bad_loss(self):
        with pytest.raises(NetConfigError) as info:
            disseminate_lossy(grid(2, 2), [], loss=1.0)
        assert info.value.parameter == "loss"
        assert info.value.value == 1.0

    def test_campaign_bad_loss(self):
        with pytest.raises(NetConfigError) as info:
            run_campaign(grid(2, 2), b"blob", loss=-0.5)
        assert info.value.parameter == "loss"

    def test_is_still_a_value_error(self):
        with pytest.raises(ValueError):
            packetise_blob(b"abc", payload_per_packet=-1)


class TestTopologyErrors:
    def test_unknown_kind(self):
        with pytest.raises(TopologyError) as info:
            build_topology("torus")
        assert info.value.kind == "torus"

    def test_unsampleable_random_geometric(self):
        with pytest.raises(TopologyError) as info:
            build_topology("random", nodes=30, radio_range=0.01)
        assert info.value.kind == "random"

    def test_is_still_a_value_error(self):
        with pytest.raises(ValueError, match="grid/line/random"):
            build_topology("torus")


class TestCoreErrors:
    def test_plan_state_error_before_measure(self):
        old = compile_source(OLD)
        plan = plan_update(old, NEW, config=UpdateConfig(ra="ucc", da="ucc"))
        with pytest.raises(PlanStateError) as info:
            plan.diff_cycle
        assert info.value.needed == "measure_cycles"
        with pytest.raises(ValueError):  # legacy handler contract
            plan.diff_cycle

    def test_empty_fleet_per_node_energy(self):
        session = UpdateSession(compile_source(OLD), topology=grid(2, 2))
        result = session.push_update(NEW)
        empty = SessionResult(
            update=result.update,
            dissemination=result.dissemination,
            nodes_patched=0,
        )
        with pytest.raises(EmptyFleetError) as info:
            empty.per_node_energy_j
        assert info.value.node_count == 0
        with pytest.raises(ValueError):
            empty.per_node_energy_j

    def test_empty_fleet_no_sensor_nodes(self):
        with pytest.raises(EmptyFleetError) as info:
            UpdateSession(compile_source(OLD), topology=grid(1, 1))
        assert info.value.node_count == 1
        with pytest.raises(ValueError, match="no sensor nodes"):
            UpdateSession(compile_source(OLD), topology=grid(1, 1))

    def test_patch_divergence_is_assertion_error(self):
        # The type contract: session/data divergence checks raise a
        # PatchDivergenceError that *is* an AssertionError, with a
        # stage attribute — constructed here directly since a healthy
        # pipeline never diverges.
        error = PatchDivergenceError("session", "diverged")
        assert isinstance(error, AssertionError)
        assert error.stage == "session"
