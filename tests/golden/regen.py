"""Regenerate the golden baselines after an intentional planner change.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regen.py
"""

import json
from pathlib import Path

from repro.core import compile_source, measure_cycles, plan_update
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.workloads import CASES
from repro.config import UpdateConfig

ENERGY_CASES = ["1", "4", "6", "8", "12"]
ENERGY_CNT = 1000.0


def main() -> None:
    golden = Path(__file__).parent

    scripts = {}
    for cid, case in CASES.items():
        old = compile_source(case.old_source)
        entry = {}
        for ra, da in (("gcc", "gcc"), ("ucc", "ucc")):
            result = plan_update(old, case.new_source, config=UpdateConfig(ra=ra, da=da))
            entry[f"{ra}/{da}"] = {
                "diff_inst": result.diff_inst,
                "script_bytes": result.script_bytes,
                "packets": result.packets.packet_count,
            }
        scripts[cid] = entry

    energy = {}
    for cid in ENERGY_CASES:
        case = CASES[cid]
        old = compile_source(case.old_source)
        gcc = measure_cycles(
            plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="ucc"))
        )
        ucc = measure_cycles(
            plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        )
        ratio = ucc.diff_energy(ENERGY_CNT, DEFAULT_ENERGY_MODEL) / gcc.diff_energy(
            ENERGY_CNT, DEFAULT_ENERGY_MODEL
        )
        energy[cid] = {"cnt": ENERGY_CNT, "ratio_ucc_over_gcc": round(ratio, 6)}

    (golden / "fig09_scripts.json").write_text(
        json.dumps(scripts, indent=2, sort_keys=True) + "\n"
    )
    (golden / "fig12_energy.json").write_text(
        json.dumps(energy, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {golden / 'fig09_scripts.json'}")
    print(f"wrote {golden / 'fig12_energy.json'}")


if __name__ == "__main__":
    main()
