"""ILP solver tests: simplex, branch & bound, scipy cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import (
    IntegerProgram,
    SimplexStats,
    solve,
    solve_branch_bound,
    solve_lp,
    solve_scipy,
)


class TestSimplex:
    def test_simple_maximisation(self):
        # max 3x + 2y st x + y <= 4, x <= 2 -> min -3x - 2y
        result = solve_lp(
            np.array([-3.0, -2.0]),
            np.array([[1.0, 1.0], [1.0, 0.0]]),
            np.array([4.0, 2.0]),
            None,
            None,
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-10.0)

    def test_equality_constraint(self):
        result = solve_lp(
            np.array([1.0, 2.0]),
            None,
            None,
            np.array([[1.0, 1.0]]),
            np.array([1.0]),
        )
        assert result.status == "optimal"
        assert result.x[0] == pytest.approx(1.0)

    def test_infeasible_detected(self):
        result = solve_lp(
            np.array([1.0]),
            np.array([[1.0], [-1.0]]),
            np.array([1.0, -3.0]),  # x <= 1 and x >= 3
            None,
            None,
        )
        assert result.status == "infeasible"

    def test_unbounded_detected(self):
        result = solve_lp(
            np.array([-1.0]),
            np.array([[-1.0]]),
            np.array([0.0]),  # x >= 0 only, minimise -x
            None,
            None,
        )
        assert result.status == "unbounded"

    def test_upper_bounds_respected(self):
        result = solve_lp(
            np.array([-1.0, -1.0]),
            None,
            None,
            None,
            None,
            ub=np.array([1.0, 1.0]),
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-2.0)

    def test_iterations_counted(self):
        stats = SimplexStats()
        solve_lp(
            np.array([-3.0, -2.0]),
            np.array([[1.0, 1.0]]),
            np.array([4.0]),
            None,
            None,
            stats=stats,
        )
        assert stats.iterations > 0
        assert stats.solves == 1


def random_program(rng, n_vars=5, n_cons=4):
    prog = IntegerProgram()
    names = [f"x{i}" for i in range(n_vars)]
    for name in names:
        prog.add_objective(name, float(rng.integers(-5, 6)))
    for c in range(n_cons):
        terms = [
            (float(rng.integers(0, 4)), name) for name in names
        ]
        rhs = float(rng.integers(1, 8))
        prog.add_constraint(terms, "<=", rhs)
    return prog


class TestBranchBound:
    def test_binary_knapsack(self):
        prog = IntegerProgram()
        values = {"a": 10, "b": 7, "c": 4}
        weights = {"a": 5, "b": 4, "c": 2}
        for name, value in values.items():
            prog.add_objective(name, -value)
        prog.add_constraint(
            [(float(w), n) for n, w in weights.items()], "<=", 6.0
        )
        result = solve_branch_bound(prog)
        assert result.status == "optimal"
        chosen = {n for n, v in result.values.items() if v}
        assert chosen == {"b", "c"}  # value 11 beats a alone (10)

    def test_fixed_variables_respected(self):
        prog = IntegerProgram()
        prog.add_objective("a", -10.0)
        prog.add_objective("b", -1.0)
        prog.add_constraint([(1.0, "a"), (1.0, "b")], "<=", 1.0)
        prog.fix("a", 0)
        result = solve_branch_bound(prog)
        assert result.values == {"a": 0, "b": 1}

    def test_incumbent_prunes(self):
        prog = IntegerProgram()
        for i in range(8):
            prog.add_objective(f"x{i}", -1.0)
            prog.add_constraint([(1.0, f"x{i}")], "<=", 1.0)
        incumbent = {f"x{i}": 1 for i in range(8)}
        warm = solve_branch_bound(prog, incumbent=incumbent)
        assert warm.status == "optimal"
        assert warm.objective == pytest.approx(-8.0)

    def test_objective_constant_included(self):
        prog = IntegerProgram()
        prog.objective_constant = 100.0
        prog.add_objective("a", -1.0)
        result = solve_branch_bound(prog)
        assert result.objective == pytest.approx(99.0)

    def test_infeasible_program(self):
        prog = IntegerProgram()
        prog.add_objective("a", 1.0)
        prog.add_constraint([(1.0, "a")], ">=", 2.0)  # binary can't reach 2
        result = solve_branch_bound(prog)
        assert result.status == "infeasible"

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_scipy_on_random_programs(self, seed):
        """Our branch & bound and HiGHS agree on random 0/1 programs."""
        rng = np.random.default_rng(seed)
        prog = random_program(rng)
        own = solve_branch_bound(prog)
        ref = solve_scipy(prog)
        assert own.status == ref.status == "optimal"
        assert own.objective == pytest.approx(ref.objective, abs=1e-6)
        assert prog.is_feasible(own.values)

    def test_solution_always_feasible(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            prog = random_program(rng, n_vars=6, n_cons=5)
            result = solve_branch_bound(prog)
            assert prog.is_feasible(result.values)


class TestModel:
    def test_variable_deduplication(self):
        prog = IntegerProgram()
        prog.add_objective("a", 1.0)
        prog.add_objective("a", 2.0)
        assert prog.objective["a"] == 3.0
        assert prog.num_variables == 1

    def test_bad_sense_rejected(self):
        prog = IntegerProgram()
        with pytest.raises(ValueError):
            prog.add_constraint([(1.0, "a")], "<", 1.0)

    def test_bad_fix_rejected(self):
        prog = IntegerProgram()
        with pytest.raises(ValueError):
            prog.fix("a", 2)

    def test_render_lp_mentions_everything(self):
        prog = IntegerProgram(name="demo")
        prog.add_objective("a", 1.5)
        prog.add_constraint([(1.0, "a"), (2.0, "b")], "<=", 3.0, name="cap")
        prog.fix("b", 1)
        text = prog.render_lp()
        assert "demo" in text and "cap:" in text and "fix: b = 1;" in text

    def test_evaluate_and_feasibility(self):
        prog = IntegerProgram()
        prog.add_objective("a", 2.0)
        prog.objective_constant = 1.0
        prog.add_constraint([(1.0, "a")], "<=", 1.0)
        assert prog.evaluate({"a": 1}) == 3.0
        assert prog.is_feasible({"a": 1})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            solve(IntegerProgram(), backend="cplex")
