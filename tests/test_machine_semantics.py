"""Direct machine-level semantics tests (flags, carry chains).

These bypass the compiler: hand-assembled instruction sequences check
the simulator's AVR-style flag behaviour — the foundation the compiled
carry chains (ADD/ADC, SUB/SBC, CP/CPC, shifts through carry) rest on.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import MachineInstr, assemble, label
from repro.sim import Simulator


def run_instrs(*instrs, setup_regs=None):
    program = [label("main"), *instrs, MachineInstr("halt")]
    image = assemble(program)
    sim = Simulator(image)
    for reg, value in (setup_regs or {}).items():
        sim.set_reg(reg, value)
    sim.run()
    return sim


class TestCarryChains:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_16bit_add_chain(self, a, b):
        sim = run_instrs(
            MachineInstr("add", rd=2, rr=4),
            MachineInstr("adc", rd=3, rr=5),
            setup_regs={2: a & 0xFF, 3: a >> 8, 4: b & 0xFF, 5: b >> 8},
        )
        assert sim.pair(2) == (a + b) & 0xFFFF

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_16bit_sub_chain(self, a, b):
        sim = run_instrs(
            MachineInstr("sub", rd=2, rr=4),
            MachineInstr("sbc", rd=3, rr=5),
            setup_regs={2: a & 0xFF, 3: a >> 8, 4: b & 0xFF, 5: b >> 8},
        )
        assert sim.pair(2) == (a - b) & 0xFFFF

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 255))
    def test_16bit_immediate_subtract(self, a, imm):
        sim = run_instrs(
            MachineInstr("subi", rd=2, imm=imm),
            MachineInstr("sbci", rd=3, imm=0),
            setup_regs={2: a & 0xFF, 3: a >> 8},
        )
        assert sim.pair(2) == (a - imm) & 0xFFFF

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 0xFFFF))
    def test_16bit_left_shift_through_carry(self, a):
        sim = run_instrs(
            MachineInstr("lsl", rd=2),
            MachineInstr("rol", rd=3),
            setup_regs={2: a & 0xFF, 3: a >> 8},
        )
        assert sim.pair(2) == (a << 1) & 0xFFFF

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 0xFFFF))
    def test_16bit_right_shift_through_carry(self, a):
        sim = run_instrs(
            MachineInstr("lsr", rd=3),
            MachineInstr("ror", rd=2),
            setup_regs={2: a & 0xFF, 3: a >> 8},
        )
        assert sim.pair(2) == a >> 1


class TestCompareFlags:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_16bit_compare_brlo(self, a, b):
        """CP/CPC then BRLO implements unsigned 16-bit less-than."""
        sim = run_instrs(
            MachineInstr("cp", rd=2, rr=4),
            MachineInstr("cpc", rd=3, rr=5),
            MachineInstr("brlo", target="main.less"),
            MachineInstr("ldi", rd=20, imm=0),
            MachineInstr("rjmp", target="main.end"),
            label("main.less"),
            MachineInstr("ldi", rd=20, imm=1),
            label("main.end"),
            setup_regs={2: a & 0xFF, 3: a >> 8, 4: b & 0xFF, 5: b >> 8},
        )
        assert sim.reg(20) == int(a < b)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_16bit_compare_breq(self, a, b):
        """CPC keeps Z only if every byte compared equal."""
        sim = run_instrs(
            MachineInstr("cp", rd=2, rr=4),
            MachineInstr("cpc", rd=3, rr=5),
            MachineInstr("breq", target="main.eq"),
            MachineInstr("ldi", rd=20, imm=0),
            MachineInstr("rjmp", target="main.end"),
            label("main.eq"),
            MachineInstr("ldi", rd=20, imm=1),
            label("main.end"),
            setup_regs={2: a & 0xFF, 3: a >> 8, 4: b & 0xFF, 5: b >> 8},
        )
        assert sim.reg(20) == int(a == b)

    def test_cpc_does_not_set_z_on_zero_high_byte_alone(self):
        # a = 0x0100, b = 0x0200: low bytes equal (Z set by CP), high
        # bytes differ -> CPC must clear Z.
        sim = run_instrs(
            MachineInstr("cp", rd=2, rr=4),
            MachineInstr("cpc", rd=3, rr=5),
            MachineInstr("breq", target="main.eq"),
            MachineInstr("ldi", rd=20, imm=0),
            MachineInstr("rjmp", target="main.end"),
            label("main.eq"),
            MachineInstr("ldi", rd=20, imm=1),
            label("main.end"),
            setup_regs={2: 0x00, 3: 0x01, 4: 0x00, 5: 0x02},
        )
        assert sim.reg(20) == 0


class TestMemoryAndPointer:
    def test_post_increment_load(self):
        program = [
            label("main"),
            MachineInstr("ldi", rd=30, imm=0x00),
            MachineInstr("ldi", rd=31, imm=0x01),  # Z = 0x0100
            MachineInstr("ld_zp", rd=4),
            MachineInstr("ld_z", rd=5),
            MachineInstr("halt"),
        ]
        image = assemble(program)
        sim = Simulator(image)
        sim.store(0x0100, 0x34)
        sim.store(0x0101, 0x12)
        sim.run()
        assert sim.reg(4) == 0x34
        assert sim.reg(5) == 0x12
        assert sim.pair(30) == 0x0101  # post-incremented once

    def test_push_pop_lifo(self):
        sim = run_instrs(
            MachineInstr("ldi", rd=2, imm=7),
            MachineInstr("ldi", rd=3, imm=9),
            MachineInstr("push", rd=2),
            MachineInstr("push", rd=3),
            MachineInstr("pop", rd=4),
            MachineInstr("pop", rd=5),
        )
        assert sim.reg(4) == 9
        assert sim.reg(5) == 7

    def test_call_ret_roundtrip(self):
        program = [
            label("helper"),
            MachineInstr("ldi", rd=24, imm=42),
            MachineInstr("ret"),
            label("main"),
            MachineInstr("call", target="helper"),
            MachineInstr("mov", rd=2, rr=24),
            MachineInstr("halt"),
        ]
        image = assemble(program)
        sim = Simulator(image)
        sim.run()
        assert sim.reg(2) == 42


class TestCycleCosts:
    def test_taken_branch_costs_one_more(self):
        taken = run_instrs(
            MachineInstr("clr", rd=2),  # sets Z
            MachineInstr("breq", target="main.t"),
            label("main.t"),
        )
        not_taken = run_instrs(
            MachineInstr("ldi", rd=2, imm=1),
            MachineInstr("cp", rd=2, rr=1),  # r1 = 0 -> Z clear
            MachineInstr("breq", target="main.t"),
            label("main.t"),
        )
        # taken: clr(1) + breq(1+1) + halt(1) = 4
        # not taken: ldi(1) + cp(1) + breq(1) + halt(1) = 4
        assert taken.cycles == 4
        assert not_taken.cycles == 4
