"""Edit-script, differ, patcher, and packetisation tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.diff import (
    EditScript,
    MAX_RUN,
    PatchError,
    PrimOp,
    Primitive,
    apply_script,
    diff_images,
    packetize,
    patched_words,
    verify_patch,
)
from repro.isa import MachineInstr, assemble, label


def make_image(mnemonics_and_imm):
    """Build a tiny image from (mnemonic, imm) pairs."""
    instrs = [label("main")]
    for mnemonic, value in mnemonics_and_imm:
        if mnemonic == "ldi":
            instrs.append(MachineInstr("ldi", rd=2, imm=value))
        elif mnemonic == "add":
            instrs.append(MachineInstr("add", rd=2, rr=value))
        else:
            instrs.append(MachineInstr(mnemonic))
    instrs.append(MachineInstr("halt"))
    return assemble(instrs)


class TestPrimitives:
    def test_copy_is_one_byte(self):
        assert Primitive(PrimOp.COPY, 5).size_bytes == 1

    def test_remove_is_one_byte(self):
        assert Primitive(PrimOp.REMOVE, 63).size_bytes == 1

    def test_insert_cost_header_plus_payload(self):
        prim = Primitive(PrimOp.INSERT, 2, words=((1,), (2, 3)))
        assert prim.size_bytes == 1 + 2 * 3

    def test_count_range_enforced(self):
        with pytest.raises(ValueError):
            Primitive(PrimOp.COPY, 0)
        with pytest.raises(ValueError):
            Primitive(PrimOp.COPY, MAX_RUN + 1)

    def test_copy_carries_no_payload(self):
        with pytest.raises(ValueError):
            Primitive(PrimOp.COPY, 1, words=((1,),))

    def test_long_runs_split(self):
        script = EditScript()
        script.copy(150)
        assert [p.count for p in script.primitives] == [63, 63, 24]


class TestScriptSerialisation:
    def test_roundtrip(self):
        from repro.isa import encode

        script = EditScript()
        script.copy(3)
        words = encode(MachineInstr("add", rd=2, rr=3))
        script.replace([words])
        script.remove(2)
        blob = script.to_bytes()
        back = EditScript.from_bytes(blob)
        assert [p.op for p in back.primitives] == [p.op for p in script.primitives]
        assert back.size_bytes == script.size_bytes

    def test_two_word_payload_parses(self):
        from repro.isa import encode

        script = EditScript()
        script.insert([encode(MachineInstr("ldi", rd=4, imm=9))])
        back = EditScript.from_bytes(script.to_bytes())
        assert back.primitives[0].words[0] == encode(MachineInstr("ldi", rd=4, imm=9))

    def test_empty_script(self):
        script = EditScript()
        assert script.size_bytes == 0
        assert script.is_empty


class TestDiffer:
    def test_identical_images_copy_only(self):
        image = make_image([("ldi", 1), ("ldi", 2)])
        diff = diff_images(image, image)
        assert diff.diff_inst == 0
        assert diff.script.is_empty
        assert diff.reused == diff.new_instructions

    def test_single_instruction_change(self):
        old = make_image([("ldi", 1), ("ldi", 2), ("ldi", 3)])
        new = make_image([("ldi", 1), ("ldi", 9), ("ldi", 3)])
        diff = diff_images(old, new)
        assert diff.diff_inst == 1

    def test_insertion_counts_inserted_only(self):
        old = make_image([("ldi", 1), ("ldi", 3)])
        new = make_image([("ldi", 1), ("ldi", 2), ("ldi", 3)])
        diff = diff_images(old, new)
        assert diff.diff_inst == 1

    def test_deletion_costs_no_diff_inst(self):
        old = make_image([("ldi", 1), ("ldi", 2), ("ldi", 3)])
        new = make_image([("ldi", 1), ("ldi", 3)])
        diff = diff_images(old, new)
        assert diff.diff_inst == 0
        counts = diff.script.primitive_counts()
        assert counts["remove"] == 1

    def test_diff_words_counts_words_not_instructions(self):
        old = make_image([("ldi", 1)])
        new = make_image([("ldi", 2)])  # ldi is a two-word instruction
        diff = diff_images(old, new)
        assert diff.diff_inst == 1
        assert diff.diff_words == 2


class TestPatcher:
    def test_roundtrip_identity(self):
        old = make_image([("ldi", 1), ("add", 3)])
        diff = diff_images(old, old)
        assert patched_words(old, diff.script) == old.words()

    def test_roundtrip_modification(self):
        old = make_image([("ldi", 1), ("add", 3), ("ldi", 7)])
        new = make_image([("ldi", 1), ("add", 4), ("ldi", 7), ("add", 5)])
        diff = diff_images(old, new)
        verify_patch(old, new, diff.script)

    def test_patch_error_on_wrong_base(self):
        old = make_image([("ldi", 1), ("add", 3)])
        new = make_image([("ldi", 2), ("add", 3)])
        other = make_image([("ldi", 1)])  # shorter: script won't fit
        diff = diff_images(old, new)
        with pytest.raises(PatchError):
            apply_script(other, diff.script)

    def test_patch_detects_divergence(self):
        old = make_image([("ldi", 1)])
        new = make_image([("ldi", 2)])
        wrong = make_image([("ldi", 3)])
        diff = diff_images(old, new)
        with pytest.raises(PatchError):
            verify_patch(old, wrong, diff.script)

    def test_divergence_error_carries_structured_fields(self):
        old = make_image([("ldi", 1), ("add", 3), ("ldi", 7)])
        new = make_image([("ldi", 1), ("add", 4), ("ldi", 7)])
        wrong = make_image([("ldi", 1), ("add", 5), ("ldi", 7)])
        diff = diff_images(old, new)
        with pytest.raises(PatchError) as excinfo:
            verify_patch(old, wrong, diff.script)
        error = excinfo.value
        divergence = next(
            i
            for i, (a, b) in enumerate(zip(new.words(), wrong.words()))
            if a != b
        )
        assert error.word_index == divergence
        assert error.expected == wrong.words()[divergence]
        assert error.actual == new.words()[divergence]
        assert error.primitive_index is not None
        assert error.primitive == diff.script.primitives[
            error.primitive_index
        ].op.name.lower()
        assert f"word {error.word_index}" in str(error)

    def test_overrun_error_names_the_primitive(self):
        old = make_image([("ldi", 1), ("add", 3)])
        new = make_image([("ldi", 2), ("add", 3)])
        short = make_image([("ldi", 1)])
        diff = diff_images(old, new)
        with pytest.raises(PatchError) as excinfo:
            apply_script(short, diff.script)
        error = excinfo.value
        assert error.primitive_index is not None
        if error.primitive is not None:
            assert error.primitive in ("copy", "remove", "replace", "insert")
        assert "primitive" in str(error) or "consumed" in str(error)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 200), min_size=0, max_size=25),
        st.lists(st.integers(0, 200), min_size=0, max_size=25),
    )
    def test_patch_roundtrip_property(self, old_vals, new_vals):
        """apply(old, diff(old, new)) == new for arbitrary programs."""
        old = make_image([("ldi", v) for v in old_vals])
        new = make_image([("ldi", v) for v in new_vals])
        diff = diff_images(old, new)
        assert patched_words(old, diff.script) == new.words()

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 200), min_size=0, max_size=25),
        st.lists(st.integers(0, 200), min_size=0, max_size=25),
    )
    def test_script_serialisation_roundtrip_property(self, old_vals, new_vals):
        """Scripts survive wire serialisation byte-for-byte."""
        old = make_image([("ldi", v) for v in old_vals])
        new = make_image([("ldi", v) for v in new_vals])
        script = diff_images(old, new).script
        back = EditScript.from_bytes(script.to_bytes())
        assert patched_words(old, back) == new.words()


class TestPackets:
    def test_empty_script_no_packets(self):
        assert packetize(EditScript()).packet_count == 0

    def test_packet_rounding_up(self):
        script = EditScript()
        script.copy(1)  # 1 byte
        packets = packetize(script, payload_per_packet=22)
        assert packets.packet_count == 1

    def test_paper_example_one_byte_over(self):
        """Paper §5.3: 11 primitives vs 10 -> a 100% packet increase when
        10 fit exactly in one packet."""
        ten = EditScript()
        for _ in range(10):
            ten.remove(1)
        eleven = EditScript()
        for _ in range(11):
            eleven.remove(1)
        p10 = packetize(ten, payload_per_packet=10)
        p11 = packetize(eleven, payload_per_packet=10)
        assert p10.packet_count == 1
        assert p11.packet_count == 2

    def test_bits_on_air_include_overhead(self):
        script = EditScript()
        script.copy(1)
        packets = packetize(script, payload_per_packet=22, overhead_per_packet=12)
        assert packets.bytes_on_air == 1 + 12
