"""Property-based tests for the diff layer: packetisation,
edit-script wire format, data scripts, and the sensor-side patcher.

These are the same invariants the fuzz oracles (:mod:`repro.fuzz.oracles`)
check end-to-end on whole update pairs, exercised here directly on
adversarial inputs hypothesis constructs.
"""

from hypothesis import given, settings, strategies as st

from repro.core import compile_source, plan_update
from repro.diff.data_diff import DataScript, apply_data, diff_data
from repro.diff.edit_script import MAX_RUN, EditScript, PrimOp, Primitive
from repro.diff.packets import Packetisation
from repro.diff.patcher import patched_words, verify_patch
from repro.workloads import CASES
from repro.config import UpdateConfig

# ---------------------------------------------------------------------------
# Packetisation
# ---------------------------------------------------------------------------


class TestPacketisationProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        script_bytes=st.integers(0, 5000),
        payload=st.integers(1, 64),
        overhead=st.integers(0, 32),
    )
    def test_packet_count_is_exact_ceiling(self, script_bytes, payload, overhead):
        packets = Packetisation(script_bytes, payload, overhead)
        count = packets.packet_count
        # every byte is carried, and dropping one packet would lose bytes
        assert count * payload >= script_bytes
        if script_bytes:
            assert (count - 1) * payload < script_bytes
        else:
            assert count == 0

    @settings(max_examples=200, deadline=None)
    @given(
        script_bytes=st.integers(0, 5000),
        payload=st.integers(1, 64),
        overhead=st.integers(0, 32),
    )
    def test_air_bytes_account_for_overhead(self, script_bytes, payload, overhead):
        packets = Packetisation(script_bytes, payload, overhead)
        assert packets.bytes_on_air == script_bytes + packets.packet_count * overhead
        assert packets.bits_on_air == 8 * packets.bytes_on_air
        assert packets.bytes_on_air >= script_bytes

    @settings(max_examples=100, deadline=None)
    @given(script_bytes=st.integers(1, 5000), payload=st.integers(1, 64))
    def test_smaller_payload_never_needs_fewer_packets(self, script_bytes, payload):
        wide = Packetisation(script_bytes, payload + 1, 0)
        narrow = Packetisation(script_bytes, payload, 0)
        assert narrow.packet_count >= wide.packet_count


# ---------------------------------------------------------------------------
# Edit-script wire format
# ---------------------------------------------------------------------------

# Synthetic instruction encoding for serialisation tests: the first
# word of each unit carries the unit's word count in its high byte, so
# a word_sizer can recover the grouping without a real opcode table.
_group = st.integers(1, 3).flatmap(
    lambda size: st.tuples(
        st.integers(0, 255).map(lambda low: (size << 8) | low),
        *[st.integers(0, 0xFFFF) for _ in range(size - 1)],
    )
)


def _sizer(word: int) -> int:
    return word >> 8


_primitive = st.one_of(
    st.builds(
        Primitive,
        op=st.sampled_from([PrimOp.COPY, PrimOp.REMOVE]),
        count=st.integers(1, MAX_RUN),
    ),
    st.lists(_group, min_size=1, max_size=5).map(
        lambda groups: Primitive(
            op=PrimOp.INSERT, count=len(groups), words=tuple(groups)
        )
    ),
    st.lists(_group, min_size=1, max_size=5).map(
        lambda groups: Primitive(
            op=PrimOp.REPLACE, count=len(groups), words=tuple(groups)
        )
    ),
)


class TestEditScriptWireProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_primitive, max_size=12))
    def test_serialise_parse_round_trip(self, primitives):
        script = EditScript(primitives=primitives)
        blob = script.to_bytes()
        assert len(blob) == script.size_bytes
        reparsed = EditScript.from_bytes(blob, word_sizer=_sizer)
        assert reparsed.primitives == script.primitives
        assert reparsed.to_bytes() == blob

    @settings(max_examples=200, deadline=None)
    @given(st.lists(_primitive, max_size=12))
    def test_metrics_survive_round_trip(self, primitives):
        script = EditScript(primitives=primitives)
        reparsed = EditScript.from_bytes(script.to_bytes(), word_sizer=_sizer)
        assert reparsed.size_bytes == script.size_bytes
        assert reparsed.payload_words == script.payload_words
        assert reparsed.transmitted_instructions == script.transmitted_instructions
        assert reparsed.primitive_counts() == script.primitive_counts()

    @settings(max_examples=100, deadline=None)
    @given(count=st.integers(1, 5 * MAX_RUN))
    def test_long_runs_split_into_legal_primitives(self, count):
        script = EditScript()
        script.copy(count)
        assert all(1 <= p.count <= MAX_RUN for p in script.primitives)
        assert sum(p.count for p in script.primitives) == count


# ---------------------------------------------------------------------------
# Data scripts
# ---------------------------------------------------------------------------

_blob = st.binary(max_size=300)


class TestDataScriptProperties:
    @settings(max_examples=300, deadline=None)
    @given(old=_blob, new=_blob)
    def test_diff_apply_round_trip(self, old, new):
        script = diff_data(old, new)
        assert apply_data(old, script) == new

    @settings(max_examples=300, deadline=None)
    @given(old=_blob, new=_blob)
    def test_apply_is_replayable(self, old, new):
        # The sink may receive the same script twice (lost ack); both
        # applications from the same base must agree byte-for-byte.
        script = diff_data(old, new)
        assert apply_data(old, script) == apply_data(old, script)

    @settings(max_examples=300, deadline=None)
    @given(old=_blob, new=_blob)
    def test_wire_round_trip_preserves_effect(self, old, new):
        script = diff_data(old, new)
        blob = script.to_bytes()
        assert len(blob) == script.size_bytes
        reparsed = DataScript.from_bytes(blob)
        assert apply_data(old, reparsed) == new
        assert reparsed.to_bytes() == blob

    @settings(max_examples=200, deadline=None)
    @given(old=_blob)
    def test_identity_diff_is_empty(self, old):
        script = diff_data(old, old)
        assert script.is_empty
        assert script.size_bytes == 0


# ---------------------------------------------------------------------------
# Sensor-side patcher on real compiled pairs
# ---------------------------------------------------------------------------


class TestPatcherProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        cid=st.sampled_from(sorted(CASES)),
        strategy=st.sampled_from([("gcc", "gcc"), ("ucc", "ucc"), ("ucc", "gcc")]),
    )
    def test_apply_rebuilds_and_replays(self, cid, strategy):
        ra, da = strategy
        case = CASES[cid]
        old = compile_source(case.old_source)
        result = plan_update(old, case.new_source, config=UpdateConfig(ra=ra, da=da))
        verify_patch(old.image, result.new.image, result.diff.script)
        first = patched_words(old.image, result.diff.script)
        assert first == result.new.image.words()
        # replay: the patcher is pure — a second application from the
        # same resident image yields the identical stream
        assert patched_words(old.image, result.diff.script) == first
