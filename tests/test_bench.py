"""Tests for the benchmark harness (:mod:`repro.bench`) and the
baseline comparator (``tools/check_bench.py``)."""

from __future__ import annotations

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    AREAS,
    SCHEMA,
    DigestMismatch,
    Workload,
    report_path,
    run_area,
    run_workload,
    workloads_for,
    write_report,
)
from repro.bench.harness import _median, _p90
from repro.fastpath import fastpath_enabled

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECK_BENCH = REPO_ROOT / "tools" / "check_bench.py"


class TestStats:
    def test_median(self):
        assert _median([3.0, 1.0, 2.0]) == 2.0
        assert _median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_p90(self):
        assert _p90([1.0]) == 1.0
        values = [float(i) for i in range(1, 11)]
        assert _p90(values) == 9.0


class TestRunWorkload:
    def test_schema_of_row(self):
        workload = Workload(
            name="stub",
            setup=lambda: 3,
            job=lambda payload: ("d" * 64, {"constraints": payload}),
        )
        row = run_workload(workload, reps=2)
        assert row["name"] == "stub"
        assert row["digest"] == "d" * 64
        assert row["metrics"] == {"constraints": 3}
        for side in ("fast", "reference"):
            for key in ("median_ms", "p90_ms", "min_ms"):
                assert row[side][key] >= 0.0
        assert row["speedup_median"] >= 0.0

    def test_mode_digest_divergence_fails(self):
        if not fastpath_enabled():
            pytest.skip(
                "whole process is in reference mode; both harness legs "
                "run the same path, so a mode-keyed stub cannot diverge"
            )
        workload = Workload(
            name="diverges",
            setup=lambda: None,
            job=lambda payload: (str(fastpath_enabled()), {}),
        )
        with pytest.raises(DigestMismatch, match="diverges"):
            run_workload(workload, reps=1)

    def test_rep_digest_instability_fails(self):
        state = {"calls": 0}

        def job(payload):
            state["calls"] += 1
            # Same digest within each fast/reference pair, different
            # across reps — a nondeterministic workload.
            return str((state["calls"] - 1) // 2), {}

        workload = Workload(name="unstable", setup=lambda: None, job=job)
        with pytest.raises(DigestMismatch, match="between reps"):
            run_workload(workload, reps=2)

    def test_pinned_metric_divergence_fails(self):
        if not fastpath_enabled():
            pytest.skip(
                "whole process is in reference mode; both harness legs "
                "run the same path, so a mode-keyed stub cannot diverge"
            )
        workload = Workload(
            name="itermismatch",
            setup=lambda: None,
            job=lambda payload: (
                "same",
                {"simplex_iterations": 10 if fastpath_enabled() else 11},
            ),
        )
        with pytest.raises(DigestMismatch, match="simplex_iterations"):
            run_workload(workload, reps=1)


class TestRunArea:
    def test_report_schema(self, monkeypatch):
        stub = Workload(
            name="stub", setup=lambda: None, job=lambda payload: ("d", {})
        )
        monkeypatch.setattr(
            "repro.bench.harness.workloads_for", lambda area: [stub]
        )
        report = run_area("ilp", reps=1)
        assert report["schema"] == SCHEMA
        assert report["area"] == "ilp"
        assert report["reps"] == 1
        assert report["peak_rss_kb"] > 0
        assert report["summary"]["workloads"] == 1
        assert "median_speedup" in report["summary"]

    def test_unknown_area_rejected(self):
        with pytest.raises(ValueError, match="unknown bench area"):
            run_area("nope")

    def test_every_area_has_workloads(self):
        for area in AREAS:
            assert workloads_for(area), area

    def test_write_report_configurable_out(self, tmp_path):
        report = {"schema": SCHEMA, "area": "ilp", "workloads": []}
        path = write_report(report, tmp_path / "deep" / "dir")
        assert path == report_path("ilp", tmp_path / "deep" / "dir")
        assert json.loads(path.read_text())["area"] == "ilp"


class TestBenchCli:
    def test_compile_area_end_to_end(self, tmp_path):
        from repro.cli import main

        rc = main(
            ["bench", "--area", "compile", "--reps", "1", "--out", str(tmp_path)]
        )
        assert rc == 0
        report = json.loads((tmp_path / "BENCH_compile.json").read_text())
        assert report["schema"] == SCHEMA
        names = [row["name"] for row in report["workloads"]]
        assert "fig08_Blink" in names


def _report(area="ilp", name="w1", digest="abc", speedup=5.0, wall=100.0,
            metrics=None):
    return {
        "schema": SCHEMA,
        "area": area,
        "reps": 2,
        "quick": False,
        "workloads": [
            {
                "name": name,
                "digest": digest,
                "metrics": {"constraints": 10} if metrics is None else metrics,
                "fast": {"median_ms": wall, "p90_ms": wall, "min_ms": wall},
                "reference": {
                    "median_ms": wall * speedup,
                    "p90_ms": wall * speedup,
                    "min_ms": wall * speedup,
                },
                "speedup_median": speedup,
            }
        ],
        "summary": {"workloads": 1, "median_speedup": speedup,
                    "min_speedup": speedup},
    }


def _run_check(baseline, current, *extra):
    base_dir = baseline
    cur_dir = current
    proc = subprocess.run(
        [sys.executable, str(CHECK_BENCH), str(cur_dir),
         "--baseline", str(base_dir), *extra],
        capture_output=True,
        text=True,
        timeout=60,
    )
    return proc


class TestCheckBench:
    def _write(self, directory: Path, report: dict) -> None:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{report['area']}.json").write_text(
            json.dumps(report)
        )

    def test_identical_reports_pass(self, tmp_path):
        report = _report()
        self._write(tmp_path / "base", report)
        self._write(tmp_path / "cur", report)
        proc = _run_check(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 0, proc.stderr

    def test_digest_mismatch_always_fails(self, tmp_path):
        self._write(tmp_path / "base", _report(digest="aaa"))
        self._write(tmp_path / "cur", _report(digest="bbb"))
        proc = _run_check(tmp_path / "base", tmp_path / "cur", "--skip-wall")
        assert proc.returncode == 1
        assert "DIGEST MISMATCH" in proc.stderr

    def test_pinned_metric_change_fails(self, tmp_path):
        self._write(tmp_path / "base", _report(metrics={"constraints": 10}))
        self._write(tmp_path / "cur", _report(metrics={"constraints": 11}))
        proc = _run_check(tmp_path / "base", tmp_path / "cur", "--skip-wall")
        assert proc.returncode == 1
        assert "pinned metric" in proc.stderr

    def test_speedup_regression_fails(self, tmp_path):
        self._write(tmp_path / "base", _report(speedup=5.0))
        self._write(tmp_path / "cur", _report(speedup=3.0))
        proc = _run_check(tmp_path / "base", tmp_path / "cur", "--skip-wall")
        assert proc.returncode == 1
        assert "speedup regressed" in proc.stderr

    def test_speedup_within_tolerance_passes(self, tmp_path):
        self._write(tmp_path / "base", _report(speedup=5.0))
        self._write(tmp_path / "cur", _report(speedup=4.2))
        proc = _run_check(tmp_path / "base", tmp_path / "cur", "--skip-wall")
        assert proc.returncode == 0, proc.stderr

    def test_near_unity_speedup_noise_ignored(self, tmp_path):
        # A ~1x workload swinging to 0.5x is measurement noise, not a
        # regression; only the wall check may flag it.
        self._write(tmp_path / "base", _report(speedup=1.0))
        self._write(tmp_path / "cur", _report(speedup=0.5))
        proc = _run_check(tmp_path / "base", tmp_path / "cur", "--skip-wall")
        assert proc.returncode == 0, proc.stderr

    def test_wall_regression_fails_unless_skipped(self, tmp_path):
        self._write(tmp_path / "base", _report(wall=100.0))
        self._write(tmp_path / "cur", _report(wall=150.0))
        proc = _run_check(tmp_path / "base", tmp_path / "cur")
        assert proc.returncode == 1
        assert "wall regressed" in proc.stderr
        proc = _run_check(tmp_path / "base", tmp_path / "cur", "--skip-wall")
        assert proc.returncode == 0, proc.stderr

    def test_missing_workload_fails(self, tmp_path):
        base = _report()
        cur = copy.deepcopy(base)
        cur["workloads"] = []
        cur["summary"] = {"workloads": 0, "median_speedup": 1.0,
                         "min_speedup": 1.0}
        self._write(tmp_path / "base", base)
        self._write(tmp_path / "cur", cur)
        proc = _run_check(tmp_path / "base", tmp_path / "cur", "--skip-wall")
        assert proc.returncode == 1
        assert "missing" in proc.stderr

    def test_committed_baselines_are_current_schema(self):
        baseline_dir = REPO_ROOT / "benchmarks" / "baselines"
        reports = sorted(baseline_dir.glob("BENCH_*.json"))
        assert len(reports) == len(AREAS)
        for path in reports:
            report = json.loads(path.read_text())
            assert report["schema"] == SCHEMA, path.name

    def test_committed_ilp_baseline_meets_speedup_target(self):
        # The PR's acceptance bar: the pinned Figure 13-15 jobs show a
        # >= 5x median fast-path speedup in the committed baseline.
        path = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_ilp.json"
        report = json.loads(path.read_text())
        assert report["summary"]["median_speedup"] >= 5.0


class TestCommittedVersioningBaseline:
    def test_meets_acceptance_ratios(self):
        # The PR's acceptance bars on the pinned lossy 1k-node fleet:
        # cohort plans >= 2x cheaper than full images in modeled
        # dissemination energy, and the coded transfer measurably
        # cheaper in transmissions than per-packet NACK repair.
        path = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_versioning.json"
        report = json.loads(path.read_text())
        rows = {row["name"]: row["metrics"] for row in report["workloads"]}
        cohorts = rows["lossy1k_cohorts"]
        assert cohorts["energy_ratio"] >= 2.0
        assert cohorts["converged"] == 1
        assert cohorts["replay_identical"] == 1
        coded = rows["lossy1k_coded_vs_nack"]
        assert coded["tx_ratio"] > 1.0
        assert coded["coded_converged"] == 1
