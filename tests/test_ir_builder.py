"""IR lowering unit tests."""


from repro.ir import IROp, Imm, build_ir
from repro.lang import frontend


def lower(source):
    return build_ir(frontend(source))


def fn_ops(source, name="f"):
    return [ins.op for ins in lower(source).functions[name].instrs]


class TestScalarLowering:
    def test_local_becomes_named_vreg(self):
        mod = lower("void f() { u8 x = 3; }")
        instrs = mod.functions["f"].instrs
        assert instrs[0].op is IROp.MOV
        assert instrs[0].dst.name == "f.x"

    def test_uninitialised_local_zeroed(self):
        mod = lower("void f() { u8 x; }")
        ins = mod.functions["f"].instrs[0]
        assert ins.op is IROp.MOV
        assert isinstance(ins.args[0], Imm) and ins.args[0].value == 0

    def test_global_access_is_explicit_load(self):
        mod = lower("u8 g; void f() { u8 x = g; }")
        ops = [i.op for i in mod.functions["f"].instrs]
        assert IROp.LOADG in ops

    def test_global_assignment_is_store(self):
        ops = fn_ops("u8 g; void f() { g = 1; }")
        assert IROp.STOREG in ops

    def test_compound_global_assign_loads_and_stores(self):
        ops = fn_ops("u8 g; void f() { g += 2; }")
        assert ops.count(IROp.LOADG) == 1
        assert ops.count(IROp.STOREG) == 1

    def test_param_vregs_use_symbol_uids(self):
        mod = lower("void f(u8 a, u16 b) { }")
        names = [r.name for r in mod.functions["f"].param_vregs]
        assert names == ["f.a", "f.b"]

    def test_cast_emitted_on_width_change(self):
        ops = fn_ops("void f(u8 a) { u16 x = a; }")
        assert IROp.CAST in ops


class TestTemporaries:
    def test_temp_names_carry_statement_id(self):
        mod = lower("u8 g; void f() { u8 x = g + 1; }")
        temps = [r for i in mod.functions["f"].instrs for r in i.vregs() if r.is_temp]
        assert temps
        assert all(r.name.startswith("$") for r in temps)

    def test_temp_numbering_restarts_per_statement(self):
        src = "u8 g; void f() { u8 x = g + 1; u8 y = g + 2; }"
        mod = lower(src)
        locals_ = {}
        for ins in mod.functions["f"].instrs:
            for reg in ins.vregs():
                if reg.is_temp:
                    locals_.setdefault(ins.stmt_id, set()).add(reg.local_temp_name)
        assert len(locals_) == 2
        first, second = locals_.values()
        assert first == second  # same statement-local names

    def test_normalized_render_masks_statement_ids(self):
        mod = lower("u8 g; void f() { u8 x = g + 1; u8 y = g + 1; }")
        instrs = mod.functions["f"].instrs
        loads = [i for i in instrs if i.op is IROp.LOADG]
        assert len(loads) == 2
        assert loads[0].normalized() == loads[1].normalized()
        assert loads[0].render() != loads[1].render()  # raw names differ


class TestArrays:
    def test_array_read_is_loadidx(self):
        ops = fn_ops("u8 t[4]; void f() { u8 x = t[1]; }")
        assert IROp.LOADIDX in ops

    def test_array_write_is_storeidx(self):
        ops = fn_ops("u8 t[4]; void f() { t[1] = 2; }")
        assert IROp.STOREIDX in ops

    def test_local_array_registered(self):
        mod = lower("void f() { u8 t[4]; t[0] = 1; }")
        assert [s.uid for s in mod.functions["f"].local_arrays] == ["f.t"]

    def test_local_array_init_list_stores_each(self):
        mod = lower("void f() { u8 t[3] = {1, 2, 3}; }")
        stores = [i for i in mod.functions["f"].instrs if i.op is IROp.STOREIDX]
        assert len(stores) == 3


class TestControlFlow:
    def test_if_produces_cbr(self):
        ops = fn_ops("void f(u8 a) { if (a) { halt(); } }")
        assert IROp.CBR in ops

    def test_comparison_condition_feeds_cbr(self):
        mod = lower("void f(u8 a) { if (a > 3) { halt(); } }")
        instrs = mod.functions["f"].instrs
        cbr = next(i for i in instrs if i.op is IROp.CBR)
        cmp_idx = next(
            idx for idx, i in enumerate(instrs) if i.op is IROp.CMPGT
        )
        assert instrs[cmp_idx].dst.name == cbr.args[0].name

    def test_short_circuit_and_lowers_to_branches(self):
        ops = fn_ops("void f(u8 a, u8 b) { if (a && b) { halt(); } }")
        assert ops.count(IROp.CBR) == 2  # one per operand

    def test_short_circuit_as_value(self):
        src = "void f(u8 a, u8 b) { u8 x = a || b; }"
        ops = fn_ops(src)
        assert IROp.CBR in ops and IROp.MOV in ops

    def test_while_loop_shape(self):
        ops = fn_ops("void f(u8 a) { while (a) { a = a - 1; } }")
        assert IROp.JUMP in ops

    def test_break_jumps_to_exit(self):
        mod = lower("void f() { while (1) { break; } }")
        fn = mod.functions["f"]
        jumps = [i for i in fn.instrs if i.op is IROp.JUMP]
        labels = fn.labels()
        assert all(j.args[0].name in labels for j in jumps)

    def test_implicit_return_added(self):
        mod = lower("void f() { }")
        assert mod.functions["f"].instrs[-1].op is IROp.RET

    def test_nonvoid_implicit_return_zero(self):
        mod = lower("u8 f() { }")
        last = mod.functions["f"].instrs[-1]
        assert last.op is IROp.RET
        assert isinstance(last.args[0], Imm)


class TestCallsAndBuiltins:
    def test_call_with_result(self):
        src = "u8 g(u8 a) { return a; } void f() { u8 x = g(1); }"
        mod = lower(src)
        call = next(i for i in mod.functions["f"].instrs if i.op is IROp.CALL)
        assert call.dst is not None
        assert call.args[0] == "g"

    def test_void_call_has_no_dst(self):
        src = "void g() { } void f() { g(); }"
        mod = lower(src)
        call = next(i for i in mod.functions["f"].instrs if i.op is IROp.CALL)
        assert call.dst is None

    def test_led_set_is_iowrite(self):
        ops = fn_ops("void f() { led_set(3); }")
        assert IROp.IOWRITE in ops

    def test_timer_fired_is_ioread(self):
        ops = fn_ops("void f() { u8 t = timer_fired(); }")
        assert IROp.IOREAD in ops

    def test_halt_lowering(self):
        ops = fn_ops("void f() { halt(); }")
        assert IROp.HALT in ops

    def test_instruction_has_at_most_two_distinct_variables(self):
        """Paper §3.4 relies on IR instructions having <= 2 operands."""
        from repro.workloads import PROGRAMS

        for src in PROGRAMS.values():
            mod = lower(src)
            for fn in mod.functions.values():
                for ins in fn.instrs:
                    if ins.op in (IROp.CALL,):
                        continue  # calls aggregate arguments
                    assert len(ins.variables()) <= 3  # dst + two sources
