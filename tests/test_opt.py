"""Optimizer pass tests."""

from repro.ir import IROp, Imm, build_ir
from repro.lang import frontend
from repro.opt import (
    eliminate_dead_code,
    fold_constants,
    optimize_function,
    optimize_module,
    propagate_copies,
    remove_unreachable,
)


def lower_fn(source, name="f"):
    return build_ir(frontend(source)).functions[name]


class TestConstantFolding:
    def test_fold_add(self):
        fn = lower_fn("void f() { u8 x = 2 + 3; }")
        # Sema constant-folds nothing for locals; the IR has the add.
        fold_constants(fn)
        movs = [i for i in fn.instrs if i.op is IROp.MOV and i.dst.name == "f.x"]
        assert movs and isinstance(movs[0].args[0], Imm)
        assert movs[0].args[0].value == 5

    def test_fold_wraps_to_width(self):
        fn = lower_fn("void f() { u8 x = 200 + 100; }")
        fold_constants(fn)
        movs = [i for i in fn.instrs if i.op is IROp.MOV and i.dst and i.dst.name == "f.x"]
        assert movs[0].args[0].value == (200 + 100) & 0xFF

    def test_fold_comparison(self):
        fn = lower_fn("void f() { u8 x = 3 < 4; }")
        fold_constants(fn)
        movs = [i for i in fn.instrs if i.op is IROp.MOV and i.dst.name == "f.x"]
        assert movs[0].args[0].value == 1

    def test_division_by_zero_not_folded(self):
        fn = lower_fn("void f(u8 a) { u8 x = a; x = 1 / (x - x); }")
        # the expression isn't constant at the IR level here; just make
        # sure folding never crashes on div ops
        fold_constants(fn)

    def test_identity_add_zero(self):
        fn = lower_fn("void f(u8 a) { u8 x = a + 0; }")
        changed = fold_constants(fn)
        assert changed
        assert not any(i.op is IROp.ADD for i in fn.instrs)

    def test_multiply_by_zero(self):
        fn = lower_fn("void f(u8 a) { u8 x = a * 0; }")
        fold_constants(fn)
        movs = [i for i in fn.instrs if i.op is IROp.MOV and i.dst.name == "f.x"]
        assert isinstance(movs[0].args[0], Imm) and movs[0].args[0].value == 0

    def test_fold_unary_not(self):
        fn = lower_fn("void f() { u8 x = ~5; }")
        fold_constants(fn)
        movs = [i for i in fn.instrs if i.op is IROp.MOV and i.dst.name == "f.x"]
        assert movs[0].args[0].value == (~5) & 0xFF


class TestCopyPropagation:
    def test_temp_copy_forwarded(self):
        fn = lower_fn("u8 g; void f() { u8 x = g; led_set(x); }")
        # x = loadg g; iowrite x — no temp copy chain here; construct one:
        propagate_copies(fn)  # must not crash / change semantics

    def test_propagation_enables_dce(self):
        fn = lower_fn("void f(u8 a) { u8 x = a; u8 y = x + 1; led_set(y); }")
        rounds = optimize_function(fn)
        assert rounds >= 1
        # y's computation must still feed the iowrite
        assert any(i.op is IROp.IOWRITE for i in fn.instrs)

    def test_no_propagation_across_redefinition(self):
        src = "void f(u8 a) { u8 x = a; a = 9; led_set(x); }"
        fn = lower_fn(src)
        optimize_function(fn)
        # semantics preserved: check via interpreter-level test elsewhere;
        # here, x's use must not have been replaced by the re-defined a.
        write = next(i for i in fn.instrs if i.op is IROp.IOWRITE)
        assert not (hasattr(write.args[1], "name") and write.args[1].name == "f.a")


class TestDCE:
    def test_dead_def_removed(self):
        fn = lower_fn("void f() { u8 unused = 3; halt(); }")
        changed = eliminate_dead_code(fn)
        assert changed
        assert not any(
            i.dst is not None and i.dst.name == "f.unused" for i in fn.instrs
        )

    def test_side_effecting_ops_kept(self):
        fn = lower_fn("u8 g; void f() { g = 1; halt(); }")
        eliminate_dead_code(fn)
        assert any(i.op is IROp.STOREG for i in fn.instrs)

    def test_ioread_never_deleted(self):
        # reading the timer clears its flag: a side effect
        fn = lower_fn("void f() { u8 t = timer_fired(); halt(); }")
        eliminate_dead_code(fn)
        assert any(i.op is IROp.IOREAD for i in fn.instrs)

    def test_duplicate_zero_init_removed(self):
        fn = lower_fn("void f() { u8 i; for (i = 0; i < 3; i++) { led_set(i); } }")
        optimize_function(fn)
        zero_movs = [
            i
            for i in fn.instrs
            if i.op is IROp.MOV
            and i.dst
            and i.dst.name == "f.i"
            and isinstance(i.args[0], Imm)
            and i.args[0].value == 0
        ]
        assert len(zero_movs) == 1


class TestUnreachable:
    def test_code_after_halt_removed(self):
        fn = lower_fn("void f() { halt(); led_set(1); }")
        remove_unreachable(fn)
        assert not any(i.op is IROp.IOWRITE for i in fn.instrs)

    def test_reachable_code_kept(self):
        fn = lower_fn("void f(u8 a) { if (a) { led_set(1); } led_set(2); }")
        remove_unreachable(fn)
        writes = [i for i in fn.instrs if i.op is IROp.IOWRITE]
        assert len(writes) == 2


class TestDeterminismAndSemantics:
    def test_optimization_is_deterministic(self):
        src = "u8 g; void f(u8 a) { u8 x = g + a; u8 y = x * 2; led_set(y); }"
        fn1 = lower_fn(src)
        fn2 = lower_fn(src)
        optimize_function(fn1)
        optimize_function(fn2)
        assert [str(i) for i in fn1.instrs] == [str(i) for i in fn2.instrs]

    def test_optimized_program_still_correct(self):
        """Optimization must not change observable behaviour."""
        from repro.core import compile_source
        from repro.sim import run_image

        src = """
        u16 acc = 0;
        void main() {
            u8 i;
            for (i = 0; i < 10; i++) { acc = acc + i * 2 + 1; }
            radio_send(acc);
            halt();
        }
        """
        opt = compile_source(src, optimize=True)
        unopt = compile_source(src, optimize=False)
        sent_opt = run_image(opt.image).devices.radio.sent
        sent_unopt = run_image(unopt.image).devices.radio.sent
        expected = sum(i * 2 + 1 for i in range(10))
        assert sent_opt == sent_unopt == [expected]

    def test_optimize_module_covers_all_functions(self):
        module = build_ir(frontend("void f() { u8 x = 1 + 1; } void g() { u8 y = 2 + 2; }"))
        optimize_module(module)
        for fn in module.functions.values():
            assert not any(i.op is IROp.ADD for i in fn.instrs)
