"""Code-placement tests (the paper's future-work dimension, see
repro.codegen.placement)."""


from repro.codegen.placement import (
    PlacementPlan,
    apply_placement,
    baseline_placement,
    code_size_words,
    ucc_placement,
)
from repro.core import Compiler, CompilerOptions, compile_source, plan_update
from repro.isa.instructions import MachineInstr
from repro.sim import run_image
from repro.config import UpdateConfig


class TestPlans:
    def test_baseline_packs_densely(self):
        plan = baseline_placement({"a": 10, "b": 20}, ["a", "b"])
        assert plan.slot("a").start == 0
        assert plan.slot("b").start == 10
        assert plan.total_words == 30
        assert plan.total_padding == 0

    def test_headroom_adds_slack(self):
        plan = baseline_placement({"a": 10, "b": 20}, ["a", "b"], headroom=4)
        assert plan.slot("b").start == 14
        assert plan.total_padding == 8

    def test_ucc_keeps_addresses_when_fits(self):
        old = baseline_placement({"a": 10, "b": 20, "c": 5}, ["a", "b", "c"])
        new = ucc_placement({"a": 8, "b": 20, "c": 5}, ["a", "b", "c"], old)
        # a shrank: b and c keep their addresses; a's slot padded.
        assert new.slot("b").start == old.slot("b").start
        assert new.slot("c").start == old.slot("c").start
        assert new.slot("a").padding_words == 2

    def test_ucc_grower_shifts_only_successors(self):
        old = baseline_placement({"a": 10, "b": 20, "c": 5}, ["a", "b", "c"])
        new = ucc_placement({"a": 10, "b": 25, "c": 5}, ["a", "b", "c"], old)
        assert new.slot("a").start == old.slot("a").start
        assert new.slot("b").start == old.slot("b").start  # grows in place
        assert new.slot("c").start > old.slot("c").start  # pushed

    def test_ucc_newcomer_appends(self):
        old = baseline_placement({"a": 10}, ["a"])
        new = ucc_placement({"a": 10, "z": 7}, ["z", "a"], old)
        assert new.slot("a").start == 0
        assert new.slot("z").start == 10

    def test_ucc_deleted_function_shifts_successors_down(self):
        old = baseline_placement({"a": 10, "b": 20, "c": 5}, ["a", "b", "c"])
        new = ucc_placement({"a": 10, "c": 5}, ["a", "c"], old)
        # b deleted: c may move down (its old address is unreachable
        # anyway once b's call sites are gone) but never overlaps a.
        assert new.slot("c").start >= 10

    def test_headroom_absorbs_growth(self):
        old = baseline_placement({"a": 10, "b": 20}, ["a", "b"], headroom=4)
        new = ucc_placement({"a": 13, "b": 20}, ["a", "b"], old, headroom=4)
        assert new.slot("a").start == old.slot("a").start
        assert new.slot("b").start == old.slot("b").start  # absorbed!
        assert new.stable_functions(old) == ["a", "b"]

    def test_apply_placement_emits_gap_and_tail_nops(self):
        code = {
            "a": [MachineInstr("nop"), MachineInstr("ret")],
            "b": [MachineInstr("halt")],
        }
        plan = PlacementPlan(algorithm="test")
        from repro.codegen.placement import FunctionSlot

        plan.slots = [
            FunctionSlot("a", 0, 2, 4),
            FunctionSlot("b", 6, 1, 1),  # gap of 2 before b
        ]
        out = apply_placement(code, plan)
        assert code_size_words(out) == 7
        pads = [i for i in out if i.comment == "<pad>"]
        assert len(pads) == 4  # 2 slot-tail + 2 gap


class TestEndToEnd:
    SRC = """
    u8 g;
    void first() { g = g + 1; }
    void second() { g = g + 2; }
    void third() { g = g + 3; }
    void main() { first(); second(); third(); halt(); }
    """

    def test_growth_keeps_predecessors_stable(self):
        """Growing `third` under UCC placement leaves first/second at
        their addresses; under baseline packing they stay too (they
        precede the grower), so the interesting check is that UCC is
        never worse and predecessors never move."""
        old = compile_source(self.SRC)
        new_src = self.SRC.replace("g = g + 3;", "g = g + 3; g = g ^ 9; led_set(g);")
        ucc = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc", cp="ucc"))
        baseline = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc", cp="gcc"))
        assert ucc.diff_inst <= baseline.diff_inst
        stable = ucc.new.placement.stable_functions(old.placement)
        assert {"first", "second", "third"} <= set(stable)

    def test_shrink_padding_vs_shift_trade(self):
        """Shrinking `first`: UCC placement pads the slot (addresses
        stable, pad NOPs transmitted), baseline packing shifts
        successors (call sites re-encode).  Which costs less depends on
        the call graph — the auto mode must pick the cheaper one."""
        old = compile_source(self.SRC)
        new_src = self.SRC.replace("void first() { g = g + 1; }", "void first() { }")
        padded = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc", cp="ucc"))
        shifted = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc", cp="gcc"))
        auto = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc"))  # cp=auto
        stable = set(padded.new.placement.stable_functions(old.placement))
        assert {"first", "second", "third", "main"} <= stable
        assert padded.new.placement.total_padding > 0
        assert auto.code_script_bytes <= min(
            padded.code_script_bytes, shifted.code_script_bytes
        )

    def test_relocate_growers_tombstones(self):
        """The optional tombstone policy: a grower moves to the end and
        its old bytes stay, so successors keep their addresses."""
        old = baseline_placement({"a": 10, "b": 20, "c": 5}, ["a", "b", "c"])
        raw = {"a": tuple(range(10))}
        new = ucc_placement(
            {"a": 14, "b": 20, "c": 5},
            ["a", "b", "c"],
            old,
            old_slot_words=raw,
            relocate_growers=True,
        )
        assert new.slot("b").start == old.slot("b").start
        assert new.slot("c").start == old.slot("c").start
        assert new.tombstones and new.tombstones[0].words == raw["a"]
        assert new.slot("a").start >= old.slot("c").start + 5

    def test_padded_binary_still_correct(self):
        options = CompilerOptions(placement_headroom=6)
        prog = Compiler(options).compile(self.SRC)
        sim_result = run_image(prog.image)
        assert sim_result.halted
        # g = 1 + 2 + 3
        from repro.sim import Simulator

        sim = Simulator(prog.image)
        sim.run()
        assert sim.load(prog.layout.addresses["g"]) == 6

    def test_headroom_roundtrip_through_update(self):
        options = CompilerOptions(placement_headroom=8)
        old = Compiler(options).compile(self.SRC)
        new_src = self.SRC.replace("g = g + 2;", "g = g + 2; g = g | 1;")
        result = plan_update(old, new_src, config=UpdateConfig(ra="ucc", da="ucc"))
        # growth absorbed by headroom: every function keeps its address
        stable = result.new.placement.stable_functions(old.placement)
        assert set(stable) == {"first", "second", "third", "main"}

    def test_plan_matches_assembled_symbols(self):
        prog = compile_source(self.SRC)
        for slot in prog.placement.slots:
            assert prog.image.symbols[slot.name] == slot.start
