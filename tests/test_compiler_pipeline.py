"""Compiler-pipeline invariants: determinism, structure, data image."""

import pytest

from repro.core import Compiler, CompilerOptions, build_data_image, compile_source
from repro.isa import disassemble_words
from repro.lang import CompileError


class TestDeterminism:
    def test_identical_source_identical_binary(self, simple_source):
        a = compile_source(simple_source)
        b = compile_source(simple_source)
        assert a.image.words() == b.image.words()
        assert a.layout.addresses == b.layout.addresses

    def test_disassembly_roundtrip(self, simple_program):
        back = disassemble_words(simple_program.image.words())
        assert len(back) == simple_program.instruction_count


class TestStructure:
    def test_functions_emitted_in_source_order(self, simple_program):
        symbols = simple_program.image.symbols
        assert symbols["bump"] < symbols["main"]

    def test_entry_is_main(self, simple_program):
        assert simple_program.image.entry == simple_program.image.symbols["main"]

    def test_every_instruction_attributed(self, simple_program):
        for enc in simple_program.image.code:
            assert enc.instr.comment in simple_program.module.functions

    def test_records_cover_all_functions(self, simple_program):
        assert set(simple_program.records) == set(simple_program.module.functions)

    def test_machine_labels_function_qualified(self, simple_program):
        for name in simple_program.image.symbols:
            assert name in simple_program.module.functions or "." in name


class TestDataImage:
    def test_global_initial_values_placed(self, simple_program):
        layout = simple_program.layout
        data = simple_program.image.data
        offset = layout.addresses["mask"] - layout.segment_base
        assert data[offset] == 7

    def test_u16_little_endian(self):
        prog = compile_source("u16 big = 0x1234; void main() { halt(); }")
        offset = prog.layout.addresses["big"] - prog.layout.segment_base
        assert prog.image.data[offset] == 0x34
        assert prog.image.data[offset + 1] == 0x12

    def test_const_array_in_data_segment(self):
        prog = compile_source(
            "const u8 t[4] = {9, 8, 7, 6}; u8 r;"
            " void main() { r = t[2]; halt(); }"
        )
        offset = prog.layout.addresses["t"] - prog.layout.segment_base
        assert list(prog.image.data[offset : offset + 4]) == [9, 8, 7, 6]

    def test_data_image_sized_to_segment(self, simple_program):
        layout = simple_program.layout
        assert len(simple_program.image.data) == layout.segment_end - layout.segment_base

    def test_build_data_image_direct(self, simple_program):
        data = build_data_image(simple_program.module, simple_program.layout)
        assert data == simple_program.image.data


class TestOptionsAndErrors:
    def test_missing_main_raises(self):
        from repro.isa import AssemblyError

        with pytest.raises(AssemblyError):
            compile_source("void f() { }")

    def test_front_end_errors_propagate(self):
        with pytest.raises(CompileError):
            compile_source("void main() { undeclared = 1; }")

    def test_linear_allocator_option(self, simple_source):
        prog = compile_source(simple_source, register_allocator="linear")
        assert all(r.algorithm == "linear-scan" for r in prog.records.values())

    def test_unknown_allocator_rejected(self, simple_source):
        with pytest.raises(KeyError):
            compile_source(simple_source, register_allocator="magic")

    def test_depth_override_reaches_ir(self, simple_source):
        options = CompilerOptions(depths={"bump": 3})
        prog = Compiler(options).compile(simple_source)
        assert prog.module.functions["bump"].depth == 3

    def test_optimize_flag_reduces_code(self, simple_source):
        optimized = compile_source(simple_source, optimize=True)
        plain = compile_source(simple_source, optimize=False)
        assert optimized.size_words <= plain.size_words
