"""Integration sweep over all fifteen update cases (paper Figures 9/16).

For every case and every strategy pair we assert the reproduction's
headline invariants:

* the patch round-trips (sensor rebuilds the sink's binary exactly),
* UCC never transmits more than the best-match baseline,
* the updated binary is observationally equivalent to a fresh compile,
* the data-layout cases show the §5.7 effects.
"""

import pytest

from repro.core import measure_cycles, plan_update
from repro.diff.patcher import patched_words
from repro.sim import DeviceBoard, Timer, run_image
from repro.workloads import CASES, RA_CASE_IDS
from repro.config import UpdateConfig

ALL_IDS = sorted(CASES)


@pytest.mark.parametrize("case_id", ALL_IDS)
class TestEveryCase:
    def test_patch_round_trips(self, case_id, compiled_case_olds):
        case = CASES[case_id]
        old = compiled_case_olds[case_id]
        for ra, da in (("gcc", "gcc"), ("ucc", "ucc")):
            result = plan_update(old, case.new_source, config=UpdateConfig(ra=ra, da=da))
            assert patched_words(old.image, result.diff.script) == result.new.image.words()

    def test_ucc_diff_not_worse(self, case_id, compiled_case_olds):
        case = CASES[case_id]
        old = compiled_case_olds[case_id]
        baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert ucc.diff_inst <= baseline.diff_inst

    def test_updated_binary_equivalent_to_fresh(self, case_id, compiled_case_olds):
        """Observationally equivalent modulo timing: the two binaries
        may take slightly different cycle counts per loop iteration, so
        the cycle-driven timer can fire a different number of times —
        the *sequences* of observations must still agree as prefixes."""
        from repro.core import compile_source

        case = CASES[case_id]
        old = compiled_case_olds[case_id]
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        fresh = compile_source(case.new_source)

        def observe(image):
            board = DeviceBoard(timer=Timer(period_cycles=350))
            result = run_image(image, devices=board, max_cycles=10_000_000)
            return (result.devices.led.writes, result.devices.radio.sent)

        led_a, radio_a = observe(ucc.new.image)
        led_b, radio_b = observe(fresh.image)

        def prefix_equal(a, b):
            n = min(len(a), len(b))
            slack = max(4, len(a) // 10, len(b) // 10)
            return a[:n] == b[:n] and abs(len(a) - len(b)) <= slack

        assert prefix_equal(led_a, led_b)
        assert prefix_equal(radio_a, radio_b)


class TestPaperShapes:
    def test_small_cases_have_small_diffs(self, compiled_case_olds):
        for cid in ("1", "2", "3", "5"):
            case = CASES[cid]
            result = plan_update(compiled_case_olds[cid], case.new_source)
            assert result.diff_inst <= 8, cid

    def test_large_cases_dominated_by_new_code(self, compiled_case_olds):
        """Case 13 (CntToLeds -> CntToRfm): most of the new binary must
        be transmitted, but some structural similarity is reusable
        (paper: GCC reuses 422 of 4351; UCC reuses ~15% more)."""
        case = CASES["13"]
        old = compiled_case_olds["13"]
        baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert ucc.diff_inst > 0.45 * ucc.diff.new_instructions
        assert ucc.reused_instructions >= baseline.reused_instructions
        assert ucc.reused_instructions > 0

    def test_d1_gcc_layout_cascades(self, compiled_case_olds):
        """D1: inserting globals cascades offsets under GCC-DA but not
        under UCC-DA (paper §5.7: ~10% of instructions changed)."""
        case = CASES["D1"]
        old = compiled_case_olds["D1"]
        baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="gcc"))
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert ucc.diff_inst < baseline.diff_inst
        moved_gcc = baseline.new.layout.moved_objects(old.layout)
        moved_ucc = ucc.new.layout.moved_objects(old.layout)
        assert len(moved_ucc) < len(moved_gcc)

    def test_d2_rename_free_under_ucc(self, compiled_case_olds):
        """D2 (shuffle + rename): UCC-DA puts renamed variables in the
        deleted slots, so almost nothing changes."""
        case = CASES["D2"]
        old = compiled_case_olds["D2"]
        baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="gcc"))
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert ucc.diff_inst <= 2
        assert baseline.diff_inst > ucc.diff_inst

    def test_code_quality_close_to_baseline(self, compiled_case_olds):
        """Paper Figure 11: UCC's slowdown is negligible."""
        for cid in RA_CASE_IDS[:6]:
            case = CASES[cid]
            old = compiled_case_olds[cid]
            baseline = measure_cycles(
                plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
            )
            ucc = measure_cycles(plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc")))
            slowdown = ucc.new_cycles - baseline.new_cycles
            assert abs(slowdown) <= max(10, 0.01 * baseline.new_cycles), cid


class TestCheckedPipeline:
    """End-to-end exercise of the checked=True verification mode."""

    @pytest.mark.parametrize("case_id", ["1", "5", "9", "D1"])
    def test_checked_plan_ships_verified_update(self, case_id, compiled_case_olds):
        case = CASES[case_id]
        result = plan_update(
            compiled_case_olds[case_id], case.new_source, checked=True
        )
        # a checked plan that returns has passed every analysis pass;
        # the shipped script still round-trips on the sensor side
        rebuilt = patched_words(result.old.image, result.diff.script)
        assert rebuilt == result.new.image.words()

    def test_checked_plan_with_ilp_allocator(self, compiled_case_olds):
        case = CASES["4"]
        result = plan_update(compiled_case_olds["4"], case.new_source, checked=True, config=UpdateConfig(ra="ucc-ilp"))
        assert result.new.options.checked
