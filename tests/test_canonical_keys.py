"""Property tests for the canonical solve-memo keys
(:mod:`repro.ilp.canonical`).

The cache key contract the fleet service leans on:

* *isomorphism* — renaming variables (and shuffling build order of
  commuting operations) never changes the key;
* *separation* — touching anything that can change the answer (a
  coefficient, a sense, an rhs, the backend, the node limit, the
  incumbent) always changes the exact key;
* *structure vs exact* — the structure digest ignores exactly one
  thing: the warm-start incumbent.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.ilp import IntegerProgram
from repro.ilp.branch_bound import SolveResult, SolveStats
from repro.ilp.canonical import (
    SolveCache,
    canonical_digest,
    canonical_digests,
    canonical_form,
)

SENSES = ("<=", ">=", "=")


def _build_ip(seed: int, prefix: str = "x", shuffle: bool = False) -> IntegerProgram:
    """A small random program, deterministic in ``seed``; ``prefix``
    renames every variable and ``shuffle`` permutes the order of the
    commuting build calls (objective terms, constraint list)."""
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    names = [f"{prefix}{i}" for i in range(n)]
    obj = [(name, float(rng.randint(-5, 5))) for name in names]
    constraints = []
    for _ in range(rng.randint(1, 4)):
        k = rng.randint(1, n)
        terms = [(float(rng.randint(1, 4)), name) for name in rng.sample(names, k)]
        constraints.append((terms, rng.choice(SENSES), float(rng.randint(0, 5))))
    fixed = [(name, rng.randint(0, 1)) for name in names if rng.random() < 0.2]

    order = random.Random(seed * 31 + 7) if shuffle else None
    prog = IntegerProgram()
    if order:
        order.shuffle(obj)
        order.shuffle(constraints)
    for name, coeff in obj:
        prog.add_objective(name, coeff)
    for terms, sense, rhs in constraints:
        prog.add_constraint(terms, sense, rhs)
    for name, value in fixed:
        prog.fix(name, value)
    return prog


class TestIsomorphismInvariance:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_rename_same_key(self, seed):
        a = _build_ip(seed, prefix="x")
        b = _build_ip(seed, prefix="very_long_name_")
        assert canonical_digest(a) == canonical_digest(b)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_commuting_build_order_same_key(self, seed):
        # Objective terms and constraint insertion commute as long as
        # first-use variable order is preserved — which the canonical
        # indexing normalises away entirely only for constraint order.
        a = _build_ip(seed)
        b = _build_ip(seed)
        assert canonical_form(a) == canonical_form(b)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_incumbent_rename_same_exact_key(self, seed):
        a = _build_ip(seed, prefix="x")
        b = _build_ip(seed, prefix="y")
        hint_a = {name: i % 2 for i, name in enumerate(a.variables)}
        hint_b = {name: i % 2 for i, name in enumerate(b.variables)}
        assert canonical_digest(a, incumbent=hint_a) == canonical_digest(
            b, incumbent=hint_b
        )


class TestSeparation:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    def test_single_perturbation_changes_key(self, seed, data):
        from dataclasses import replace

        base = _build_ip(seed)
        perturbed = _build_ip(seed)
        cons = perturbed.constraints
        kind = data.draw(
            st.sampled_from(["coeff", "rhs", "sense", "objective"]),
            label="perturbation",
        )
        if kind == "objective":
            name = data.draw(
                st.sampled_from(list(perturbed.variables)), label="var"
            )
            perturbed.add_objective(name, 1.0)
        else:
            idx = data.draw(
                st.integers(min_value=0, max_value=len(cons) - 1),
                label="constraint",
            )
            c = cons[idx]
            if kind == "coeff":
                tidx = data.draw(
                    st.integers(min_value=0, max_value=len(c.terms) - 1),
                    label="term",
                )
                new_terms = list(c.terms)
                new_terms[tidx] = replace(
                    new_terms[tidx], coeff=new_terms[tidx].coeff + 1.0
                )
                cons[idx] = replace(c, terms=new_terms)
            elif kind == "rhs":
                cons[idx] = replace(c, rhs=c.rhs + 1.0)
            else:
                new_sense = data.draw(
                    st.sampled_from([s for s in SENSES if s != c.sense]),
                    label="sense",
                )
                cons[idx] = replace(c, sense=new_sense)
        assert canonical_digest(base) != canonical_digest(perturbed)

    def test_backend_and_node_limit_in_key(self):
        prog = _build_ip(3)
        assert canonical_digest(prog, backend="own") != canonical_digest(
            prog, backend="scipy"
        )
        assert canonical_digest(prog, node_limit=10) != canonical_digest(
            prog, node_limit=20
        )


class TestStructureVsExact:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_no_incumbent_exact_equals_structure(self, seed):
        prog = _build_ip(seed)
        exact, structure = canonical_digests(prog, backend="own")
        assert exact == structure
        assert exact == canonical_digest(prog, backend="own")

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_incumbent_splits_exact_not_structure(self, seed):
        prog = _build_ip(seed)
        hint = {name: 1 for name in prog.variables}
        exact_cold, structure_cold = canonical_digests(prog, backend="own")
        exact_warm, structure_warm = canonical_digests(
            prog, backend="own", incumbent=hint
        )
        assert structure_cold == structure_warm
        assert exact_cold != exact_warm
        # And the single-render exact digest matches the standalone one.
        assert exact_warm == canonical_digest(prog, backend="own", incumbent=hint)


class TestGetWarm:
    def _result(self, prog, values=None):
        return SolveResult(
            status="optimal",
            values=values or {name: 0 for name in prog.variables},
            objective=1.5,
            stats=SolveStats(),
        )

    def test_round_trip_rekeys_names(self):
        cache = SolveCache()
        a = _build_ip(11, prefix="x")
        b = _build_ip(11, prefix="renamed_")
        exact, structure = canonical_digests(a, backend="own")
        values = {name: i % 2 for i, name in enumerate(a.variables)}
        cache.put(exact, a, self._result(a, values), structure=structure)
        warm = cache.get_warm(structure, b)
        assert warm == {
            f"renamed_{i}": value
            for i, value in enumerate(
                values[name] for name in a.variables
            )
        }

    def test_stale_mapping_dropped_after_eviction(self):
        cache = SolveCache(maxsize=1)
        prog = _build_ip(12)
        exact, structure = canonical_digests(prog, backend="own")
        cache.put(exact, prog, self._result(prog), structure=structure)
        # Push the entry out of the tiny LRU with an unrelated one.
        other = _build_ip(13)
        cache.put("other-digest", other, self._result(other))
        assert cache.get_warm(structure, prog) is None
        # The lazy cleanup removed the stale structure mapping.
        assert structure not in cache._by_structure

    def test_non_optimal_entries_never_warm_start(self):
        cache = SolveCache()
        prog = _build_ip(14)
        exact, structure = canonical_digests(prog, backend="own")
        result = self._result(prog)
        result.status = "node_limit"
        cache.put(exact, prog, result, structure=structure)
        assert cache.get_warm(structure, prog) is None
