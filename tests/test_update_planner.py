"""Update-planner integration tests (the paper's core loop)."""

import pytest

from repro.core import compile_source, measure_cycles, plan_update
from repro.diff.patcher import patched_words
from repro.workloads import CASES
from repro.config import UpdateConfig


class TestSelfUpdate:
    def test_identical_source_yields_empty_diff(self, simple_program, simple_source):
        result = plan_update(simple_program, simple_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert result.diff_inst == 0
        assert result.diff.script.is_empty
        assert result.reused_instructions == result.diff.new_instructions

    def test_identical_source_zero_cycle_change(self, simple_program, simple_source):
        result = plan_update(simple_program, simple_source, config=UpdateConfig(ra="ucc", da="ucc"))
        measure_cycles(result)
        assert result.diff_cycle == 0


class TestStrategies:
    @pytest.fixture(scope="class")
    def case6(self, compiled_case_olds):
        case = CASES["6"]
        return compiled_case_olds["6"], case

    def test_all_strategies_produce_working_patches(self, case6):
        old, case = case6
        for ra in ("gcc", "linear", "ucc", "ucc-ilp"):
            for da in ("gcc", "ucc"):
                result = plan_update(old, case.new_source, config=UpdateConfig(ra=ra, da=da))
                rebuilt = patched_words(old.image, result.diff.script)
                assert rebuilt == result.new.image.words()

    def test_ucc_not_worse_than_baseline(self, case6):
        old, case = case6
        baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert ucc.diff_inst <= baseline.diff_inst

    def test_new_function_falls_back_to_baseline(self, compiled_case_olds):
        # case 9 adds a brand-new function 'saturate'
        case = CASES["9"]
        old = compiled_case_olds["9"]
        result = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert "saturate" in result.new.module.functions
        assert "saturate" not in result.ra_reports  # no old decisions

    def test_updated_binary_behaves_like_fresh_compile(self, compiled_case_olds):
        """The update-conscious binary and a fresh baseline compile of
        the same source must be observationally equivalent."""
        from repro.sim import DeviceBoard, Timer, run_image

        case = CASES["1"]
        old = compiled_case_olds["1"]
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        fresh = compile_source(case.new_source)
        board = lambda: DeviceBoard(timer=Timer(period_cycles=400))  # noqa: E731
        run_ucc = run_image(ucc.new.image, devices=board())
        run_fresh = run_image(fresh.image, devices=board())
        assert run_ucc.devices.led.writes == run_fresh.devices.led.writes
        assert run_ucc.devices.radio.sent == run_fresh.devices.radio.sent

    def test_diff_metrics_consistent(self, case6):
        old, case = case6
        result = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert result.diff_words >= result.diff_inst  # words >= instrs
        assert result.script_bytes >= 2 * result.diff_words  # header bytes
        assert (
            result.reused_instructions + result.diff_inst
            == result.diff.new_instructions
        )

    def test_packets_track_script_size(self, case6):
        old, case = case6
        result = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert result.packets.script_bytes == result.script_bytes
        assert result.packets.packet_count >= 1


class TestEnergyAccounting:
    def test_diff_energy_requires_cycles(self, compiled_case_olds):
        case = CASES["2"]
        result = plan_update(compiled_case_olds["2"], case.new_source)
        with pytest.raises(ValueError):
            result.diff_energy(cnt=100)

    def test_energy_savings_positive_when_ucc_smaller(self, compiled_case_olds):
        case = CASES["13"]
        old = compiled_case_olds["13"]
        baseline = measure_cycles(plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc")))
        ucc = measure_cycles(plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc")))
        if ucc.diff_words < baseline.diff_words:
            cnt = 10.0
            assert baseline.diff_energy(cnt) > ucc.diff_energy(cnt)


class TestExpectedRunsKnob:
    def test_expected_runs_forwarded(self, compiled_case_olds):
        case = CASES["6"]
        old = compiled_case_olds["6"]
        small = plan_update(old, case.new_source, config=UpdateConfig(expected_runs=1.0))
        huge = plan_update(old, case.new_source, config=UpdateConfig(expected_runs=1e9))
        # With huge Cnt, move insertion is disabled (paper §5.5): the
        # planner must never insert *more* moves than at small Cnt.
        assert huge.moves_inserted() <= small.moves_inserted()
