"""Common-subexpression-elimination tests."""

from repro.ir import IROp, build_ir
from repro.lang import frontend
from repro.opt import eliminate_common_subexpressions, optimize_function


def lower_fn(source, name="f"):
    return build_ir(frontend(source)).functions[name]


def count_op(fn, op):
    return sum(1 for ins in fn.instrs if ins.op is op)


class TestCSE:
    def test_repeated_global_load_eliminated(self):
        fn = lower_fn("u8 g; void f() { u8 x = g + 1; u8 y = g + 2; led_set(x ^ y); }")
        assert count_op(fn, IROp.LOADG) == 2
        eliminate_common_subexpressions(fn)
        assert count_op(fn, IROp.LOADG) == 1

    def test_repeated_pure_expression_eliminated(self):
        fn = lower_fn("void f(u8 a, u8 b) { u8 x = a + b; u8 y = a + b; led_set(x ^ y); }")
        eliminate_common_subexpressions(fn)
        assert count_op(fn, IROp.ADD) == 1

    def test_store_invalidates_load(self):
        fn = lower_fn("u8 g; void f() { u8 x = g; g = 5; u8 y = g; led_set(x ^ y); }")
        eliminate_common_subexpressions(fn)
        assert count_op(fn, IROp.LOADG) == 2  # both loads must stay

    def test_call_invalidates_memory(self):
        src = """
        u8 g;
        void h() { g = 9; }
        void f() { u8 x = g; h(); u8 y = g; led_set(x ^ y); }
        """
        fn = lower_fn(src)
        eliminate_common_subexpressions(fn)
        assert count_op(fn, IROp.LOADG) == 2

    def test_array_store_invalidates_indexed_loads(self):
        src = """
        u8 t[4];
        void f(u8 i, u8 j) {
            u8 x = t[i];
            t[j] = 9;
            u8 y = t[i];
            led_set(x ^ y);
        }
        """
        fn = lower_fn(src)
        eliminate_common_subexpressions(fn)
        assert count_op(fn, IROp.LOADIDX) == 2

    def test_operand_redefinition_invalidates(self):
        fn = lower_fn(
            "void f(u8 a, u8 b) { u8 x = a + b; a = 9; u8 y = a + b; led_set(x ^ y); }"
        )
        eliminate_common_subexpressions(fn)
        assert count_op(fn, IROp.ADD) == 2

    def test_ioread_never_cse(self):
        fn = lower_fn("void f() { u8 a = timer_fired(); u8 b = timer_fired(); led_set(a ^ b); }")
        eliminate_common_subexpressions(fn)
        assert count_op(fn, IROp.IOREAD) == 2

    def test_no_cse_across_blocks(self):
        src = """
        u8 g;
        void f(u8 a) {
            u8 x = g;
            if (a) { g = 1; }
            u8 y = g;
            led_set(x ^ y);
        }
        """
        fn = lower_fn(src)
        eliminate_common_subexpressions(fn)
        assert count_op(fn, IROp.LOADG) == 2

    def test_semantics_preserved_end_to_end(self):
        from repro.core import compile_source
        from repro.sim import Simulator

        src = """
        u8 g = 10;
        u8 r;
        void main() {
            u8 x = g + 5;
            u8 y = g + 5;
            g = 1;
            u8 z = g + 5;
            r = x + y + z;
            halt();
        }
        """
        prog = compile_source(src)
        sim = Simulator(prog.image)
        sim.run()
        assert sim.load(prog.layout.addresses["r"]) == (15 + 15 + 6) & 0xFF

    def test_cse_reduces_code_size(self):
        from repro.core import compile_source

        src = """
        u16 g;
        u16 r;
        void main() {
            r = (g * 3) + (g * 3) + (g * 3);
            halt();
        }
        """
        small = compile_source(src, optimize=True)
        big = compile_source(src, optimize=False)
        assert small.size_words < big.size_words

    def test_cse_is_deterministic(self):
        src = "u8 g; void f() { u8 a = g & 1; u8 b = g & 1; led_set(a | b); }"
        fn1 = lower_fn(src)
        fn2 = lower_fn(src)
        optimize_function(fn1)
        optimize_function(fn2)
        assert [str(i) for i in fn1.instrs] == [str(i) for i in fn2.instrs]
