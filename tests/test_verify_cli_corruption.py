"""``repro verify`` must exit non-zero for a fault in *each* analysis
pass, and zero on a clean plan.

Each test monkeypatches :func:`repro.cli.plan_update` to corrupt one
compilation product the way the corresponding verifier pass watches
for (the same corruptions :mod:`tests.test_analysis` applies to the
library API), then drives the real CLI entry point end-to-end.
"""

import pytest

from repro import cli
from repro.core import plan_update as real_plan_update

CASE = "3"  # same richly-featured case the analysis corruption tests use


def _corrupt_allocation(result):
    placement = next(
        p
        for record in result.new.records.values()
        for p in record.placements.values()
        if p.pieces
    )
    placement.pieces[0].base = 0  # r0 is reserved for scratch


def _corrupt_layout(result):
    layout = result.new.layout
    uids = sorted(layout.addresses)
    assert len(uids) >= 2
    layout.addresses[uids[1]] = layout.addresses[uids[0]]


def _corrupt_patch(result):
    assert result.diff.script.primitives
    result.diff.script.primitives.pop()


def _corrupt_energy(result):
    result.diff.diff_words += 3


def _corrupt_addressing(result):
    layout = result.new.layout
    uid = max(layout.addresses, key=lambda u: layout.addresses[u])
    layout.addresses[uid] = layout.addresses[uid] + 2


CORRUPTIONS = [
    ("allocation", _corrupt_allocation, {"allocation"}),
    ("layout", _corrupt_layout, {"layout"}),
    ("patch", _corrupt_patch, {"patch"}),
    ("energy", _corrupt_energy, {"energy"}),
    # a silently relocated object trips the stale lds/sts addresses or
    # the overlap it creates, whichever the passes see first
    ("addressing", _corrupt_addressing, {"addressing", "layout"}),
]


def _install_corruptor(monkeypatch, corrupt):
    def corrupted_plan(old, new_source, **kwargs):
        result = real_plan_update(old, new_source, **kwargs)
        corrupt(result)
        return result

    monkeypatch.setattr(cli, "plan_update", corrupted_plan)


class TestVerifyCliCorruption:
    @pytest.mark.parametrize(
        "pass_name,corrupt,expected", CORRUPTIONS, ids=[c[0] for c in CORRUPTIONS]
    )
    def test_injected_fault_fails_verify(
        self, pass_name, corrupt, expected, monkeypatch, capsys
    ):
        _install_corruptor(monkeypatch, corrupt)
        rc = cli.main(["verify", "--case", CASE])
        out = capsys.readouterr().out
        assert rc == 1, f"{pass_name} corruption not detected:\n{out}"
        assert any(name in out for name in expected), out

    def test_clean_plan_verifies(self, capsys):
        rc = cli.main(["verify", "--case", CASE])
        out = capsys.readouterr().out
        assert rc == 0, out

    def test_clean_files_verify(self, tmp_path, capsys):
        from repro.workloads import CASES

        case = CASES[CASE]
        old = tmp_path / "old.c"
        new = tmp_path / "new.c"
        old.write_text(case.old_source)
        new.write_text(case.new_source)
        assert cli.main(["verify", str(old), str(new)]) == 0

    def test_corrupt_plan_fails_for_files_too(self, tmp_path, monkeypatch, capsys):
        from repro.workloads import CASES

        _install_corruptor(monkeypatch, _corrupt_patch)
        case = CASES[CASE]
        old = tmp_path / "old.c"
        new = tmp_path / "new.c"
        old.write_text(case.old_source)
        new.write_text(case.new_source)
        assert cli.main(["verify", str(old), str(new)]) == 1
