"""Tests of the §3.3/§3.4 ILP register-allocation model and MINLP ref."""

import pytest

from repro.core import Compiler, CompilerOptions, compile_source
from repro.energy import DEFAULT_ENERGY_MODEL
from repro.ir import analyze, static_frequencies
from repro.ir.liveness import analyze as analyze_liveness
from repro.ilp import solve
from repro.regalloc import (
    allocate_ucc_greedy,
    allocate_ucc_ilp,
    build_chunk_model,
    build_spec_for_chunk,
    nonlinear_objective,
    solve_chunk_minlp,
    verify_allocation,
)
from repro.regalloc.chunks import changed_indices
from repro.regalloc.ilp_model import THETA, greedy_incumbent
from repro.workloads import CASES
from repro.config import UpdateConfig


def chunk_fixture(case_id="6", fname="tosh_run_next_task", candidates=3):
    case = CASES[case_id]
    old = compile_source(case.old_source)
    module = Compiler(CompilerOptions()).front_and_middle(case.new_source)
    fn = module.functions[fname]
    record, report = allocate_ucc_greedy(
        fn, old.module.functions[fname], old.records[fname]
    )
    info = analyze(fn)
    freqs = static_frequencies(fn)
    changed = changed_indices(fn, report.match)
    chunk = next(c for c in report.chunks if c.changed)
    spec = build_spec_for_chunk(
        fn,
        info,
        record,
        report,
        chunk.start,
        chunk.end,
        changed,
        freqs,
        DEFAULT_ENERGY_MODEL,
        1000.0,
        candidates,
    )
    return fn, record, report, spec


class TestChunkModel:
    def test_model_builds_and_solves(self):
        _, _, _, spec = chunk_fixture()
        model = build_chunk_model(spec)
        assert model.num_variables > 0
        assert model.num_constraints > 0
        result = solve(model, backend="scipy")
        assert result.status == "optimal"

    def test_own_and_scipy_agree(self):
        _, record, _, spec = chunk_fixture()
        model = build_chunk_model(spec)
        assignment = {
            a: (None if record.placements[a].spilled else record.placements[a].sole_register)
            for a in spec.variables()
        }
        incumbent = greedy_incumbent(spec, assignment)
        own = solve(model, backend="own", incumbent=incumbent)
        ref = solve(model, backend="scipy")
        assert own.status == ref.status == "optimal"
        assert own.objective == pytest.approx(ref.objective, rel=1e-9)

    def test_constraints_grow_with_chunk_size(self):
        """Paper Figure 13: constraints ~ linear in instruction count."""
        sizes = []
        for fname in ("tosh_run_next_task", "main"):
            try:
                _, _, _, spec = chunk_fixture(fname=fname)
            except StopIteration:
                continue
            model = build_chunk_model(spec)
            sizes.append((spec.hi - spec.lo, model.num_constraints))
        assert sizes
        for instrs, constraints in sizes:
            assert constraints >= instrs  # at least ~1 constraint per stmt

    def test_incumbent_is_feasible(self):
        _, record, _, spec = chunk_fixture()
        model = build_chunk_model(spec)
        assignment = {
            a: (None if record.placements[a].spilled else record.placements[a].sole_register)
            for a in spec.variables()
        }
        incumbent = greedy_incumbent(spec, assignment)
        assert model.is_feasible(incumbent)

    def test_theta_is_three_quarters(self):
        assert THETA == 0.75


class TestILPAllocator:
    def test_ilp_mode_verifies(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        module = Compiler(CompilerOptions()).front_and_middle(case.new_source)
        for fname, fn in module.functions.items():
            record, report = allocate_ucc_ilp(
                fn, old.module.functions[fname], old.records[fname]
            )
            verify_allocation(record, analyze_liveness(fn))

    def test_ilp_never_worse_than_greedy_on_diff(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        from repro.core import plan_update

        greedy = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        ilp = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc-ilp", da="ucc"))
        assert ilp.diff_inst <= greedy.diff_inst + 2  # ties allowed

    def test_stats_recorded_per_chunk(self):
        case = CASES["6"]
        old = compile_source(case.old_source)
        module = Compiler(CompilerOptions()).front_and_middle(case.new_source)
        fn = module.functions["tosh_run_next_task"]
        _, report = allocate_ucc_ilp(
            fn, old.module.functions["tosh_run_next_task"], old.records["tosh_run_next_task"]
        )
        solved = [o for o in report.chunks if o.stats is not None]
        assert solved
        for outcome in solved:
            assert outcome.stats.num_variables > 0


class TestMINLP:
    def test_minlp_matches_ilp_objective(self):
        """Paper §5.6: the linear approximation produces the same
        decisions (and therefore the same true energy) as the MINLP."""
        _, record, _, spec = chunk_fixture(candidates=3)
        model = build_chunk_model(spec)
        ilp = solve(model, backend="scipy")
        assert ilp.status == "optimal"
        minlp = solve_chunk_minlp(spec)
        ilp_true_energy = nonlinear_objective(spec, ilp.values)
        assert ilp_true_energy == pytest.approx(minlp.objective, rel=1e-9)

    def test_minlp_slower_than_ilp(self):
        """§5.6's performance claim, at our scale: enumeration evaluates
        many assignments where the ILP solves once."""
        _, _, _, spec = chunk_fixture(candidates=3)
        minlp = solve_chunk_minlp(spec)
        assert minlp.evaluated > 10

    def test_enumeration_guard(self):
        _, _, _, spec = chunk_fixture(candidates=3)
        with pytest.raises(ValueError):
            solve_chunk_minlp(spec, max_assignments=1)
