"""Data-segment diff/patch tests."""

from hypothesis import given, settings, strategies as st

from repro.diff import DataScript, apply_data, diff_data


class TestDiffData:
    def test_identical_images_empty(self):
        script = diff_data(b"abc", b"abc")
        assert script.is_empty
        assert script.size_bytes == 0

    def test_single_byte_change(self):
        script = diff_data(b"abcdef", b"abXdef")
        assert len(script.patches) == 1
        assert script.patches[0].offset == 2
        assert script.patches[0].data == b"X"

    def test_nearby_runs_merged(self):
        old = bytes(20)
        new = bytearray(old)
        new[3] = 1
        new[5] = 2  # gap of 1 < header cost: merged
        script = diff_data(bytes(old), bytes(new))
        assert len(script.patches) == 1
        assert script.patches[0].offset == 3

    def test_distant_runs_separate(self):
        old = bytes(40)
        new = bytearray(old)
        new[0] = 1
        new[30] = 2
        script = diff_data(bytes(old), bytes(new))
        assert len(script.patches) == 2

    def test_growth(self):
        script = diff_data(b"ab", b"abcd")
        assert apply_data(b"ab", script) == b"abcd"

    def test_truncation(self):
        script = diff_data(b"abcdef", b"abc")
        assert apply_data(b"abcdef", script) == b"abc"

    def test_empty_both(self):
        script = diff_data(b"", b"")
        assert apply_data(b"", script) == b""

    def test_serialisation_roundtrip(self):
        script = diff_data(b"hello world", b"hellO wOrld!")
        back = DataScript.from_bytes(script.to_bytes())
        assert apply_data(b"hello world", back) == b"hellO wOrld!"

    def test_size_accounting(self):
        script = diff_data(bytes(10), bytes([9] * 10))
        # one patch: 2 (new length) + 3 (header) + 10 (payload)
        assert script.size_bytes == 2 + 3 + 10
        assert len(script.to_bytes()) == script.size_bytes

    @settings(max_examples=120, deadline=None)
    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_roundtrip_property(self, old, new):
        script = diff_data(old, new)
        assert apply_data(old, script) == new

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_wire_roundtrip_property(self, old, new):
        script = diff_data(old, new)
        back = DataScript.from_bytes(script.to_bytes())
        assert apply_data(old, back) == new

    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=16, max_size=64))
    def test_self_diff_always_empty(self, blob):
        assert diff_data(blob, blob).is_empty
