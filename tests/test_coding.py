"""Coded-transfer tests: fountain decoding, XOR parity, NACK comparison.

The load-bearing property (hypothesis-driven): a receiver recovers the
whole generation from **any** subset of coded packets whose coefficient
masks span GF(2)^k — which packets were lost never matters, only how
many independent ones arrived.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diff.packets import Packetisation
from repro.net import grid
from repro.net.coding import (
    CodedTransferParams,
    GenerationDecoder,
    LTStream,
    decode_generation,
    pad_packets,
    run_coded_campaign,
)
from repro.net.errors import NetConfigError
from repro.net.faults import FaultPlan, NodeCrash
from repro.net.gossip import run_gossip
from repro.net.lossy import disseminate_lossy
from repro.net.trickle import run_trickle

BLOB = bytes(range(251)) * 3  # three packets' worth of arbitrary script
PPP = 64  # small payload so generations have a dozen-odd packets


def gf2_rank(masks, k):
    """Independent row-echelon rank check (not the decoder under test)."""
    basis = []
    for mask in masks:
        for row in basis:
            mask = min(mask, mask ^ row)
        if mask:
            basis.append(mask)
    return len(basis)


def coded_packets(blob, ppp, count, label="t"):
    padded = pad_packets(blob, ppp)
    stream = LTStream(len(padded), label)
    return len(padded), [
        (stream.mask_at(seq), stream.payload_at(seq, padded))
        for seq in range(count)
    ]


class TestFountainProperty:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), blob_len=st.integers(min_value=1, max_value=300))
    def test_any_full_rank_subset_decodes(self, data, blob_len):
        """ISSUE acceptance: decoding succeeds from any sufficient subset
        of coded packets, and the rebuilt blob is byte-identical."""
        blob = bytes((7 * i + 3) % 256 for i in range(blob_len))
        k, packets = coded_packets(blob, 32, count=3 * ((blob_len // 32) + 4))
        subset = data.draw(
            st.lists(
                st.sampled_from(packets),
                min_size=0,
                max_size=len(packets),
                unique_by=id,
            )
        )
        decoded = decode_generation(k, len(blob), 32, subset)
        if gf2_rank([mask for mask, _ in subset], k) >= k:
            assert decoded == blob
        else:
            assert decoded is None

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_masks_are_pure_functions_of_label_and_sequence(self, seed):
        a = LTStream(9, f"repro-coding:{seed}:0")
        b = LTStream(9, f"repro-coding:{seed}:0")
        assert [a.mask_at(i) for i in range(40)] == [
            b.mask_at(i) for i in range(40)
        ]

    def test_systematic_prefix_is_the_source_packets(self):
        padded = pad_packets(BLOB, PPP)
        stream = LTStream(len(padded), "sys")
        for index, packet in enumerate(padded):
            assert stream.mask_at(index) == 1 << index
            assert stream.payload_at(index, padded) == packet

    def test_dependent_packets_do_not_raise_rank(self):
        k, packets = coded_packets(BLOB, PPP, count=len(pad_packets(BLOB, PPP)))
        decoder = GenerationDecoder(k)
        for mask, payload in packets:
            assert decoder.add(mask, payload)
        assert decoder.complete
        assert not decoder.add(*packets[0])

    def test_incomplete_decoder_refuses_payloads(self):
        decoder = GenerationDecoder(3)
        decoder.add(0b001, b"\x01")
        with pytest.raises(NetConfigError):
            decoder.payloads()


class TestCodedTransferParams:
    def test_defaults_are_valid(self):
        params = CodedTransferParams()
        assert params.scheme == "lt"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheme": "rs"},
            {"overhead": -0.1},
            {"overhead": 2.5},
            {"burst": 0},
            {"group": 1},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(NetConfigError):
            CodedTransferParams(**kwargs)

    def test_xor_scheme_rejected_by_fountain_campaign(self):
        with pytest.raises(NetConfigError):
            run_coded_campaign(
                grid(3, 3), BLOB,
                params=CodedTransferParams(scheme="xor"), seed=1,
            )


class TestCodedCampaign:
    def test_lossless_campaign_converges(self):
        report = run_coded_campaign(grid(3, 3), BLOB, seed=1)
        assert report.converged
        assert report.nacks == 0
        assert report.retransmissions == 0

    def test_deterministic_given_seed(self):
        runs = [
            run_coded_campaign(grid(3, 3), BLOB, loss=0.2, seed=7)
            for _ in range(2)
        ]
        assert runs[0].digest() == runs[1].digest()

    def test_fewer_transmissions_than_nack_repair(self):
        """Acceptance: coded dissemination completes with measurably
        fewer transmissions than per-packet NACK repair on the same
        lossy fleet (NACK packets are transmissions too)."""
        blob = bytes(range(256)) * 2 + bytes(88)
        topo = grid(10, 10)
        for loss in (0.1, 0.2, 0.3):
            nack = disseminate_lossy(
                topo, Packetisation(len(blob), 22, 12), loss=loss, seed=7
            )
            coded = run_coded_campaign(
                topo, blob, params=CodedTransferParams(burst=16),
                loss=loss, seed=7,
            )
            assert nack.complete and coded.converged
            assert coded.broadcasts < nack.broadcasts + nack.nacks

    def test_crash_wipes_decoder_state_but_fleet_recovers(self):
        plan = FaultPlan(
            crashes=(NodeCrash(node=4, round=2, reboot_round=6),), seed=3
        )
        report = run_coded_campaign(grid(3, 3), BLOB, plan, loss=0.1, seed=3)
        assert report.converged
        assert any("node 4 crashed" in entry for entry in report.fault_log)

    def test_corruption_burns_receptions_not_correctness(self):
        plan = FaultPlan(corrupt_prob=0.15, seed=9)
        report = run_coded_campaign(grid(3, 3), BLOB, plan, loss=0.1, seed=9)
        assert report.converged
        assert report.crc_rejections > 0


class TestXorBurstParity:
    def test_trickle_with_parity_converges(self):
        report = run_trickle(
            grid(3, 3), BLOB, loss=0.2, seed=4,
            coding=CodedTransferParams(scheme="xor"),
        )
        assert report.converged

    def test_gossip_with_parity_converges(self):
        report = run_gossip(
            grid(3, 3), BLOB, loss=0.2, seed=4,
            coding=CodedTransferParams(scheme="xor"),
        )
        assert report.converged

    def test_lt_scheme_rejected_by_kernel(self):
        with pytest.raises(NetConfigError):
            run_trickle(
                grid(3, 3), BLOB, seed=1,
                coding=CodedTransferParams(scheme="lt"),
            )

    def test_uncoded_kernel_run_is_byte_identical_to_before(self):
        """coding=None must not perturb the pinned kernel digests."""
        plain = run_trickle(grid(3, 3), BLOB, loss=0.2, seed=4)
        defaulted = run_trickle(grid(3, 3), BLOB, loss=0.2, seed=4,
                                coding=None)
        assert plain.digest() == defaulted.digest()

    def test_parity_repairs_reduce_request_traffic(self):
        """Local parity repair should cut losses that would otherwise
        trigger a fresh ADV/REQ/DATA exchange."""
        topo = grid(4, 4)
        plain = run_trickle(topo, BLOB, loss=0.3, seed=6)
        coded = run_trickle(
            topo, BLOB, loss=0.3, seed=6,
            coding=CodedTransferParams(scheme="xor"),
        )
        assert coded.converged
        assert coded.requests <= plain.requests
