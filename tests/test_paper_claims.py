"""One test per checkable claim quoted from the paper.

Each docstring quotes the sentence being reproduced; the test drives
the corresponding machinery.  This file doubles as the claim-by-claim
index of the reproduction.
"""

import pytest

from repro.core import compile_source, measure_cycles, plan_update
from repro.energy import DEFAULT_ENERGY_MODEL, MICA2
from repro.workloads import CASES
from repro.config import UpdateConfig


class TestSection1:
    def test_single_bit_costs_about_1000_instructions(self):
        """'Recent studies have shown that sending a single bit of data
        consumes about the same energy as executing 1000 instructions.'"""
        assert DEFAULT_ENERGY_MODEL.e_trans_bit == 1000.0
        # and the raw Figure 3 currents put the physical ratio within
        # an order of magnitude of that headline figure
        assert 100 < MICA2.tx_bit_per_cycle_ratio < 2000

    def test_simple_change_cascades_under_conventional_compiler(self):
        """'A simple change in the source code may result in many
        changes in the final binary.'"""
        case = CASES["4"]  # one-token change: `+ 1` -> `+ stride`
        old = compile_source(case.old_source)
        baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
        # the semantic change is ~2 instructions; the baseline re-encodes more
        assert baseline.diff_inst >= 4


class TestSection2:
    def test_16000_executions_breakeven(self):
        """'It is overall energy-efficient only if the new instruction
        is executed in less than 16,000 times (16-bit word width x
        1000).'"""
        assert DEFAULT_ENERGY_MODEL.breakeven_executions(1, 1.0) == 16000.0

    def test_processing_once_transmission_70_times(self):
        """'An interesting event may invoke the data processing code in
        the originating sensor once but the data transmission code 70
        times along the path to the sink.'"""
        from repro.net import ReportModel, line

        model = ReportModel(line(71))
        assert model.processing_vs_transmission_weight(70) == 70

    def test_update_script_uses_four_primitives(self):
        """'We adopt four update primitives similar to those in prior
        work [28] — insert, replace, copy, and remove.'"""
        from repro.diff import PrimOp

        assert {op.name.lower() for op in PrimOp} == {
            "insert",
            "replace",
            "copy",
            "remove",
        }

    def test_copy_remove_take_one_byte(self):
        """'The copy and remove primitives take one byte each.'"""
        from repro.diff import Primitive, PrimOp

        assert Primitive(PrimOp.COPY, 5).size_bytes == 1
        assert Primitive(PrimOp.REMOVE, 63).size_bytes == 1

    def test_groups_apply_out_of_order(self):
        """'The packets may also be grouped so that when remote sensors
        receive groups out of order, they are still able to perform
        updates independent of the receiving order.'"""
        import random

        from repro.diff.groups import group_script, grouped_words

        case = CASES["6"]
        old = compile_source(case.old_source)
        result = plan_update(old, case.new_source)
        groups = group_script(result.diff.script, max_group_bytes=24)
        random.Random(3).shuffle(groups)
        assert (
            grouped_words(old.image, groups, result.diff.new_instructions)
            == result.new.image.words()
        )


class TestSection3:
    def test_figure4_alternative_decision(self):
        """'An alternative update-conscious decision may allocate b to
        R2 only for the range {5,11} ... and match the old allocation
        for the range {12,15} with one extra mov instruction.'"""
        tail = "\n".join("    g = g ^ b;" for _ in range(8))
        old_src = (
            f"u8 g;\nvoid f(u8 a) {{\n    g = g + a;\n    u8 b = g & 3;\n{tail}\n}}\n"
            "void main() { f(1); halt(); }"
        )
        new_src = old_src.replace(
            "    u8 b = g & 3;\n", "    u8 b = g & 3;\n    g = g + a;\n"
        )
        old = compile_source(old_src)
        result = plan_update(old, new_src, config=UpdateConfig(ra="ucc", expected_runs=1.0))
        assert result.moves_inserted() == 1
        placement = result.new.records["f"].placements["f.b"]
        assert len(placement.pieces) == 2  # split live range

    def test_at_most_two_operands_per_ir_instruction(self):
        """'To comply with Mica2 AVR ISA, each IR instruction in our
        model has at most two different operands.'"""
        from repro.ir import IROp
        from repro.workloads import PROGRAMS
        from repro.core import Compiler, CompilerOptions

        for source in PROGRAMS.values():
            module = Compiler(CompilerOptions()).front_and_middle(source)
            for fn in module.functions.values():
                for ins in fn.instrs:
                    if ins.op is IROp.CALL:
                        continue
                    sources = {r.name for r in ins.uses()}
                    assert len(sources) <= 2, ins

    def test_consecutive_register_constraint(self):
        """'A 32-bit integer variable should be allocated to four
        consecutive registers' — at our u16 width: an even-aligned
        consecutive pair (eq. 9)."""
        prog = compile_source(
            "u16 g; void main() { u16 x = g + 1; radio_send(x); halt(); }"
        )
        for record in prog.records.values():
            for placement in record.placements.values():
                if placement.size == 2:
                    for piece in placement.pieces:
                        assert piece.base % 2 == 0

    def test_theta_is_three_quarters(self):
        """'...which decides theta to be 3/4.'"""
        from repro.regalloc import THETA

        assert THETA == 0.75


class TestSection5:
    def test_ucc_never_transmits_more(self):
        """'UCC-RA greatly reduces the code difference... the majority
        of the code can be kept the same.'"""
        for cid in ("4", "8", "12", "13", "D1", "D2"):
            case = CASES[cid]
            old = compile_source(case.old_source)
            baseline = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
            ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
            assert ucc.diff_inst <= baseline.diff_inst, cid

    def test_same_code_quality_in_most_cases(self):
        """'In most of these cases, UCC-RA and GCC-RA have the same
        Diff_cycle, i.e. they have the same code quality.'"""
        ties = 0
        checked = 0
        for cid in ("1", "2", "3", "4", "5", "11"):
            case = CASES[cid]
            old = compile_source(case.old_source)
            baseline = measure_cycles(
                plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="ucc"))
            )
            ucc = measure_cycles(plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc")))
            checked += 1
            ties += ucc.new_cycles == baseline.new_cycles
        assert ties >= checked - 1

    def test_large_cnt_disables_insertion(self):
        """'A large Cnt would disable the insertion such that UCC-RA and
        GCC-RA have the same energy consumption in the worst case.'"""
        tail = "\n".join("    g = g ^ b;" for _ in range(8))
        old_src = (
            f"u8 g;\nvoid f(u8 a) {{\n    g = g + a;\n    u8 b = g & 3;\n{tail}\n}}\n"
            "void main() { f(1); halt(); }"
        )
        new_src = old_src.replace(
            "    u8 b = g & 3;\n", "    u8 b = g & 3;\n    g = g + a;\n"
        )
        old = compile_source(old_src)
        huge = plan_update(old, new_src, config=UpdateConfig(ra="ucc", expected_runs=1e9))
        assert huge.moves_inserted() == 0

    def test_gcc_layout_keyed_by_names_not_order(self):
        """'No code change was observed in GCC-RA unless the variable
        names were changed. This is because the data allocation scheme
        in gcc hashes the variable into the symbol table using their
        names.'"""
        from repro.datalayout import LayoutObject, allocate_gcc_da

        objs = [LayoutObject(uid=n, size=1) for n in ("alpha", "beta", "gamma")]
        shuffled = [objs[2], objs[0], objs[1]]
        assert (
            allocate_gcc_da(objs).addresses
            == allocate_gcc_da(shuffled).addresses
        )

    def test_rename_handled_naturally_by_ucc_da(self):
        """'A name change of a variable is essentially a deletion of the
        old variable plus an insertion of a new variable. This can be
        handled naturally by UCC-DA as the new variable always takes the
        space of a deleted variable.'"""
        case = CASES["D2"]
        old = compile_source(case.old_source)
        ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
        assert ucc.diff_inst == 0

    def test_ilp_decisions_match_minlp(self):
        """'We observed the same allocation decisions for all the test
        cases with or without the approximation.'"""
        from repro.ilp import solve
        from repro.regalloc import (
            build_chunk_model,
            nonlinear_objective,
            solve_chunk_minlp,
        )
        from tests.test_ilp_ra import chunk_fixture

        _, _, _, spec = chunk_fixture()
        model = build_chunk_model(spec)
        ilp = solve(model, backend="scipy")
        minlp = solve_chunk_minlp(spec)
        assert nonlinear_objective(spec, ilp.values) == pytest.approx(
            minlp.objective
        )
