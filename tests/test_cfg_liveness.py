"""CFG construction and liveness analysis tests."""

from repro.ir import analyze, build_cfg, build_ir, loop_depths, static_frequencies
from repro.ir.liveness import interference_pairs
from repro.lang import frontend


def lower_fn(source, name="f"):
    return build_ir(frontend(source)).functions[name]


class TestCFG:
    def test_straight_line_single_block(self):
        fn = lower_fn("void f() { u8 x = 1; u8 y = 2; }")
        cfg = build_cfg(fn)
        assert len(cfg.blocks) == 1

    def test_if_creates_diamond(self):
        fn = lower_fn("void f(u8 a) { u8 x = 0; if (a) { x = 1; } x = 2; }")
        cfg = build_cfg(fn)
        entry = cfg.blocks[0]
        assert len(entry.successors) == 2

    def test_loop_has_back_edge(self):
        fn = lower_fn("void f(u8 a) { while (a) { a = a - 1; } }")
        cfg = build_cfg(fn)
        back_edges = [
            (b.index, s)
            for b in cfg.blocks
            for s in b.successors
            if s <= b.index
        ]
        assert back_edges

    def test_ret_block_has_no_successors(self):
        fn = lower_fn("u8 f() { return 1; }")
        cfg = build_cfg(fn)
        last = cfg.blocks[cfg.block_of[len(fn.instrs) - 1]]
        assert last.successors == []

    def test_block_of_covers_every_instruction(self):
        fn = lower_fn("void f(u8 a) { if (a) { a = 1; } else { a = 2; } }")
        cfg = build_cfg(fn)
        assert set(cfg.block_of) == set(range(len(fn.instrs)))

    def test_loop_depths_nesting(self):
        fn = lower_fn(
            "void f(u8 a) { while (a) { u8 b = a; while (b) { b = b - 1; } a = a - 1; } }"
        )
        cfg = build_cfg(fn)
        depths = loop_depths(cfg)
        assert max(depths.values()) >= 2

    def test_static_frequencies_weight_loops(self):
        fn = lower_fn("void f(u8 a) { u8 x = 0; while (a) { x = x + 1; } }")
        freqs = static_frequencies(fn)
        body_idx = next(
            i
            for i, ins in enumerate(fn.instrs)
            if "x + 1" in ins.stmt_text or (ins.dst and ins.dst.name == "f.x" and i > 0)
        )
        assert freqs[body_idx] > freqs[0]


class TestLiveness:
    def test_param_live_from_entry(self):
        fn = lower_fn("void f(u8 a) { u8 x = a; }")
        info = analyze(fn)
        assert info.intervals["f.a"].start == 0

    def test_dead_after_last_use(self):
        fn = lower_fn("void f(u8 a) { u8 x = a; u8 y = 1; }")
        info = analyze(fn)
        interval = info.intervals["f.a"]
        assert interval.end == 0  # last use at the first instruction

    def test_loop_variable_live_across_backedge(self):
        fn = lower_fn("void f(u8 a) { while (a) { a = a - 1; } }")
        info = analyze(fn)
        interval = info.intervals["f.a"]
        assert interval.end >= len(fn.instrs) - 3

    def test_last_use_detection(self):
        fn = lower_fn("void f(u8 a) { u8 x = a + 1; }")
        info = analyze(fn)
        use_index = next(
            i for i, ins in enumerate(fn.instrs) if any(r.name == "f.a" for r in ins.uses())
        )
        assert info.is_last_use(use_index, "f.a")

    def test_crosses_call_flag(self):
        src = "u8 g(u8 v) { return v; } void f(u8 a) { u8 x = g(1); u8 y = a + x; }"
        fn = lower_fn(src)
        info = analyze(fn)
        assert info.intervals["f.a"].crosses_call

    def test_call_argument_does_not_cross(self):
        src = "u8 g(u8 v) { return v; } void f() { u8 t = 1; u8 x = g(t); }"
        fn = lower_fn(src)
        info = analyze(fn)
        assert not info.intervals["f.t"].crosses_call

    def test_interference_pairs_symmetric_and_sound(self):
        fn = lower_fn("void f(u8 a, u8 b) { u8 c = a + b; u8 d = c + a; }")
        pairs = interference_pairs(analyze(fn))
        # a is used after c is defined, so a and c interfere
        assert ("f.a", "f.c") in pairs

    def test_params_interfere_with_each_other(self):
        fn = lower_fn("void f(u8 a, u8 b) { }")
        pairs = interference_pairs(analyze(fn))
        assert ("f.a", "f.b") in pairs

    def test_disjoint_lifetimes_do_not_interfere(self):
        fn = lower_fn("void f() { u8 a = 1; led_set(a); u8 b = 2; led_set(b); }")
        pairs = interference_pairs(analyze(fn))
        assert ("f.a", "f.b") not in pairs

    def test_live_sets_converge_with_branches(self):
        src = """
        void f(u8 a, u8 b) {
            u8 x;
            if (a) { x = b; } else { x = 1; }
            led_set(x);
        }
        """
        fn = lower_fn(src)
        info = analyze(fn)
        assert "f.x" in info.intervals


class TestLivenessEdgeCases:
    def test_loop_carried_range_spans_whole_loop(self):
        # s is defined before the loop, updated inside it, and read
        # after: its range must cover every loop instruction, including
        # the ones between its in-loop use and the back edge.
        src = """
        u8 f(u8 n) {
            u8 s = 0;
            u8 i;
            for (i = 0; i < n; i++) { s = s + i; led_set(i); }
            return s;
        }
        """
        fn = lower_fn(src)
        info = analyze(fn)
        interval = info.intervals["f.s"]
        loop_indices = [
            i
            for i, ins in enumerate(fn.instrs)
            if any(r.name == "f.i" for r in ins.vregs())
        ]
        assert interval.start <= min(loop_indices)
        assert interval.end >= max(loop_indices)

    def test_loop_carried_variable_live_at_backedge_source(self):
        src = "void f(u8 a) { u8 i = a; while (i) { i = i - 1; } }"
        fn = lower_fn(src)
        info = analyze(fn)
        # i must be live-out at the bottom of the loop body (the value
        # flows around the back edge into the header test)
        last_def = max(
            i
            for i, ins in enumerate(fn.instrs)
            if any(r.name == "f.i" for r in ins.defs())
        )
        assert "f.i" in info.live_out[last_def]

    def test_crosses_call_false_when_result_immediately_dead(self):
        # x never outlives the call that produces it, and nothing else
        # is live across the call, so no interval may claim crosses_call
        # (which would force a callee-saved register for no reason).
        src = "u8 g(u8 v) { return v; } void f() { u8 x = g(1); }"
        fn = lower_fn(src)
        info = analyze(fn)
        assert not info.intervals["f.x"].crosses_call

    def test_crosses_call_true_only_for_values_spanning_the_call(self):
        src = """
        u8 g(u8 v) { return v; }
        void f(u8 a) { u8 t = 1; u8 x = g(t); led_set(a + x); }
        """
        fn = lower_fn(src)
        info = analyze(fn)
        assert info.intervals["f.a"].crosses_call  # live across g()
        assert not info.intervals["f.t"].crosses_call  # dies at the call
        assert not info.intervals["f.x"].crosses_call  # born at the call

    def test_param_param_interference_with_single_use(self):
        # b is read later, so a and b coexist at entry even though a is
        # consumed first — interference_pairs must include the pair.
        fn = lower_fn("u8 f(u8 a, u8 b) { u8 x = a + 1; return x + b; }")
        pairs = interference_pairs(analyze(fn))
        assert ("f.a", "f.b") in pairs
        # pairs are canonicalised (sorted), so the mirror is implied
        assert all(left < right for left, right in pairs)
