"""Adversarial device profiles: Mica2 neutrality, LoRaWAN duty-cycle
budgets, battery-less brownout/resume, and the crash/brownout
exhaustive small-case regressions.

The contract under test (docs/SIMULATOR.md, "Device profiles"):

* the neutral ``MICA2`` profile is byte-identical to no profile at all;
* an airtime-limited fleet defers transmissions to the next legal slot
  and **never** violates the regulatory budget (violations pinned 0);
* an energy-limited fleet browns out mid-apply, keeps its nonvolatile
  page checkpoint, and resumes from the last completed page — the
  active bank is always the golden image or the fully applied one,
  never a torn hybrid.
"""

import dataclasses
import json
import random

import pytest

from repro.core.errors import PlanStateError
from repro.core.session import UpdateSession
from repro.fastpath import reference_mode
from repro.fuzz.fault_fuzz import run_fault_fuzz
from repro.net import (
    BATTERYLESS_HARVEST,
    DeviceProfile,
    FaultPlan,
    LORAWAN_DR3,
    MICA2_PROFILE,
    NodeUpdateState,
    PROFILES,
    PowerTrace,
    ScriptPacket,
    generate_power_traces,
    get_profile,
    grid,
    packetise_blob,
    run_campaign,
)
from repro.net.errors import NetConfigError
from repro.net.gossip import run_gossip
from repro.net.trickle import run_trickle
from repro.workloads import CASES

BLOB = bytes(range(256)) * 4  # 1024 B: 16 batteryless flash pages
HEAVY_BLOB = bytes(range(256)) * 8  # 2048 B: 32 pages, guaranteed brownouts


# ---------------------------------------------------------------------------
# DeviceProfile dataclass
# ---------------------------------------------------------------------------


class TestDeviceProfile:
    def test_registry_and_lookup(self):
        assert set(PROFILES) == {"mica2", "lorawan-dr3", "batteryless"}
        assert get_profile("mica2") is MICA2_PROFILE
        assert get_profile("lorawan-dr3") is LORAWAN_DR3
        assert get_profile("batteryless") is BATTERYLESS_HARVEST

    def test_unknown_profile_is_a_config_error(self):
        with pytest.raises(NetConfigError):
            get_profile("msp430")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "x", "mtu_bytes": -1},
            {"name": "x", "airtime_budget": 0.0},
            {"name": "x", "airtime_budget": 1.5},
            {"name": "x", "flash_page_bytes": -4},
            {"name": "x", "flash_write_j_per_page": -1e-3},
            {"name": "x", "storage_j": -0.1},
            {"name": "x", "harvest_w": -0.1},
            {"name": "x", "start_fraction": 0.0},
            {"name": "x", "restart_fraction": 1.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(NetConfigError):
            DeviceProfile(**kwargs)

    def test_capability_predicates(self):
        assert MICA2_PROFILE.is_neutral
        assert not MICA2_PROFILE.is_airtime_limited
        assert LORAWAN_DR3.is_airtime_limited and not LORAWAN_DR3.is_neutral
        assert BATTERYLESS_HARVEST.is_energy_limited
        assert BATTERYLESS_HARVEST.is_paged

    def test_effective_payload_fragments_to_mtu(self):
        assert LORAWAN_DR3.effective_payload(222) == 51
        assert LORAWAN_DR3.effective_payload(22) == 22
        assert MICA2_PROFILE.effective_payload(222) == 222

    def test_pages_for_rounds_up(self):
        assert BATTERYLESS_HARVEST.pages_for(64) == 1
        assert BATTERYLESS_HARVEST.pages_for(65) == 2
        assert BATTERYLESS_HARVEST.pages_for(2048) == 32
        assert MICA2_PROFILE.pages_for(2048) == 0

    def test_off_time_matches_duty_cycle(self):
        # 1% duty cycle: 1 s on air buys 99 s of enforced silence.
        assert LORAWAN_DR3.off_time_s(1.0) == pytest.approx(99.0)
        assert MICA2_PROFILE.off_time_s(1.0) == 0.0

    def test_profiles_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            LORAWAN_DR3.mtu_bytes = 0


# ---------------------------------------------------------------------------
# Mica2 neutrality: profiled == profile-less, byte for byte
# ---------------------------------------------------------------------------


class TestMica2Neutrality:
    def test_flood_campaign_byte_identical(self):
        topo = grid(4, 4)
        plain = run_campaign(topo, BLOB, loss=0.1, seed=7)
        profiled = run_campaign(topo, BLOB, loss=0.1, seed=7, profile=MICA2_PROFILE)
        assert profiled.to_json() == plain.to_json()
        assert profiled.profile_stats is None
        assert "profile" not in profiled.to_json()

    def test_kernel_path_byte_identical(self):
        topo = grid(4, 4)
        with reference_mode(True):
            plain = run_campaign(topo, BLOB, loss=0.1, seed=7)
            profiled = run_campaign(
                topo, BLOB, loss=0.1, seed=7, profile=MICA2_PROFILE
            )
        assert profiled.to_json() == plain.to_json()

    def test_trickle_and_gossip_byte_identical(self):
        topo = grid(4, 4)
        for runner in (run_trickle, run_gossip):
            plain = runner(topo, BLOB, loss=0.05, seed=5, max_time=400.0)
            profiled = runner(
                topo, BLOB, loss=0.05, seed=5, max_time=400.0,
                profile=MICA2_PROFILE,
            )
            assert profiled.to_json() == plain.to_json()


# ---------------------------------------------------------------------------
# LoRaWAN DR3: airtime budget enforced, violations structurally zero
# ---------------------------------------------------------------------------


class TestLorawanBudget:
    def test_campaign_defers_but_never_violates(self):
        report = run_campaign(
            grid(4, 4), BLOB, loss=0.1, seed=7, max_rounds=3000,
            profile=LORAWAN_DR3,
        )
        assert report.converged
        stats = report.profile_stats
        assert stats is not None and stats["name"] == "lorawan-dr3"
        assert stats["airtime_deferrals"] > 0
        assert stats["airtime_violations"] == 0
        assert json.loads(report.to_json())["profile"]["airtime_budget"] == 0.01

    def test_kernel_protocols_defer_but_never_violate(self):
        topo = grid(3, 3)
        for runner in (run_trickle, run_gossip):
            report = runner(
                topo, BLOB, loss=0.05, seed=5, max_time=40000.0,
                profile=LORAWAN_DR3,
            )
            assert report.converged
            stats = report.profile_stats
            assert stats["airtime_deferrals"] > 0
            assert stats["airtime_violations"] == 0

    def test_oversized_payload_fragments_to_mtu(self):
        # A 222-byte requested payload must go on air as 51-byte frames.
        plain = run_campaign(
            grid(3, 3), BLOB, seed=7, payload_per_packet=222, max_rounds=3000
        )
        fragged = run_campaign(
            grid(3, 3), BLOB, seed=7, payload_per_packet=222, max_rounds=3000,
            profile=LORAWAN_DR3,
        )
        assert plain.packets == -(-len(BLOB) // 222)
        assert fragged.packets == -(-len(BLOB) // 51)

    def test_stalled_budget_outcome_is_resumable(self):
        starved = run_campaign(
            grid(4, 4), BLOB, loss=0.1, seed=7, max_rounds=60,
            profile=LORAWAN_DR3,
        )
        assert starved.outcome == "stalled-budget"
        assert not starved.converged
        assert starved.profile_stats["stalled_pending"]
        # Same campaign with a real budget: the fleet gets there — the
        # stall was airtime starvation, not a wedged node.
        rerun = run_campaign(
            grid(4, 4), BLOB, loss=0.1, seed=7, max_rounds=3000,
            profile=LORAWAN_DR3,
        )
        assert rerun.outcome == "converged"

    def test_replay_identity(self):
        a = run_campaign(
            grid(4, 4), BLOB, loss=0.1, seed=7, max_rounds=3000,
            profile=LORAWAN_DR3,
        )
        b = run_campaign(
            grid(4, 4), BLOB, loss=0.1, seed=7, max_rounds=3000,
            profile=LORAWAN_DR3,
        )
        assert a.to_json() == b.to_json()


# ---------------------------------------------------------------------------
# Batteryless harvest: brownout mid-apply, checkpoint, resume
# ---------------------------------------------------------------------------


class TestBatterylessHarvest:
    def test_flood_browns_out_and_resumes(self):
        report = run_campaign(
            grid(4, 4), HEAVY_BLOB, loss=0.1, seed=7, max_rounds=3000,
            profile=BATTERYLESS_HARVEST,
        )
        assert report.converged
        stats = report.profile_stats
        assert stats["brownouts"] > 0
        assert stats["resumed_applies"] > 0
        assert stats["pages_total"] == 32
        assert stats["first_node_death_s"] is not None
        assert any("browned out" in line for line in report.fault_log)
        assert any("resumed" in line for line in report.fault_log)

    def test_kernel_protocols_brown_out_and_resume(self):
        topo = grid(3, 3)
        for runner in (run_trickle, run_gossip):
            report = runner(
                topo, HEAVY_BLOB, loss=0.05, seed=5, max_time=4000.0,
                profile=BATTERYLESS_HARVEST,
            )
            assert report.converged
            stats = report.profile_stats
            assert stats["brownouts"] > 0
            assert any("browned out" in line for line in report.fault_log)

    def test_committed_bank_survives_every_brownout(self):
        # Golden-image invariant: at campaign end every node runs either
        # the old version (never flipped) or the new one (fully applied
        # and verified) — regardless of how many brownouts it took.
        report = run_campaign(
            grid(4, 4), HEAVY_BLOB, loss=0.1, seed=11, max_rounds=3000,
            profile=BATTERYLESS_HARVEST,
        )
        assert set(report.node_versions.values()) <= {0, 1}
        for node in report.quarantined:
            assert report.node_versions[node] == 0

    def test_lifetime_metrics_in_json(self):
        report = run_campaign(
            grid(4, 4), HEAVY_BLOB, loss=0.1, seed=7, max_rounds=3000,
            profile=BATTERYLESS_HARVEST,
        )
        block = json.loads(report.to_json())["profile"]
        for key in (
            "brownouts", "resumed_applies", "node_brownouts",
            "node_resumed_applies", "first_node_death_s", "network_death_s",
        ):
            assert key in block


# ---------------------------------------------------------------------------
# Scripted power traces
# ---------------------------------------------------------------------------


class TestPowerTraces:
    def test_traces_without_energy_profile_rejected(self):
        plan = FaultPlan(power_traces=(PowerTrace(node=3, brownout_at_j=(0.01,)),))
        with pytest.raises(NetConfigError):
            run_campaign(grid(3, 3), BLOB, plan, seed=7)
        with pytest.raises(NetConfigError):
            run_campaign(grid(3, 3), BLOB, plan, seed=7, profile=LORAWAN_DR3)

    def test_pinned_trace_fires_between_page_writes(self):
        plan = FaultPlan(
            power_traces=(PowerTrace(node=3, brownout_at_j=(0.001, 0.004)),)
        )
        report = run_campaign(
            grid(3, 3), HEAVY_BLOB, plan, seed=7, max_rounds=3000,
            profile=BATTERYLESS_HARVEST,
        )
        assert report.converged
        counts = report.profile_stats["node_brownouts"]
        assert counts.get("3", counts.get(3, 0)) >= 2

    def test_generated_traces_are_deterministic(self):
        a = generate_power_traces(random.Random("t"), 9, storage_j=0.05)
        b = generate_power_traces(random.Random("t"), 9, storage_j=0.05)
        assert a == b

    def test_generate_rejects_bad_scale(self):
        from repro.net.faults import FaultPlanError

        with pytest.raises(FaultPlanError):
            generate_power_traces(random.Random("t"), 9, storage_j=0.05, scale_j=0.0)

    def test_plan_digest_ignores_absent_traces(self):
        # Reports minted before power traces existed must keep their
        # digests: an empty trace tuple is not part of the identity.
        assert FaultPlan().digest() == FaultPlan(power_traces=()).digest()


# ---------------------------------------------------------------------------
# Session plumbing
# ---------------------------------------------------------------------------


class TestSessionProfile:
    def test_push_campaign_threads_the_profile(self):
        case = CASES["6"]
        from repro.api import compile_source

        session = UpdateSession(
            compile_source(case.old_source), topology=grid(3, 3)
        )
        result = session.push_campaign(
            {1: case.new_source}, max_rounds=3000, profile=LORAWAN_DR3
        )
        assert result.converged
        stats = result.report.profile_stats
        assert stats["name"] == "lorawan-dr3"
        assert stats["airtime_violations"] == 0

    def test_versioned_campaign_rejects_profiles(self):
        case = CASES["6"]
        from repro.api import compile_source

        session = UpdateSession(
            compile_source(case.old_source), topology=grid(3, 3)
        )
        with pytest.raises(PlanStateError):
            session.push_campaign({2: case.new_source}, profile=LORAWAN_DR3)


# ---------------------------------------------------------------------------
# The 100-case intermittent-power sweep (the ISSUE's acceptance oracle)
# ---------------------------------------------------------------------------


class TestIntermittentPowerSweep:
    def test_hundred_case_sweep_never_corrupts(self):
        report = run_fault_fuzz(seed=0, iters=100, profile="batteryless")
        assert report.ok, [f.render() for f in report.findings]
        assert report.profile == "batteryless"
        assert report.power_traces_injected > 0
        assert report.brownouts_observed > 0
        assert report.converged + report.partial == 100


# ---------------------------------------------------------------------------
# Satellite: crash() at every packet boundary and every apply step
# ---------------------------------------------------------------------------


def _three_packets():
    blob = bytes(range(60))
    return blob, packetise_blob(blob, 20)


class TestCrashEveryBoundary:
    def test_crash_after_each_packet_keeps_golden_image(self):
        blob, packets = _three_packets()
        for boundary in range(len(packets) + 1):
            state = NodeUpdateState(node=1, version=0)
            for packet in packets[:boundary]:
                state.receive(packet, len(packets))
            state.crash()
            # Pre-flip crash: staging gone, boot pointer untouched.
            assert state.version == 0
            assert not state.committed
            assert state.bank == {}
            state.reboot(round_no=boundary)
            # The rebooted node re-syncs from scratch and still commits.
            for packet in packets:
                state.receive(packet, len(packets))
            while not state.tick_apply(1):
                pass
            assert state.version == 1 and state.committed

    def test_crash_at_each_apply_step_is_golden_or_applied(self):
        blob, packets = _three_packets()
        apply_rounds = NodeUpdateState(node=1, version=0).apply_rounds
        for step in range(apply_rounds + 1):
            state = NodeUpdateState(node=1, version=0)
            for packet in packets:
                state.receive(packet, len(packets))
            flipped = False
            for _ in range(step):
                flipped = state.tick_apply(1) or flipped
            state.crash()
            if flipped:
                # Post-flip crash: the new image is the committed bank.
                assert state.version == 1 and state.committed
            else:
                # Pre-flip crash: rollback to golden is implicit.
                assert state.version == 0 and not state.committed
                assert state.bank == {}

    def test_brownout_between_every_page_write_resumes(self):
        blob, packets = _three_packets()
        pages = 6
        for cut in range(pages):
            state = NodeUpdateState(node=1, version=0)
            for packet in packets:
                state.receive(packet, len(packets))
            state.begin_pages(pages)
            for _ in range(cut):
                state.write_page()
            state.brownout()
            # Volatile staging lost; the nonvolatile checkpoint and the
            # golden image both survive.
            assert state.version == 0 and not state.committed
            assert state.bank == {}
            assert state.pages_done == cut
            state.resume(round_no=1)
            for packet in packets:
                state.receive(packet, len(packets))
            state.begin_pages(pages)
            assert state.resumed_applies == (1 if cut else 0)
            while not state.write_page():
                pass
            assert state.commit_pages(1)
            assert state.version == 1 and state.committed
            # No page was ever written twice: cut pages before the
            # brownout plus the remainder after the resume.
            assert state.pages_done == pages

    def test_commit_refused_until_every_page_is_down(self):
        blob, packets = _three_packets()
        state = NodeUpdateState(node=1, version=0)
        for packet in packets:
            state.receive(packet, len(packets))
        state.begin_pages(3)
        state.write_page()
        assert not state.commit_pages(1)
        assert state.version == 0
        state.write_page()
        state.write_page()
        assert state.commit_pages(1)

    def test_page_plan_conflict_is_a_config_error(self):
        blob, packets = _three_packets()
        state = NodeUpdateState(node=1, version=0)
        for packet in packets:
            state.receive(packet, len(packets))
        state.begin_pages(4)
        state.write_page()
        state.brownout()
        state.resume(round_no=1)
        for packet in packets:
            state.receive(packet, len(packets))
        with pytest.raises(NetConfigError):
            state.begin_pages(8)


# ---------------------------------------------------------------------------
# Satellite: fragmentation round-trips at every MTU
# ---------------------------------------------------------------------------


class TestFragmentationRoundTrip:
    @pytest.mark.parametrize("mtu", [8, 16, 51, 222])
    def test_packetise_reassemble_round_trip(self, mtu):
        blob = bytes((i * 37 + 11) % 256 for i in range(555))
        packets = packetise_blob(blob, mtu)
        assert len(packets) == -(-len(blob) // mtu)
        assert all(len(p.payload) <= mtu for p in packets)
        state = NodeUpdateState(node=1, version=0)
        # Deliver out of order: reassembly must not depend on arrival.
        order = list(range(len(packets)))
        random.Random(f"repro-test-frag:{mtu}").shuffle(order)
        for index in order:
            assert state.receive(packets[index], len(packets)) == "accepted"
        assert state.holds_all(len(packets))
        assert state.assembled_blob() == blob

    @pytest.mark.parametrize("mtu", [8, 16, 51, 222])
    def test_corrupted_fragment_rejected_by_crc(self, mtu):
        blob = bytes((i * 37 + 11) % 256 for i in range(555))
        packets = packetise_blob(blob, mtu)
        state = NodeUpdateState(node=1, version=0)
        bad = packets[1].corrupted(flip_at=3)
        assert state.receive(bad, len(packets)) == "corrupt"
        assert state.crc_rejections == 1
        assert 1 not in state.bank
        # The genuine fragment still goes through afterwards.
        assert state.receive(packets[1], len(packets)) == "accepted"
        for packet in packets:
            state.receive(packet, len(packets))
        assert state.assembled_blob() == blob

    def test_empty_tail_fragment_corruption_detected(self):
        packet = ScriptPacket.make(0, b"")
        assert packet.corrupted(flip_at=0).crc != packet.crc
