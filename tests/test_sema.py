"""Semantic-analysis unit tests."""

import pytest

from repro.lang import SemanticError, frontend
from repro.lang import ast_nodes as ast
from repro.lang.types import U16, U8


def check_ok(source):
    return frontend(source)


def check_fails(source):
    with pytest.raises(SemanticError):
        frontend(source)


class TestDeclarations:
    def test_global_symbols_collected(self):
        checked = check_ok("u8 a; u16 b;")
        assert [s.name for s in checked.globals] == ["a", "b"]

    def test_duplicate_global_rejected(self):
        check_fails("u8 a; u16 a;")

    def test_duplicate_function_rejected(self):
        check_fails("void f() {} void f() {}")

    def test_global_conflicting_with_builtin_rejected(self):
        check_fails("u8 led_set;")

    def test_local_scoping_shadow(self):
        checked = check_ok("u8 x; void f() { u8 x = 1; { u8 x = 2; } }")
        fn = checked.functions["f"]
        assert len(fn.locals) == 2
        assert fn.locals[0].uid != fn.locals[1].uid

    def test_redeclaration_in_same_scope_rejected(self):
        check_fails("void f() { u8 x; u8 x; }")

    def test_use_before_declaration_rejected(self):
        check_fails("void f() { x = 1; u8 x; }")

    def test_const_local_requires_init(self):
        check_fails("void f() { const u8 k; }")

    def test_assignment_to_const_rejected(self):
        check_fails("const u8 k = 1; void f() { k = 2; }")

    def test_array_param_rejected(self):
        # The grammar itself has no array-parameter syntax.
        from repro.lang import CompileError

        with pytest.raises(CompileError):
            frontend("void f(u8 a[4]) { }")


class TestGlobalInitialisers:
    def test_scalar_default_zero(self):
        checked = check_ok("u8 x;")
        assert checked.global_inits["x"] == 0

    def test_constant_folding_in_init(self):
        checked = check_ok("u16 x = 3 * 100 + 7;")
        assert checked.global_inits["x"] == 307

    def test_array_init_padded(self):
        checked = check_ok("u8 t[4] = {1, 2};")
        assert checked.global_inits["t"] == [1, 2, 0, 0]

    def test_too_many_array_inits_rejected(self):
        check_fails("u8 t[2] = {1, 2, 3};")

    def test_non_constant_init_rejected(self):
        check_fails("u8 a; u8 b = a;")

    def test_division_by_zero_in_init_rejected(self):
        check_fails("u8 x = 1 / 0;")


class TestTypes:
    def test_literal_width_inference(self):
        checked = check_ok("void f() { u16 x = 300; }")
        # 300 does not fit u8, so the literal must be u16.
        decl = checked.functions["f"].definition.body.statements[0]
        assert decl.init.ctype == U16

    def test_literal_out_of_range_rejected(self):
        check_fails("void f() { u16 x = 70000; }")

    def test_widening_cast_inserted(self):
        checked = check_ok("void f(u8 a) { u16 x = a; }")
        decl = checked.functions["f"].definition.body.statements[0]
        assert isinstance(decl.init, ast.CastExpr)

    def test_comparison_operands_unified(self):
        checked = check_ok("void f(u16 a) { if (a > 5) { } }")
        cond = checked.functions["f"].definition.body.statements[0].cond
        assert cond.left.ctype == U16
        assert cond.right.ctype == U16
        assert cond.ctype == U8  # comparisons produce u8 0/1

    def test_arithmetic_promotes_to_wider(self):
        checked = check_ok("void f(u8 a, u16 b) { u16 c = a + b; }")
        decl = checked.functions["f"].definition.body.statements[0]
        assert decl.init.ctype == U16

    def test_indexing_non_array_rejected(self):
        check_fails("void f(u8 a) { u8 x = a[0]; }")

    def test_whole_array_assignment_rejected(self):
        check_fails("u8 t[4]; u8 s[4]; void f() { t = s; }")

    def test_array_as_scalar_value_rejected(self):
        check_fails("u8 t[4]; void f() { u8 x = t + 1; }")


class TestCallsAndReturns:
    def test_unknown_function_rejected(self):
        check_fails("void f() { g(); }")

    def test_arity_mismatch_rejected(self):
        check_fails("void g(u8 a) {} void f() { g(1, 2); }")

    def test_builtin_arity_checked(self):
        check_fails("void f() { led_set(); }")

    def test_builtin_signature_types(self):
        checked = check_ok("void f() { u16 v = adc_read(); }")
        assert checked.functions["f"].locals[0].ctype == U16

    def test_void_return_with_value_rejected(self):
        check_fails("void f() { return 1; }")

    def test_nonvoid_return_without_value_rejected(self):
        check_fails("u8 f() { return; }")

    def test_return_coerced_to_signature(self):
        checked = check_ok("u16 f(u8 a) { return a; }")
        ret = checked.functions["f"].definition.body.statements[0]
        assert isinstance(ret.value, ast.CastExpr)

    def test_call_argument_coerced(self):
        checked = check_ok("void g(u16 v) {} void f(u8 a) { g(a); }")
        call = checked.functions["f"].definition.body.statements[0].expr
        assert isinstance(call.args[0], ast.CastExpr)


class TestControlFlowRules:
    def test_break_outside_loop_rejected(self):
        check_fails("void f() { break; }")

    def test_continue_outside_loop_rejected(self):
        check_fails("void f() { continue; }")

    def test_break_inside_for_ok(self):
        check_ok("void f() { for (;;) { break; } }")

    def test_nested_loop_break_ok(self):
        check_ok("void f() { while (1) { while (1) { break; } continue; } }")
