"""The fleet update service (`repro.service`).

Pins the three service guarantees:

* **determinism** — serial, parallel, and cached execution produce
  identical per-job metrics (down to the edit-script digest), and
  outcomes always come back in job order;
* **the acceptance batch** — the ISSUE's 16-job Figure-9 batch on a
  5x5 grid runs >= 2x faster through a warm service than through a
  plain serial loop, with identical per-job metrics;
* **resilience** — per-job failures, pool breakage, and timeouts
  degrade to ``ok=False`` outcomes or serial execution, never to a
  raised batch.
"""

import time

import pytest

from repro.config import CompileConfig, FleetJob, TopologySpec, UpdateConfig
from repro.service import ContentCache, FleetUpdateService, execute_job, run_batch
from repro.service import fleet as fleet_module
from repro.workloads import CASES, RA_CASE_IDS

GRID = TopologySpec.grid(5, 5)


def _case_job(case_id, ra="ucc", da="ucc", topology=GRID, job_id=""):
    case = CASES[case_id]
    return FleetJob(
        old_source=case.old_source,
        new_source=case.new_source,
        compile=CompileConfig(),
        update=UpdateConfig(ra=ra, da=da),
        topology=topology,
        job_id=job_id or f"case{case_id}/{ra}",
    )


def _small_batch():
    return [
        _case_job("1", topology=None),
        _case_job("6", topology=None),
        _case_job("6", ra="gcc", da="gcc", topology=None),
    ]


def _metrics(outcomes):
    return [outcome.key_metrics() for outcome in outcomes]


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_serial_and_parallel_agree(self):
        jobs = _small_batch()
        serial = FleetUpdateService(workers=1, use_processes=False).run(jobs)
        parallel = FleetUpdateService(workers=2).run(jobs)
        assert serial.ok and parallel.ok
        assert serial.mode == "serial"
        assert parallel.mode == "parallel"
        assert _metrics(serial.outcomes) == _metrics(parallel.outcomes)

    def test_outcomes_come_back_in_job_order(self):
        jobs = _small_batch()
        result = FleetUpdateService(workers=2).run(jobs)
        assert [outcome.index for outcome in result.outcomes] == [0, 1, 2]
        assert [outcome.job_id for outcome in result.outcomes] == [
            job.job_id for job in jobs
        ]

    def test_warm_replay_is_bit_identical(self):
        jobs = _small_batch()
        service = FleetUpdateService(workers=1, use_processes=False)
        cold = service.run(jobs)
        warm = service.run(jobs)
        assert warm.mode == "cached"
        assert warm.cache_hit_rate == 1.0
        assert all(outcome.cached for outcome in warm.outcomes)
        assert not any(outcome.cached for outcome in cold.outcomes)
        # Bit-identical edit scripts, not just equal sizes.
        for before, after in zip(cold.outcomes, warm.outcomes):
            assert after.script_digest == before.script_digest
        assert _metrics(cold.outcomes) == _metrics(warm.outcomes)

    def test_compile_cache_dedupes_shared_old_sources(self):
        # Jobs 2 and 3 of the small batch share old_source under the
        # same CompileConfig: the second compile must be a hit.
        service = FleetUpdateService(workers=1, use_processes=False)
        result = service.run(_small_batch())
        assert result.compile_cache_hits >= 1

    def test_run_batch_convenience(self):
        result = run_batch(_small_batch(), workers=1, use_processes=False)
        assert result.ok
        assert len(result.outcomes) == 3


# ---------------------------------------------------------------------------
# The ISSUE acceptance batch: 16 Figure-9 jobs on a 5x5 grid
# ---------------------------------------------------------------------------


def _acceptance_jobs():
    """16 jobs: the 12 Figure 9/10 RA cases under ucc/ucc, plus four
    gcc/gcc baselines — every job disseminated over a 5x5 grid."""
    jobs = [_case_job(case_id) for case_id in RA_CASE_IDS]
    jobs += [_case_job(case_id, ra="gcc", da="gcc") for case_id in RA_CASE_IDS[:4]]
    assert len(jobs) == 16
    return jobs


class TestAcceptanceBatch:
    def test_warm_service_beats_serial_loop_2x(self):
        jobs = _acceptance_jobs()

        start = time.perf_counter()
        loop_outcomes = [
            execute_job(job, index=index) for index, job in enumerate(jobs)
        ]
        serial_ms = (time.perf_counter() - start) * 1000.0
        assert all(outcome.ok for outcome in loop_outcomes)

        service = FleetUpdateService(workers=4)
        cold = service.run(jobs)  # warms the job cache
        warm = service.run(jobs)

        assert cold.ok and warm.ok
        assert warm.mode == "cached"
        assert warm.cache_hit_rate == 1.0
        assert warm.wall_ms * 2 <= serial_ms, (
            f"warm batch took {warm.wall_ms:.1f} ms vs {serial_ms:.1f} ms serial"
        )
        # Identical per-job metrics across all three execution modes.
        assert _metrics(loop_outcomes) == _metrics(cold.outcomes)
        assert _metrics(loop_outcomes) == _metrics(warm.outcomes)
        # Every job disseminated to the 24 sensor nodes of the grid.
        assert all(outcome.nodes_patched == 24 for outcome in warm.outcomes)
        assert all(outcome.network_energy_j > 0 for outcome in warm.outcomes)

    def test_fastpath_batch_digest_identical_to_reference(self):
        """The vectorized fast path (repro.fastpath) re-runs the 16-job
        acceptance batch with bit-identical campaign and job digests;
        the speedup is recorded in the assertion message."""
        from repro.fastpath import reference_mode
        from repro.ilp.canonical import SOLVE_CACHE

        jobs = _acceptance_jobs()

        SOLVE_CACHE.clear()
        start = time.perf_counter()
        fast = FleetUpdateService(workers=1, use_processes=False).run(jobs)
        fast_ms = (time.perf_counter() - start) * 1000.0

        # reference_mode is process-local, so the reference run must
        # stay in-process too (a worker pool would ignore the toggle).
        SOLVE_CACHE.clear()
        with reference_mode(True):
            start = time.perf_counter()
            ref = FleetUpdateService(workers=1, use_processes=False).run(jobs)
            ref_ms = (time.perf_counter() - start) * 1000.0

        assert fast.ok and ref.ok
        assert _metrics(fast.outcomes) == _metrics(ref.outcomes)
        digests = [
            (outcome.script_digest, outcome.campaign_digest)
            for outcome in fast.outcomes
        ]
        assert digests == [
            (outcome.script_digest, outcome.campaign_digest)
            for outcome in ref.outcomes
        ]
        assert all(script for script, _campaign in digests)
        # Record the measured batch speedup; the fast path must at the
        # very least not slow the batch down materially (the heavy ILP
        # jobs in the batch are where the >= 5x kernel gain lands —
        # benchmarks/baselines/BENCH_ilp.json pins that).
        assert fast_ms < ref_ms * 1.5, (
            f"fast batch {fast_ms:.0f} ms vs reference {ref_ms:.0f} ms "
            f"(speedup {ref_ms / fast_ms:.2f}x)"
        )


# ---------------------------------------------------------------------------
# Resilience
# ---------------------------------------------------------------------------


class TestFailurePaths:
    def test_bad_source_fails_one_job_not_the_batch(self):
        jobs = [
            _case_job("1", topology=None),
            FleetJob(old_source="this is not ucc-C", new_source="nor is this"),
            _case_job("6", topology=None),
        ]
        result = FleetUpdateService(workers=1, use_processes=False).run(jobs)
        assert not result.ok
        assert [outcome.ok for outcome in result.outcomes] == [True, False, True]
        failed = result.outcomes[1]
        assert failed.error
        assert failed.script_digest == ""

    def test_failed_jobs_are_not_cached(self):
        bad = FleetJob(old_source="syntax error", new_source="syntax error")
        service = FleetUpdateService(workers=1, use_processes=False)
        service.run([bad])
        second = service.run([bad])
        # The failure re-executes (a transient infra failure must not
        # poison the cache); both runs miss.
        assert second.job_cache_hits == 0
        assert not second.outcomes[0].cached

    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no more processes")

        monkeypatch.setattr(fleet_module, "ProcessPoolExecutor", broken_pool)
        jobs = _small_batch()
        result = FleetUpdateService(workers=4).run(jobs)
        assert result.ok
        assert result.mode == "serial-fallback"
        reference = FleetUpdateService(workers=1, use_processes=False).run(jobs)
        assert _metrics(result.outcomes) == _metrics(reference.outcomes)

    def test_timeout_produces_failed_outcome(self):
        jobs = [_case_job("1", topology=None), _case_job("6", topology=None)]
        result = FleetUpdateService(workers=2, timeout_s=1e-6).run(jobs)
        assert not result.ok
        timed_out = [outcome for outcome in result.outcomes if not outcome.ok]
        assert timed_out
        assert all("timeout" in outcome.error for outcome in timed_out)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            FleetUpdateService(workers=0)
        with pytest.raises(ValueError, match="retries"):
            FleetUpdateService(retries=-1)


# ---------------------------------------------------------------------------
# The cache primitive
# ---------------------------------------------------------------------------


class TestContentCache:
    def test_lru_eviction(self):
        cache = ContentCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_rate_accounting(self):
        cache = ContentCache(maxsize=4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("missing") is None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5
