"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main

BLINK = """
u8 led_state = 0;
void main() {
    u16 i;
    for (i = 0; i < 1000; i++) {
        if (timer_fired()) { led_state = led_state ^ 1; led_set(led_state); }
    }
    halt();
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "blink.c"
    path.write_text(BLINK)
    return str(path)


@pytest.fixture()
def edited_file(tmp_path):
    path = tmp_path / "blink2.c"
    path.write_text(BLINK.replace("led_state ^ 1", "led_state ^ 3"))
    return str(path)


class TestCompileCommand:
    def test_basic(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out

    def test_disasm(self, source_file, capsys):
        assert main(["compile", source_file, "--disasm"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "halt" in out

    def test_output_file(self, source_file, tmp_path, capsys):
        target = str(tmp_path / "blink.bin")
        assert main(["compile", source_file, "-o", target]) == 0
        with open(target, "rb") as handle:
            blob = handle.read()
        assert len(blob) > 0 and len(blob) % 2 == 0

    def test_linear_allocator(self, source_file, capsys):
        assert main(["compile", source_file, "--ra", "linear"]) == 0


class TestRunCommand:
    def test_run_reports_devices(self, source_file, capsys):
        assert main(["run", source_file, "--timer", "700"]) == 0
        out = capsys.readouterr().out
        assert "halted" in out
        assert "LED writes" in out

    def test_run_with_profile(self, source_file, capsys):
        assert main(["run", source_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "hottest sites" in out


class TestUpdateCommand:
    def test_update_metrics(self, source_file, edited_file, capsys):
        assert main(["update", source_file, edited_file]) == 0
        out = capsys.readouterr().out
        assert "Diff_inst" in out
        assert "script" in out

    def test_update_with_script_and_cycles(self, source_file, edited_file, capsys):
        assert main(
            ["update", source_file, edited_file, "--script", "--cycles"]
        ) == 0
        out = capsys.readouterr().out
        assert "Diff_cycle" in out
        assert "copy" in out or "replace" in out

    def test_update_baseline_strategy(self, source_file, edited_file, capsys):
        assert main(
            ["update", source_file, edited_file, "--ra", "gcc", "--da", "gcc"]
        ) == 0


class TestCaseCommand:
    def test_known_case(self, capsys):
        assert main(["case", "2"]) == 0
        out = capsys.readouterr().out
        assert "gcc/gcc" in out and "ucc/ucc" in out

    def test_unknown_case(self, capsys):
        assert main(["case", "nope"]) == 2


class TestBatchCommand:
    @pytest.fixture()
    def jobs_file(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(
            '{"workers": 1, "jobs": ['
            '{"case": "1", "grid": [3, 3]},'
            '{"case": "6", "ra": "gcc", "da": "gcc"}'
            "]}"
        )
        return str(path)

    def test_batch_runs_case_jobs(self, jobs_file, capsys):
        assert main(["batch", jobs_file, "--serial"]) == 0
        out = capsys.readouterr().out
        assert "fleet batch: 2 jobs" in out
        assert "case1" in out and "case6" in out
        assert "gcc/gcc" in out

    def test_batch_file_jobs(self, source_file, edited_file, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text(
            f'[{{"old": "{source_file}", "new": "{edited_file}", "id": "blink"}}]'
        )
        assert main(["batch", str(path), "--serial"]) == 0
        out = capsys.readouterr().out
        assert "blink" in out and "ok" in out

    def test_batch_repeat_hits_the_cache(self, jobs_file, capsys):
        assert main(["batch", jobs_file, "--serial", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "mode=cached" in out
        assert "hit rate 100%" in out

    def test_batch_unknown_case_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text('[{"case": "nope"}]')
        assert main(["batch", str(path)]) == 2
        assert "unknown case" in capsys.readouterr().err

    def test_batch_empty_file_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "jobs.json"
        path.write_text("[]")
        assert main(["batch", str(path)]) == 2

    def test_batch_failing_job_sets_exit_status(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("this is not a program")
        path = tmp_path / "jobs.json"
        path.write_text(f'[{{"old": "{bad}", "new": "{bad}"}}]')
        assert main(["batch", str(path), "--serial"]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestVerifyCommand:
    def test_verify_files(self, source_file, edited_file, capsys):
        assert main(["verify", source_file, edited_file]) == 0
        out = capsys.readouterr().out
        assert "pass allocation" in out
        assert "pass patch" in out
        assert ": ok" in out

    def test_verify_case(self, capsys):
        assert main(["verify", "--case", "2"]) == 0
        out = capsys.readouterr().out
        assert "verify case 2" in out
        assert "pass energy" in out

    def test_verify_case_with_ilp(self, capsys):
        assert main(["verify", "--case", "1", "--ra", "ucc-ilp"]) == 0
        out = capsys.readouterr().out
        assert "ra=ucc-ilp" in out

    def test_verify_unknown_case(self, capsys):
        assert main(["verify", "--case", "nope"]) == 2

    def test_verify_without_inputs(self, capsys):
        assert main(["verify"]) == 2
