"""Register-allocation tests: baselines, chunks, preferences, UCC-RA."""

import pytest

from repro.core import Compiler, CompilerOptions, compile_source
from repro.ir import analyze, build_ir
from repro.isa import registers as regs
from repro.lang import frontend
from repro.config import UpdateConfig
from repro.regalloc import (
    AllocationError,
    Placement,
    allocate_graph_coloring,
    allocate_linear_scan,
    allocate_ucc_greedy,
    build_chunks,
    build_preferences,
    changed_indices,
    match_ir,
    verify_allocation,
)


def lower_fn(source, name="f"):
    return build_ir(frontend(source)).functions[name]


def front_middle(source):
    return Compiler(CompilerOptions()).front_and_middle(source)


class TestPlacement:
    def test_single_piece_lookup(self):
        p = Placement(vreg="x", size=1)
        p.add_piece(0, 10, 4)
        assert p.reg_at(5) == 4
        assert p.reg_at(11) is None

    def test_multi_piece_lookup(self):
        p = Placement(vreg="x", size=1)
        p.add_piece(0, 4, 2)
        p.add_piece(5, 9, 6)
        assert p.reg_at(4) == 2
        assert p.reg_at(5) == 6

    def test_overlapping_pieces_rejected(self):
        p = Placement(vreg="x", size=1)
        p.add_piece(0, 5, 2)
        with pytest.raises(AllocationError):
            p.add_piece(5, 8, 3)

    def test_pair_physical_regs(self):
        p = Placement(vreg="x", size=2)
        p.add_piece(0, 3, 4)
        assert p.physical_regs_at(1) == (4, 5)


class TestBaselines:
    @pytest.mark.parametrize("alloc", [allocate_graph_coloring, allocate_linear_scan])
    def test_allocation_verifies(self, alloc):
        fn = lower_fn(
            "u8 g; void f(u8 a, u8 b) { u8 c = a + b; u8 d = c + g; led_set(d); }"
        )
        record = alloc(fn)
        verify_allocation(record, analyze(fn))

    @pytest.mark.parametrize("alloc", [allocate_graph_coloring, allocate_linear_scan])
    def test_deterministic(self, alloc):
        src = "void f(u8 a, u8 b, u8 c) { u8 d = a + b; u8 e = d + c; led_set(e); }"
        first = alloc(lower_fn(src))
        second = alloc(lower_fn(src))
        for name in first.placements:
            assert first.placements[name].pieces == second.placements[name].pieces

    def test_u16_gets_even_pair(self):
        fn = lower_fn("void f(u16 a) { u16 b = a + 1; radio_send(b); }")
        record = allocate_graph_coloring(fn)
        for placement in record.placements.values():
            if placement.size == 2 and placement.pieces:
                assert placement.pieces[0].base % 2 == 0

    def test_call_crossing_vreg_in_callee_saved(self):
        src = "u8 g(u8 v) { return v; } void f(u8 a) { u8 x = g(1); led_set(a + x); }"
        module = build_ir(frontend(src))
        record = allocate_graph_coloring(module.functions["f"])
        placement = record.placements["f.a"]
        assert not placement.spilled
        assert placement.pieces[0].base in regs.CALLEE_SAVED

    def test_reserved_registers_never_assigned(self):
        fn = lower_fn(
            "void f(u8 a, u8 b) { u8 c = a + b; u8 d = c ^ a; u8 e = d | b; led_set(e); }"
        )
        for alloc in (allocate_graph_coloring, allocate_linear_scan):
            record = alloc(fn)
            for placement in record.placements.values():
                for piece in placement.pieces:
                    for unit in regs.registers_of(piece.base, placement.size):
                        assert unit not in regs.RESERVED

    def test_high_pressure_spills(self):
        # 30 simultaneously-live u8 values exceed the 24 allocatable regs.
        decls = "".join(f"u8 v{i} = {i};" for i in range(30))
        uses = " + ".join(f"v{i}" for i in range(30))
        fn = lower_fn(f"void f() {{ {decls} led_set({uses}); }}")
        record = allocate_graph_coloring(fn)
        assert record.spilled_vregs()
        verify_allocation(record, analyze(fn))

    def test_allocations_are_update_oblivious(self):
        """The baseline depends only on the new IR: inserting a variable
        early can shift downstream assignments (the paper's premise)."""
        base = "void f(u8 a) { u8 x = a + 1; u8 y = x + 2; led_set(y); }"
        edited = "void f(u8 a) { u8 n = a ^ 3; u8 x = a + 1; u8 y = x + n; led_set(y); }"
        rec1 = allocate_linear_scan(lower_fn(base))
        rec2 = allocate_linear_scan(lower_fn(edited))
        moved = [
            name
            for name in rec1.placements
            if name in rec2.placements
            and rec1.placements[name].pieces
            and rec2.placements[name].pieces
            and rec1.placements[name].pieces[0].base
            != rec2.placements[name].pieces[0].base
        ]
        assert moved  # at least one surviving variable changed register


class TestChunks:
    def _match(self, old_src, new_src, name="f"):
        old_fn = front_middle(old_src).functions[name]
        new_fn = front_middle(new_src).functions[name]
        return old_fn, new_fn, match_ir(old_fn, new_fn)

    def test_identical_ir_fully_matched(self):
        src = "void f(u8 a) { u8 x = a + 1; led_set(x); }"
        old_fn, new_fn, match = self._match(src, src)
        assert len(match.new_to_old) == len(new_fn.instrs)

    def test_identical_ir_single_unchanged_chunk(self):
        src = "void f(u8 a) { u8 x = a + 1; led_set(x); }"
        _, new_fn, match = self._match(src, src)
        chunks = build_chunks(new_fn, match)
        assert len(chunks) == 1 and not chunks[0].changed

    def test_inserted_statement_marked_changed(self):
        old = "void f(u8 a) { u8 x = a + 1; led_set(x); }"
        new = "void f(u8 a) { u8 x = a + 1; u8 y = x ^ 9; led_set(x); radio_send(y); }"
        _, new_fn, match = self._match(old, new)
        changed = changed_indices(new_fn, match)
        assert changed

    def test_small_unchanged_runs_merged(self):
        old = "void f(u8 a) { u8 x = a + 1; u8 y = a + 2; u8 z = a + 3; led_set(x + y + z); }"
        new = "void f(u8 a) { u8 x = a ^ 1; u8 y = a + 2; u8 z = a ^ 3; led_set(x + y + z); }"
        _, new_fn, match = self._match(old, new)
        chunks = build_chunks(new_fn, match, k=4)
        # the single unchanged instruction between the two changes merges
        changed_spans = [c for c in chunks if c.changed]
        assert len(changed_spans) == 1

    def test_k_zero_keeps_small_runs(self):
        old = "void f(u8 a) { u8 x = a + 1; u8 y = a + 2; u8 z = a + 3; led_set(x + y + z); }"
        new = "void f(u8 a) { u8 x = a ^ 1; u8 y = a + 2; u8 z = a ^ 3; led_set(x + y + z); }"
        _, new_fn, match = self._match(old, new)
        small_k = build_chunks(new_fn, match, k=0)
        big_k = build_chunks(new_fn, match, k=10)
        assert len(small_k) >= len(big_k)

    def test_chunks_partition_whole_function(self):
        old = "void f(u8 a) { u8 x = a + 1; led_set(x); }"
        new = "void f(u8 a) { u8 x = a + 2; led_set(x); radio_send(x); }"
        _, new_fn, match = self._match(old, new)
        chunks = build_chunks(new_fn, match)
        assert chunks[0].start == 0
        assert chunks[-1].end == len(new_fn.instrs)
        for first, second in zip(chunks, chunks[1:]):
            assert first.end == second.start


class TestPreferences:
    def test_tags_come_from_old_placement(self):
        src = "void f(u8 a) { u8 x = a + 1; led_set(x); }"
        module = front_middle(src)
        fn = module.functions["f"]
        old_record = allocate_graph_coloring(fn)
        match = match_ir(fn, fn)
        prefs = build_preferences(fn, fn, old_record, match)
        for (name, _), reg in prefs.tags.items():
            assert old_record.placements[name].sole_register == reg

    def test_spilled_variable_flagged(self):
        decls = "".join(f"u8 v{i} = {i};" for i in range(30))
        uses = " + ".join(f"v{i}" for i in range(30))
        src = f"void f() {{ {decls} led_set({uses}); }}"
        fn = front_middle(src).functions["f"]
        old_record = allocate_graph_coloring(fn)
        prefs = build_preferences(fn, fn, old_record, match_ir(fn, fn))
        assert any(prefs.was_spilled.values())

    def test_dominant_preference_majority(self):
        src = "void f(u8 a) { u8 x = a + 1; led_set(x); led_set(x ^ 1); }"
        fn = front_middle(src).functions["f"]
        old_record = allocate_graph_coloring(fn)
        prefs = build_preferences(fn, fn, old_record, match_ir(fn, fn))
        assert prefs.variable_preference("f.x") == old_record.placements["f.x"].sole_register


class TestUCCGreedy:
    def test_self_update_reproduces_allocation_exactly(self, simple_source):
        old = compile_source(simple_source)
        module = front_middle(simple_source)
        for name, fn in module.functions.items():
            record, report = allocate_ucc_greedy(
                fn, old.module.functions[name], old.records[name]
            )
            assert report.tags_broken == 0
            verify_allocation(record, analyze(fn))
            for vreg, placement in record.placements.items():
                old_placement = old.records[name].placements[vreg]
                if old_placement.spilled:
                    assert placement.spilled
                else:
                    assert placement.sole_register == old_placement.sole_register

    def test_unchanged_code_keeps_old_registers_after_edit(self):
        old_src = "u8 g; void f(u8 a) { u8 x = a + 1; g = x; led_set(x); } void main() { f(1); halt(); }"
        new_src = "u8 g; void f(u8 a) { u8 n = a ^ 5; u8 x = a + 1; g = x ^ n; led_set(x); } void main() { f(1); halt(); }"
        old = compile_source(old_src)
        new_fn = front_middle(new_src).functions["f"]
        record, report = allocate_ucc_greedy(
            new_fn, old.module.functions["f"], old.records["f"]
        )
        verify_allocation(record, analyze(new_fn))
        old_x = old.records["f"].placements["f.x"].sole_register
        assert record.placements["f.x"].reg_at(record.placements["f.x"].pieces[0].start) == old_x

    # The paper's Figure 4 scenario: a and b had disjoint live ranges
    # sharing one register; the update extends a's range across b's
    # definition, so b's preferred register is busy at its def but frees
    # before a long unchanged tail of b-uses.
    FIG4_TAIL = "\n".join("    g = g ^ b;" for _ in range(8))
    FIG4_OLD = (
        f"u8 g;\nvoid f(u8 a) {{\n    g = g + a;\n    u8 b = g & 3;\n{FIG4_TAIL}\n}}\n"
        "void main() { f(1); halt(); }"
    )
    FIG4_NEW = (
        "u8 g;\nvoid f(u8 a) {\n    g = g + a;\n    u8 b = g & 3;\n"
        "    g = g + a;\n" + FIG4_TAIL + "\n}\nvoid main() { f(1); halt(); }"
    )

    def test_move_insertion_in_figure4_scenario(self):
        """Figure 4(c): UCC-RA splits b's live range with a mov at the
        unchanged-chunk boundary and keeps the tail byte-identical."""
        old = compile_source(self.FIG4_OLD)
        new_fn = front_middle(self.FIG4_NEW).functions["f"]
        record, report = allocate_ucc_greedy(
            new_fn, old.module.functions["f"], old.records["f"], expected_runs=1.0
        )
        verify_allocation(record, analyze(new_fn))
        assert report.moves_inserted == 1
        move = record.moves[0]
        assert move.src != move.dst
        # b ends up in its old register for the tail piece.
        placement = record.placements["f.b"]
        assert len(placement.pieces) == 2
        old_reg = old.records["f"].placements["f.b"].sole_register
        assert placement.pieces[-1].base == old_reg

    def test_figure4_move_reduces_diff(self):
        """End to end: the inserted mov keeps the tail byte-identical,
        so the script shrinks versus the no-mov compilation."""
        from repro.core import plan_update

        old = compile_source(self.FIG4_OLD)
        with_mov = plan_update(old, self.FIG4_NEW, config=UpdateConfig(ra="ucc", expected_runs=1.0))
        without = plan_update(old, self.FIG4_NEW, config=UpdateConfig(ra="ucc", expected_runs=1e9))
        assert with_mov.moves_inserted() == 1
        assert without.moves_inserted() == 0
        assert with_mov.diff_inst < without.diff_inst

    def test_huge_cnt_disables_move_insertion(self):
        """Paper §5.5: with a very large execution count the energy
        model rejects mov insertion (UCC falls back to GCC quality)."""
        old = compile_source(self.FIG4_OLD)
        new_fn = front_middle(self.FIG4_NEW).functions["f"]
        _, report_small = allocate_ucc_greedy(
            new_fn, old.module.functions["f"], old.records["f"], expected_runs=1.0
        )
        _, report_huge = allocate_ucc_greedy(
            new_fn, old.module.functions["f"], old.records["f"], expected_runs=1e9
        )
        assert report_small.moves_inserted == 1
        assert report_huge.moves_inserted == 0
        assert report_huge.moves_rejected >= 1
