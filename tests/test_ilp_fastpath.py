"""Differential certification of the fast path (:mod:`repro.fastpath`).

Every vectorized code path in the repo keeps its original
implementation alive behind ``reference_mode(True)``.  These tests run
the two side by side — on the simplex, the branch & bound lowering,
the chunk-model generator, the Figure 9 edit grid, fuzz-generated
update pairs, and the batch instruction codec — and require the
answers to be *bit-identical*: same floats, same iteration counts,
same bytes.  The speed may differ; the answer may not.

The crafted degenerate tableau (Beale's classic cycling example)
additionally pins the anti-cycling behaviour: Dantzig pricing hands
over to Bland's rule after ``DEGENERATE_BLAND_AFTER`` consecutive
degenerate pivots, deterministically and identically on both paths.
"""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workloads import ilp_spec
from repro.config import UpdateConfig
from repro.core import compile_source, plan_update
from repro.fastpath import fastpath_enabled, reference_mode
from repro.fuzz import generate_program, mutate
from repro.ilp import IntegerProgram, solve, solve_branch_bound, solve_lp
from repro.ilp.branch_bound import build_matrices
from repro.ilp.canonical import SOLVE_CACHE, canonical_digests
from repro.ilp.simplex import DEGENERATE_BLAND_AFTER
from repro.isa.instructions import (
    EncodingError,
    MachineInstr,
    decode_batch,
    encode_batch,
)
from repro.obs import metrics
from repro.workloads import CASES

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _solve_lp_both(c, a_ub, b_ub, a_eq, b_eq, **kwargs):
    """Solve one LP on both paths; assert bit-identical outcomes."""
    fast = solve_lp(c, a_ub, b_ub, a_eq, b_eq, **kwargs)
    with reference_mode(True):
        ref = solve_lp(c, a_ub, b_ub, a_eq, b_eq, **kwargs)
    assert fast.status == ref.status
    assert fast.iterations == ref.iterations
    if fast.status == "optimal":
        assert fast.objective == ref.objective  # exact, not approx
        assert np.array_equal(fast.x, ref.x)
    return fast


class TestSimplexDifferential:
    def test_textbook_cases(self):
        _solve_lp_both(
            np.array([-3.0, -2.0]),
            np.array([[1.0, 1.0], [1.0, 0.0]]),
            np.array([4.0, 2.0]),
            None,
            None,
        )
        _solve_lp_both(
            np.array([1.0, 2.0]), None, None,
            np.array([[1.0, 1.0]]), np.array([1.0]),
        )
        _solve_lp_both(
            np.array([1.0]),
            np.array([[1.0], [-1.0]]),
            np.array([1.0, -3.0]),
            None,
            None,
        )

    def test_random_lps_bit_identical(self):
        rng = np.random.RandomState(1234)
        for trial in range(40):
            n = rng.randint(2, 7)
            m_ub = rng.randint(0, 5)
            m_eq = rng.randint(0, 3)
            c = rng.randint(-4, 5, size=n).astype(float)
            a_ub = rng.randint(-3, 4, size=(m_ub, n)).astype(float) if m_ub else None
            b_ub = rng.randint(-2, 6, size=m_ub).astype(float) if m_ub else None
            a_eq = rng.randint(-2, 3, size=(m_eq, n)).astype(float) if m_eq else None
            b_eq = rng.randint(0, 4, size=m_eq).astype(float) if m_eq else None
            ub = np.ones(n) if trial % 2 else None
            _solve_lp_both(c, a_ub, b_ub, a_eq, b_eq, ub=ub)

    def test_zero_constraint_problems(self):
        _solve_lp_both(np.array([1.0, 0.5]), None, None, None, None)
        _solve_lp_both(np.array([-1.0]), None, None, None, None)


class TestDegenerateBland:
    """Satellite regression: deterministic anti-cycling pivoting."""

    # Beale (1955): cycles forever under naive Dantzig pricing with
    # classical tie-breaking.  Optimum is x = (1/25, 0, 1, 0) with
    # objective -1/20.
    BEALE_C = np.array([-0.75, 150.0, -0.02, 6.0])
    BEALE_A = np.array(
        [
            [0.25, -60.0, -0.04, 9.0],
            [0.5, -90.0, -0.02, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
    )
    BEALE_B = np.array([0.0, 0.0, 1.0])

    @pytest.mark.parametrize("bland_after", [0, 1, 6, DEGENERATE_BLAND_AFTER])
    def test_beale_terminates_at_optimum(self, bland_after):
        result = _solve_lp_both(
            self.BEALE_C, self.BEALE_A, self.BEALE_B, None, None,
            bland_after=bland_after,
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-0.05)
        # Termination must come from the anti-cycling rule, not the
        # iteration ceiling.
        assert result.iterations < 100

    def test_bland_switch_is_deterministic(self):
        # Same problem, same bland_after -> identical pivot sequence,
        # run to run (no set/dict iteration order anywhere).
        runs = {
            (res.iterations, res.objective, tuple(res.x))
            for res in (
                solve_lp(self.BEALE_C, self.BEALE_A, self.BEALE_B, None, None)
                for _ in range(3)
            )
        }
        assert len(runs) == 1

    def test_degenerate_block_tableau(self):
        # Many zero-rhs rows force a long degenerate run; both paths
        # must hand over to Bland at the same pivot and agree exactly.
        rng = np.random.RandomState(7)
        n = 6
        a_ub = rng.randint(-2, 3, size=(8, n)).astype(float)
        b_ub = np.zeros(8)
        b_ub[-1] = 4.0
        c = rng.randint(-3, 3, size=n).astype(float)
        _solve_lp_both(c, a_ub, b_ub, None, None, ub=np.ones(n), bland_after=2)


class TestChunkModelDifferential:
    """Figure 13-15 models: generation, lowering, and solve."""

    @pytest.mark.parametrize("size", [8, 16])
    def test_model_and_solve_bit_identical(self, size):
        from repro.regalloc import build_chunk_model

        spec = ilp_spec(size)
        fast_prog = build_chunk_model(spec)
        with reference_mode(True):
            ref_prog = build_chunk_model(spec)
        # The rendered LP is a complete, ordered serialisation of the
        # model — equality means identical constraints in identical
        # order with identical coefficients.
        assert fast_prog.render_lp() == ref_prog.render_lp()

        fast_m = build_matrices(fast_prog)
        with reference_mode(True):
            ref_m = build_matrices(ref_prog)
        assert fast_m.names == ref_m.names
        for attr in ("c", "a_ub", "b_ub", "a_eq", "b_eq"):
            assert np.array_equal(getattr(fast_m, attr), getattr(ref_m, attr)), attr

        fast_res = solve_branch_bound(fast_prog)
        with reference_mode(True):
            ref_res = solve_branch_bound(ref_prog)
        assert fast_res.status == ref_res.status
        assert fast_res.values == ref_res.values
        assert fast_res.objective == ref_res.objective  # exact
        assert fast_res.stats.simplex_iterations == ref_res.stats.simplex_iterations
        assert fast_res.stats.lp_solves == ref_res.stats.lp_solves
        assert fast_res.stats.nodes == ref_res.stats.nodes


def _plan_digest(old, new_source, ra):
    SOLVE_CACHE.clear()  # a memo hit would trivially equalise the modes
    result = plan_update(old, new_source, config=UpdateConfig(ra=ra, da="ucc"))
    return (
        result.diff.script.to_bytes(),
        result.data_script.to_bytes(),
    )


class TestUpdatePipelineDifferential:
    """End-to-end edit scripts across the Figure 9 grid and fuzz pairs."""

    @pytest.mark.parametrize("case_id", ["1", "3", "6", "9", "12", "13"])
    @pytest.mark.parametrize("ra", ["ucc", "ucc-ilp"])
    def test_figure9_scripts_identical(self, case_id, ra):
        case = CASES[case_id]
        old = compile_source(case.old_source)
        fast = _plan_digest(old, case.new_source, ra)
        with reference_mode(True):
            ref = _plan_digest(old, case.new_source, ra)
        assert fast == ref

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_fuzz_pairs_identical(self, seed):
        program = generate_program(random.Random(seed))
        mutated, _edits = mutate(program, random.Random(seed + 100), 2)
        old = compile_source(program.render())
        fast = _plan_digest(old, mutated.render(), "ucc")
        with reference_mode(True):
            ref = _plan_digest(old, mutated.render(), "ucc")
        assert fast == ref

    def test_compiled_images_identical(self):
        from repro.workloads.programs import PROGRAMS

        for name, source in sorted(PROGRAMS.items()):
            fast = compile_source(source).image
            with reference_mode(True):
                ref = compile_source(source).image
            assert fast.to_bytes() == ref.to_bytes(), name
            assert fast.entry == ref.entry, name


class TestBatchCodecDifferential:
    """encode_batch/decode_batch against the one-at-a-time reference."""

    def _blink_image(self):
        from repro.workloads.programs import PROGRAMS

        return compile_source(PROGRAMS["Blink"]).image

    def test_round_trip_identical(self):
        image = self._blink_image()
        words = image.words()
        instrs = [enc.instr for enc in image.code]
        fast_decoded = decode_batch(words)
        fast_encoded = encode_batch(instrs)
        with reference_mode(True):
            ref_decoded = decode_batch(words)
            ref_encoded = encode_batch(instrs)
        assert fast_decoded == ref_decoded
        assert fast_encoded == ref_encoded
        assert [w for ws in fast_encoded for w in ws] == words

    def test_error_message_parity(self):
        image = self._blink_image()
        instr = image.code[0].instr
        bad = MachineInstr(mnemonic=instr.mnemonic, rd=99, rr=instr.rr,
                           imm=instr.imm, addr=instr.addr)
        with pytest.raises(EncodingError) as fast_exc:
            encode_batch([bad])
        with reference_mode(True):
            with pytest.raises(EncodingError) as ref_exc:
                encode_batch([bad])
        assert str(fast_exc.value) == str(ref_exc.value)


def _random_ip(rng: random.Random, n_vars: int) -> IntegerProgram:
    prog = IntegerProgram()
    names = [f"x{i}" for i in range(n_vars)]
    for name in names:
        prog.add_objective(name, float(rng.randint(-4, 4)))
    for _ in range(rng.randint(1, 3)):
        terms = [(float(rng.randint(1, 3)), name)
                 for name in rng.sample(names, rng.randint(2, n_vars))]
        prog.add_constraint(terms, "<=", float(rng.randint(1, 4)))
    return prog


class TestWarmStart:
    """The solve-memo warm start may speed pruning up, never change
    the answer."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_warm_start_never_worsens_objective(self, seed):
        if not fastpath_enabled():
            pytest.skip("warm start is a fast-path feature")
        rng = random.Random(seed)
        prog = _random_ip(rng, rng.randint(3, 6))
        SOLVE_CACHE.clear()
        cold = solve(prog, backend="own")
        # Same structure, different incumbent hint -> different exact
        # digest, same structure digest: the warm path is eligible.
        hint = {name: 1 for name in prog.variables}
        warm = solve(prog, backend="own", incumbent=hint)
        assert warm.status == cold.status
        assert warm.objective == cold.objective  # exact
        assert warm.values == cold.values

    def test_warm_start_adoption_counted(self):
        if not fastpath_enabled():
            pytest.skip("warm start is a fast-path feature")
        rng = random.Random(42)
        # A program whose all-ones hint is feasible but suboptimal, so
        # the memoised optimum strictly beats it and gets adopted.
        prog = IntegerProgram()
        for i in range(4):
            prog.add_objective(f"x{i}", float(i + 1))
        prog.add_constraint([(1.0, "x0"), (1.0, "x1")], "<=", 2.0)
        del rng
        SOLVE_CACHE.clear()
        solve(prog, backend="own")
        before = metrics.REGISTRY.values().get("ilp.cache.warm_starts", 0)
        solve(prog, backend="own", incumbent={f"x{i}": 1 for i in range(4)})
        after = metrics.REGISTRY.values().get("ilp.cache.warm_starts", 0)
        assert after == before + 1

    def test_structure_digest_isomorphic_rename(self):
        prog = _random_ip(random.Random(5), 5)
        renamed = IntegerProgram()
        mapping = {f"x{i}": f"var_{i}" for i in range(5)}
        for term_name, coeff in prog.objective.items():
            renamed.add_objective(mapping[term_name], coeff)
        for cons in prog.constraints:
            renamed.add_constraint(
                [(t.coeff, mapping[t.var]) for t in cons.terms],
                cons.sense,
                cons.rhs,
            )
        _, structure_a = canonical_digests(prog, backend="own")
        _, structure_b = canonical_digests(renamed, backend="own")
        assert structure_a == structure_b


_HASHSEED_SNIPPET = """
from repro.bench.workloads import ilp_spec, _ilp_job, workloads_for
digest, _metrics = _ilp_job(ilp_spec(8))
print(digest)
for w in workloads_for("diff")[:2]:
    print(w.job(w.setup())[0])
"""


def test_bench_digests_stable_across_hashseed():
    """The pinned workload digests may not depend on PYTHONHASHSEED —
    otherwise the committed baseline would only validate on the
    process that wrote it."""
    outputs = set()
    for seed in ("0", "4242"):
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": seed, "PYTHONPATH": REPO_SRC,
                 "PATH": "/usr/bin:/bin"},
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.add(proc.stdout)
    assert len(outputs) == 1
    assert outputs.pop().strip()
