"""FROZEN001 fixture: mutating a frozen, content-addressed config."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Config:
    ra: str = "gcc"
    budget: int = 0

    def bump(self) -> None:
        self.budget = self.budget + 1  # assignment on frozen self

    def rename(self, ra: str) -> None:
        object.__setattr__(self, "ra", ra)  # freeze bypass outside init
