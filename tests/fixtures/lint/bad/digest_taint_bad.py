"""DIGEST-TAINT fixture: nondeterminism flowing into digest sinks."""

import hashlib
import json
import os
import time


def stamped_digest(payload: bytes) -> str:
    stamp = time.time()  # wall clock
    return hashlib.sha256(payload + str(stamp).encode()).hexdigest()


def member_digest(members: set) -> str:
    h = hashlib.sha256()
    for member in members:  # unsorted set iteration
        h.update(str(member).encode())
    return h.hexdigest()


def keys_digest(table: dict) -> str:
    names = ",".join(table.keys())  # raw dict view, order implicit
    return hashlib.sha256(names.encode()).hexdigest()


def _digest(blob: str) -> str:
    return hashlib.sha256(blob.encode()).hexdigest()


def helper_digest() -> str:
    host = os.environ["HOSTNAME"]  # ambient state into a sink helper
    return _digest(host)


def repr_digest(config: object) -> str:
    blob = json.dumps(config, default=str)  # repr fallback for unknowns
    return _digest(blob)


def identity_digest(config: object) -> str:
    return _digest(str(id(config)))  # memory address
