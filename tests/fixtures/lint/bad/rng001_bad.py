"""RNG001 fixture: non-derived seeds."""

import random


def draw(seed: int) -> float:
    rng = random.Random(seed)  # integer passthrough: not derived
    return rng.random()


def ambient() -> float:
    rng = random.Random()  # ambient entropy
    return rng.random()


def wrong_shape(seed: int) -> float:
    rng = random.Random(x=seed)  # keyword form
    return rng.random()
