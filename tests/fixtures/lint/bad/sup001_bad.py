"""SUP001 fixture: a suppression with no justification suppresses nothing."""

import random


def draw(seed: int) -> float:
    rng = random.Random(seed)  # repro-lint: disable=RNG001
    return rng.random()
