"""ERR001 fixture: bare builtin raises inside the net layer."""


def validate(loss: float) -> None:
    if not 0.0 <= loss < 1.0:
        raise ValueError(f"loss {loss} out of range")


def finish(rounds: int, budget: int) -> None:
    if rounds >= budget:
        raise RuntimeError("round budget exhausted")


def check(rebuilt: bytes, expected: bytes) -> None:
    if rebuilt != expected:
        raise AssertionError("patch diverged")
