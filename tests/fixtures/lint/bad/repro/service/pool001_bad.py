"""POOL001 fixture: unpicklable callables handed to the pool."""

from concurrent.futures import ProcessPoolExecutor


class Runner:
    def work(self, job: int) -> int:
        return job * 2


def run(jobs: list) -> list:
    runner = Runner()
    pool = ProcessPoolExecutor(max_workers=2)

    def local_work(job: int) -> int:  # closure over nothing, still nested
        return job * 2

    futures = [pool.submit(lambda j: j * 2, job) for job in jobs]
    futures.append(pool.submit(local_work, 1))
    futures.append(pool.submit(runner.work, 2))
    return [future.result() for future in futures]
