"""OBS001 fixture: the catalogued entry point forgot its span."""


class Compiler:
    def compile(self, source: str) -> str:
        return source.upper()
