"""SUP001 fixture: a justified suppression silences the rule on its line."""

import random


def draw(seed: int) -> float:
    rng = random.Random(seed)  # repro-lint: disable=RNG001 -- fixture exercising the justified-suppression path
    return rng.random()


def draw_standalone(seed: int) -> float:
    # repro-lint: disable=RNG001 -- standalone comment applies to the next code line
    rng = random.Random(seed)
    return rng.random()
