"""FROZEN001 fixture: normalisation in __post_init__ is sanctioned."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Config:
    ra: str = "gcc"
    budget: int = 0

    def __post_init__(self):
        object.__setattr__(self, "ra", self.ra.lower())

    def bumped(self) -> "Config":
        return replace(self, budget=self.budget + 1)
