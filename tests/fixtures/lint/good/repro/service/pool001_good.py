"""POOL001 fixture: module-level callables pickle by qualified name."""

from concurrent.futures import ProcessPoolExecutor


def work(job: int) -> int:
    return job * 2


def run(jobs: list) -> list:
    pool = ProcessPoolExecutor(max_workers=2)
    futures = [pool.submit(work, job) for job in jobs]
    return [future.result() for future in futures]
