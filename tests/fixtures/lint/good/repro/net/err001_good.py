"""ERR001 fixture: structured errors keep the net layer clean."""


class LossRangeError(ValueError):
    def __init__(self, loss: float):
        self.loss = loss
        super().__init__(f"loss {loss} out of range")


def validate(loss: float) -> None:
    if not 0.0 <= loss < 1.0:
        raise LossRangeError(loss)


def reraise(error: Exception) -> None:
    # Re-raising a caught object (not a bare constructor) is fine.
    raise error
