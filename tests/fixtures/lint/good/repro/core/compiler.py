"""OBS001 fixture: the catalogued entry point opens its span."""

from contextlib import contextmanager


@contextmanager
def span(name: str, **fields):
    yield


class Compiler:
    def compile(self, source: str) -> str:
        with span("compile.full", source_bytes=len(source)):
            return source.upper()
