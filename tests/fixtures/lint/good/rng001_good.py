"""RNG001 fixture: derived string seeds, namespaced per component."""

import random


def draw(seed: int) -> float:
    rng = random.Random(f"repro-fixture:{seed}")
    return rng.random()


def fixed() -> float:
    rng = random.Random("repro-fixture:0")
    return rng.random()
