"""DIGEST-TAINT fixture: the disciplined versions of the same digests."""

import hashlib
import json
import time


def content_digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def member_digest(members: set) -> str:
    h = hashlib.sha256()
    for member in sorted(members):  # sorted() fixes iteration order
        h.update(str(member).encode())
    return h.hexdigest()


def keys_digest(table: dict) -> str:
    names = ",".join(sorted(table.keys()))
    return hashlib.sha256(names.encode()).hexdigest()


def canonical_digest(config: dict) -> str:
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def timed_digest(payload: bytes) -> tuple:
    # Wall clock is fine as long as it stays out of the preimage.
    start = time.perf_counter()
    digest = hashlib.sha256(payload).hexdigest()
    return digest, time.perf_counter() - start
