"""Unit tests for smaller helpers across the codebase."""

import pytest

from repro.ir import build_ir, render_expr, render_stmt_header
from repro.isa import registers as regs
from repro.lang import frontend, parse


def lower(source):
    return build_ir(frontend(source))


class TestRegisters:
    def test_allocatable_excludes_reserved(self):
        assert not set(regs.ALLOCATABLE) & set(regs.RESERVED)

    def test_callee_caller_partition(self):
        assert set(regs.CALLEE_SAVED) | set(regs.CALLER_SAVED) == set(
            regs.ALLOCATABLE
        )
        assert not set(regs.CALLEE_SAVED) & set(regs.CALLER_SAVED)

    def test_caller_saved_preferred_first(self):
        order = regs.candidates(1)
        first_callee = order.index(regs.CALLEE_SAVED[0])
        assert all(order.index(r) < first_callee for r in regs.CALLER_SAVED)

    def test_pair_bases_even_and_complete(self):
        for base in regs.PAIR_BASES:
            assert base % 2 == 0
            assert base + 1 in regs.ALLOCATABLE

    def test_crossing_candidates_all_callee_saved(self):
        for size in (1, 2):
            for base in regs.candidates(size, callee_saved_only=True):
                for unit in regs.registers_of(base, size):
                    assert unit in regs.CALLEE_SAVED

    def test_registers_of_sizes(self):
        assert regs.registers_of(4, 1) == (4,)
        assert regs.registers_of(4, 2) == (4, 5)
        with pytest.raises(ValueError):
            regs.registers_of(4, 3)

    def test_reg_name(self):
        assert regs.reg_name(0) == "r0"
        with pytest.raises(ValueError):
            regs.reg_name(32)

    def test_return_registers_are_caller_saved(self):
        assert regs.RET_LO in regs.CALLER_SAVED
        assert regs.RET_HI in regs.CALLER_SAVED


class TestUnparse:
    def expr(self, text):
        prog = parse(f"void f(u8 a, u8 b) {{ u8 x = {text}; }}")
        return prog.functions[0].body.statements[0].init

    def test_expression_rendering_parenthesised(self):
        assert render_expr(self.expr("a + b * 3")) == "(a + (b * 3))"

    def test_rendering_is_parse_stable(self):
        """Text -> AST -> text -> AST gives the same render."""
        first = render_expr(self.expr("a & 7 ^ b << 2"))
        prog2 = parse(f"void f(u8 a, u8 b) {{ u8 x = {first}; }}")
        second = render_expr(prog2.functions[0].body.statements[0].init)
        assert first == second

    def test_statement_headers(self):
        prog = parse(
            "void f(u8 a) { if (a) { } while (a) { } for (u8 i = 0; i < 3; i++) { } return; }"
        )
        stmts = prog.functions[0].body.statements
        assert render_stmt_header(stmts[0]) == "if (a)"
        assert render_stmt_header(stmts[1]) == "while (a)"
        assert render_stmt_header(stmts[2]).startswith("for (")
        assert render_stmt_header(stmts[3]) == "return;"

    def test_whitespace_insensitivity(self):
        a = parse("void f() { u8 x   =  1+2 ; }")
        b = parse("void f() { u8 x = 1 + 2; }")
        assert render_stmt_header(a.functions[0].body.statements[0]) == (
            render_stmt_header(b.functions[0].body.statements[0])
        )


class TestIRContainers:
    def test_function_render_lists_instructions(self):
        module = lower("void f() { u8 x = 1; led_set(x); }")
        text = module.functions["f"].render()
        assert "func f(" in text and "iowrite" in text

    def test_module_memory_symbols_order(self):
        module = lower(
            "u8 g1; u8 g2; void f() { u8 t[2]; t[0] = 1; led_set(t[0]); }"
        )
        uids = [s.uid for s in module.memory_symbols()]
        assert uids[:2] == ["g1", "g2"]
        assert "f.t" in uids

    def test_instruction_count_excludes_labels(self):
        module = lower("void f(u8 a) { if (a) { led_set(1); } }")
        fn = module.functions["f"]
        from repro.ir import IROp

        labels = sum(1 for i in fn.instrs if i.op is IROp.LABEL)
        assert fn.instruction_count() == len(fn.instrs) - labels

    def test_vregs_first_appearance_order(self):
        module = lower("void f(u8 a, u8 b) { u8 c = a + b; led_set(c); }")
        names = [r.name for r in module.functions["f"].vregs()]
        assert names.index("f.a") < names.index("f.c")


class TestEditScriptRender:
    def test_render_mentions_all_primitives(self):
        from repro.diff import EditScript

        script = EditScript()
        script.copy(3)
        script.insert([(0x0400,)])
        script.remove(2)
        text = script.render()
        assert "copy 3" in text and "insert 1" in text and "remove 2" in text

    def test_primitive_counts(self):
        from repro.diff import EditScript

        script = EditScript()
        script.copy(3)
        script.copy(3)
        script.remove(1)
        counts = script.primitive_counts()
        assert counts["copy"] == 2 and counts["remove"] == 1


class TestImageHelpers:
    def test_words_in_range(self, simple_program):
        symbols = simple_program.image.symbols
        start = symbols["bump"]
        end = symbols["main"]
        words = simple_program.image.words_in_range(start, end)
        assert 0 < len(words) <= end - start + 2

    def test_size_accounting(self, simple_program):
        image = simple_program.image
        assert image.size_bytes == 2 * image.size_words
        assert image.size_words == len(image.words())


class TestLPRender:
    def test_chunkspec_model_renders_lp(self):
        from repro.ilp import IntegerProgram

        prog = IntegerProgram(name="render-check")
        prog.add_objective("x", 2.0)
        prog.add_constraint([(1.0, "x"), (1.0, "y")], "<=", 1.0)
        text = prog.render_lp()
        assert "min:" in text and "bin x, y;" in text
