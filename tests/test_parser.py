"""Parser unit tests."""

import pytest

from repro.lang import ParseError, parse
from repro.lang import ast_nodes as ast


def parse_fn(body: str) -> ast.FunctionDef:
    return parse(f"void f() {{ {body} }}").functions[0]


def first_stmt(body: str) -> ast.Stmt:
    return parse_fn(body).body.statements[0]


class TestTopLevel:
    def test_global_scalar(self):
        prog = parse("u8 x;")
        assert prog.globals[0].name == "x"
        assert str(prog.globals[0].var_type) == "u8"

    def test_global_with_init(self):
        prog = parse("u16 x = 400;")
        assert isinstance(prog.globals[0].init, ast.IntLiteral)

    def test_global_array(self):
        prog = parse("u8 buf[16];")
        assert prog.globals[0].var_type.array_length == 16

    def test_global_array_init_list(self):
        prog = parse("u8 t[3] = {1, 2, 3};")
        assert len(prog.globals[0].init_list) == 3

    def test_const_global(self):
        prog = parse("const u8 k = 5;")
        assert prog.globals[0].is_const

    def test_function_no_params(self):
        prog = parse("void f() { }")
        assert prog.functions[0].name == "f"
        assert prog.functions[0].params == []

    def test_function_params(self):
        prog = parse("u16 add(u16 a, u8 b) { return a + b; }")
        fn = prog.functions[0]
        assert [p.name for p in fn.params] == ["a", "b"]
        assert str(fn.params[1].param_type) == "u8"

    def test_decl_order_preserved(self):
        prog = parse("u8 a; void f() {} u8 b;")
        kinds = [type(item).__name__ for item in prog.decl_order]
        assert kinds == ["GlobalDecl", "FunctionDef", "GlobalDecl"]

    def test_void_variable_rejected(self):
        with pytest.raises(ParseError):
            parse("void x;")

    def test_array_return_rejected(self):
        with pytest.raises(ParseError):
            parse("u8 f[3]() { }")

    def test_zero_length_array_rejected(self):
        with pytest.raises(ParseError):
            parse("u8 x[0];")


class TestStatements:
    def test_local_decl(self):
        stmt = first_stmt("u8 x = 1;")
        assert isinstance(stmt, ast.DeclStmt)

    def test_plain_assignment(self):
        second = parse_fn("u8 x; x = 2;").body.statements[1]
        assert isinstance(second, ast.AssignStmt)
        assert second.op == ""

    def test_compound_assignment(self):
        stmt = parse_fn("u8 x; x += 2;").body.statements[1]
        assert stmt.op == "+"

    def test_increment_sugar(self):
        stmt = parse_fn("u8 x; x++;").body.statements[1]
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.op == "+"
        assert stmt.value.value == 1

    def test_prefix_decrement(self):
        stmt = parse_fn("u8 x; --x;").body.statements[1]
        assert stmt.op == "-"

    def test_if_else(self):
        stmt = first_stmt("if (1) { } else { }")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body is not None

    def test_if_without_braces(self):
        stmt = first_stmt("if (1) return;")
        assert isinstance(stmt.then_body.statements[0], ast.ReturnStmt)

    def test_else_if_chain(self):
        stmt = first_stmt("if (1) { } else if (2) { } else { }")
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, ast.IfStmt)
        assert nested.else_body is not None

    def test_while(self):
        stmt = first_stmt("while (1) { break; }")
        assert isinstance(stmt, ast.WhileStmt)

    def test_for_full(self):
        stmt = first_stmt("for (u8 i = 0; i < 4; i++) { }")
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.init is not None and stmt.cond is not None and stmt.step is not None

    def test_for_empty_clauses(self):
        stmt = first_stmt("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        fn = parse_fn("while (1) { break; continue; }")
        body = fn.body.statements[0].body.statements
        assert isinstance(body[0], ast.BreakStmt)
        assert isinstance(body[1], ast.ContinueStmt)

    def test_return_value(self):
        stmt = first_stmt("return 3;")
        assert stmt.value.value == 3

    def test_nested_block(self):
        stmt = first_stmt("{ u8 x; }")
        assert isinstance(stmt, ast.Block)

    def test_expression_statement_call(self):
        stmt = first_stmt("halt();")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.CallExpr)


class TestExpressions:
    def expr(self, text):
        return first_stmt(f"u8 x = {text};").init

    def test_precedence_mul_over_add(self):
        expr = self.expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        expr = self.expr("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_logical_or_loosest(self):
        expr = self.expr("1 && 2 || 3")
        assert expr.op == "||"

    def test_parentheses_override(self):
        expr = self.expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_chain(self):
        expr = self.expr("-~!0")
        assert expr.op == "-"
        assert expr.operand.op == "~"

    def test_unary_plus_noop(self):
        expr = self.expr("+5")
        assert isinstance(expr, ast.IntLiteral)

    def test_left_associativity(self):
        expr = self.expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_index_expression(self):
        second = parse_fn("u8 t[4]; t[2] = 1;").body.statements[1]
        assert isinstance(second.target, ast.IndexExpr)

    def test_call_with_args(self):
        expr = self.expr("f(1, 2)")
        assert len(expr.args) == 2

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_fn("3 = x;")


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("u8 x")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_fn("u8 x = (1 + 2;")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("void f() { u8 x;")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse("42;")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse("void f() {\n  u8 = 3;\n}")
        assert excinfo.value.location.line == 2
